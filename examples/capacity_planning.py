#!/usr/bin/env python3
"""Capacity planning: under-provisioning the grid with GreenHetero.

The paper's Fig. 12 argument, as an operator's study: peak grid power is
expensive (up to $13.61/kW demand charges), so how small a grid feed can
a green rack live with?  This sweep runs SPECjbb days across grid
budgets under both Uniform and GreenHetero and reports the budget each
policy needs to sustain a target service level — the gap is
infrastructure money GreenHetero saves.

Run:
    python examples/capacity_planning.py
"""

from repro import ExperimentConfig, run_experiment
from repro.analysis.reporting import format_table

BUDGETS_W = (600.0, 800.0, 1000.0, 1200.0, 1400.0)
TARGET_FRACTION = 0.80  # sustain 80% of the best observed service level


def main() -> None:
    print("sweeping grid budgets (24 h SPECjbb per budget per policy) ...")
    results = {}
    for budget in BUDGETS_W:
        cfg = ExperimentConfig(
            grid_budget_w=budget, policies=("Uniform", "GreenHetero")
        )
        results[budget] = run_experiment(cfg)

    best = max(
        res.log("GreenHetero").mean_throughput() for res in results.values()
    )
    rows = []
    needed = {"Uniform": None, "GreenHetero": None}
    for budget, res in sorted(results.items()):
        row = [f"{budget:.0f} W"]
        for policy in ("Uniform", "GreenHetero"):
            throughput = res.log(policy).mean_throughput()
            cost = res.log(policy).grid_energy_wh(900.0) / 1000 * 0.11 + budget / 1000 * 13.61
            row.append(f"{throughput:,.0f} ({throughput / best:.0%})")
            if needed[policy] is None and throughput >= TARGET_FRACTION * best:
                needed[policy] = (budget, cost)
        rows.append(row)

    print()
    print(
        format_table(
            ["grid budget", "Uniform jops (vs best)", "GreenHetero jops (vs best)"],
            rows,
            title="Grid under-provisioning study",
        )
    )
    print()
    for policy, hit in needed.items():
        if hit is None:
            print(f"{policy}: never reaches {TARGET_FRACTION:.0%} of best in this sweep")
        else:
            budget, cost = hit
            print(
                f"{policy}: needs a {budget:.0f} W grid feed to sustain "
                f"{TARGET_FRACTION:.0%} of best (~${cost:.2f}/day peak+energy)"
            )
    if needed["Uniform"] and needed["GreenHetero"]:
        saved = needed["Uniform"][0] - needed["GreenHetero"][0]
        print(
            f"\nGreenHetero lets the operator under-provision the grid by "
            f"{saved:.0f} W for the same service level."
        )


if __name__ == "__main__":
    main()
