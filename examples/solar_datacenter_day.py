#!/usr/bin/env python3
"""A day in the life of a green rack (the paper's Fig. 8, as ASCII art).

Replays 24 hours of SPECjbb on the standard heterogeneous rack under
GreenHetero and prints hour-by-hour timelines: the power-source regime
(Case A/B/C), solar output, battery state of charge, the PAR the solver
chose, and throughput vs the Uniform baseline.

Run:
    python examples/solar_datacenter_day.py
"""

from repro import ExperimentConfig, run_experiment


def bar(value: float, scale: float, width: int = 30) -> str:
    filled = 0 if scale <= 0 else int(round(width * min(value / scale, 1.0)))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    config = ExperimentConfig(days=1.0, policies=("Uniform", "GreenHetero"))
    result = run_experiment(config)
    gh = result.log("GreenHetero")
    uniform = result.log("Uniform")

    peak_thr = max(gh.throughputs.max(), uniform.throughputs.max())
    peak_solar = gh.series("renewable_w").max()

    print("hour | case | solar                          | soc kWh | PAR  | GreenHetero vs Uniform")
    print("-" * 110)
    for i in range(0, len(gh), 4):  # hourly (4 epochs of 15 min)
        r, u = gh[i], uniform[i]
        hour = (r.time_s % 86400.0) / 3600.0
        ratio = r.throughput / u.throughput if u.throughput > 0 else float("inf")
        print(
            f"{hour:4.0f} |  {r.case.value}   | {bar(r.renewable_w, peak_solar)} |"
            f" {r.battery_soc_wh / 1000:6.1f}  | {r.ratios[0]:.2f} |"
            f" {bar(r.throughput, peak_thr, 20)} {ratio:5.2f}x"
        )

    mask = result.insufficient_mask()
    print("-" * 110)
    print(
        f"day summary: gain {result.gain('GreenHetero'):.2f}x during the "
        f"{mask.sum()} insufficient epochs; mean PAR "
        f"{gh.mean_par(mask):.0%}; battery discharged "
        f"{gh.discharge_hours(config.epoch_s):.1f} h; grid supplied "
        f"{gh.grid_energy_wh(config.epoch_s) / 1000:.1f} kWh"
    )


if __name__ == "__main__":
    main()
