#!/usr/bin/env python3
"""Beyond the paper: hybrid solar+wind racks and cluster grid sharing.

Two extensions stacked together:

* each rack's PDU is fed by a *hybrid* renewable (PV array + wind
  turbine), smoothing the diurnal solar gap with evening winds;
* a :class:`ClusterCoordinator` splits one shared grid feed across a
  sunny rack and a clouded rack, proportionally to each rack's
  predicted green shortfall (the paper's stated future work).

Run:
    python examples/hybrid_renewables_cluster.py
"""

from repro.analysis.reporting import format_table
from repro.core.cluster import ClusterCoordinator, GridSplit
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.power.wind import HybridRenewable, WindFarm, WindSpeedTrace
from repro.servers.rack import Rack
from repro.traces.nrel import Weather, synthesize_irradiance
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY

SHARED_GRID_W = 1500.0


def build_rack_controller(weather: Weather, seed: int) -> GreenHeteroController:
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "Streamcluster")
    solar = SolarFarm.sized_for(
        synthesize_irradiance(days=2, weather=weather, seed=seed),
        peak_power_w=1.1 * rack.max_draw_w,
    )
    wind = WindFarm(
        WindSpeedTrace(days=2, mean_speed_ms=6.5, seed=seed + 100),
        rated_power_w=0.5 * rack.max_draw_w,
    )
    pdu = PDU(
        HybridRenewable(solar, wind),
        BatteryBank(count=4),
        GridSource(budget_w=SHARED_GRID_W / 2),
    )
    return GreenHeteroController(
        rack=rack, pdu=pdu, policy=make_policy("GreenHetero"), monitor=Monitor(seed=seed)
    )


def run_day(split: GridSplit) -> float:
    cluster = ClusterCoordinator(
        [
            build_rack_controller(Weather.HIGH, seed=31),
            build_rack_controller(Weather.LOW, seed=32),
        ],
        shared_grid_budget_w=SHARED_GRID_W,
        split=split,
    )
    total = 0.0
    for i in range(96):
        records = cluster.run_epoch(SECONDS_PER_DAY + i * EPOCH_SECONDS)
        total += cluster.aggregate_throughput(records)
    return total / 96.0


def main() -> None:
    print("two hybrid solar+wind racks (one sunny, one clouded), shared grid\n")
    equal = run_day(GridSplit.EQUAL)
    shortfall = run_day(GridSplit.SHORTFALL)
    print(
        format_table(
            ["shared-grid split", "cluster mean ips", "vs equal"],
            [
                ["equal", f"{equal:,.0f}", "1.00x"],
                ["shortfall-proportional", f"{shortfall:,.0f}", f"{shortfall / equal:.2f}x"],
            ],
            title="Cluster coordination over 24 hours",
        )
    )
    print(
        "\nThe shortfall-aware split routes grid watts to the clouded rack "
        "while the sunny rack rides its renewables — heterogeneity-aware "
        "allocation, one level up."
    )


if __name__ == "__main__":
    main()
