#!/usr/bin/env python3
"""Time-shifted work: interactive days, batch nights, one profiling DB.

A common green-datacenter pattern: serve SPECjbb-style business traffic
by day and soak the remaining (largely battery/grid) hours with batch
Streamcluster.  The controller's profiling database learns each
(platform, workload) pair the first time it arrives and reuses it on
every later phase — Algorithm 1's arrival path exercised across a
realistic rotation.

Run:
    python examples/daynight_schedule.py
"""

from repro.analysis.plotting import timeline
from repro.core.policies import make_policy
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.schedule import WorkloadPhase, WorkloadSchedule
from repro.units import SECONDS_PER_DAY


def main() -> None:
    schedule = WorkloadSchedule(
        [
            WorkloadPhase(8.0, "SPECjbb"),         # business hours
            WorkloadPhase(20.0, "Streamcluster"),  # overnight batch
        ]
    )
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=Rack([("E5-2620", 5), ("i5-4460", 5)], "Streamcluster"),
        clock=SimClock(start_s=SECONDS_PER_DAY, duration_s=2 * SECONDS_PER_DAY),
        seed=37,
    )
    sim.workload_schedule = schedule
    log = sim.run()

    print("two days, hourly (sparklines scale per-row):\n")
    print(
        timeline(
            {
                "solar W": log.series("renewable_w")[::4],
                "battery SoC": log.battery_soc_wh[::4],
                "load frac": log.series("load_fraction")[::4],
                "PAR": log.pars[::4],
                "throughput": log.throughputs[::4],
            },
            step_label="h",
        )
    )

    db = sim.controller.scheduler.database
    trainings = [r for r in log if r.trained_pairs]
    print(
        f"\nprofiled pairs: {sorted(db.keys())}\n"
        f"training bursts: {len(trainings)} (one per distinct workload — "
        "day 2 reuses day 1's database)"
    )


if __name__ == "__main__":
    main()
