#!/usr/bin/env python3
"""Riding through failures: inverter trips, battery lockout, brownout.

Injects three faults into one simulated day of the standard rack and
shows how the GreenHetero controller's source selection reroutes around
each: the battery carries a noon inverter trip, the grid carries a night
battery lockout, and an afternoon grid brownout narrows the budget the
solver distributes.

Run:
    python examples/fault_tolerance.py
"""

from repro.core.policies import make_policy
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.faults import FaultInjector
from repro.units import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY
HOUR = 3600.0


def main() -> None:
    faults = (
        FaultInjector()
        .add_battery_outage(DAY + 2 * HOUR, DAY + 4 * HOUR)
        .add_renewable_dropout(DAY + 12 * HOUR, DAY + 13 * HOUR, factor=0.0)
        .add_grid_outage(DAY + 20 * HOUR, DAY + 22 * HOUR, factor=0.4)
    )
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb"),
        clock=SimClock(start_s=DAY, duration_s=DAY),
        seed=19,
    )
    sim.faults = faults
    log = sim.run()

    events = {2: "battery lockout", 12: "inverter trip", 20: "grid brownout"}
    print("hour | case | solar W | batt W | grid W | jops     | note")
    print("-" * 75)
    for i in range(0, len(log), 4):
        r = log[i]
        hour = int((r.time_s - DAY) / HOUR)
        note = ""
        for start, label in events.items():
            if start <= hour < start + 2:
                note = f"<- {label}"
        print(
            f"{hour:4d} |  {r.case.value}   | {r.renewable_w:7.0f} |"
            f" {r.battery_to_load_w:6.0f} | {r.grid_to_load_w:6.0f} |"
            f" {r.throughput:8.0f} | {note}"
        )
    print("-" * 75)
    zero_epochs = int((log.throughputs <= 0).sum())
    print(
        f"{zero_epochs} epochs with zero throughput out of {len(log)} — the "
        "controller rides every fault on the remaining sources."
    )


if __name__ == "__main__":
    main()
