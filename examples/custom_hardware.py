#!/usr/bin/env python3
"""Model your own datacenter: custom platforms and workloads.

The Table II registry and Table I catalog are extensible — register your
own server SKU and application profile, build a rack from them, and let
GreenHetero manage the mix.  Here: a hypothetical ARM-based efficiency
server joins the dual-socket Xeons, running a user-defined analytics
service.

Run:
    python examples/custom_hardware.py
"""

from repro import ExperimentConfig, run_experiment
from repro.analysis.reporting import format_table
from repro.servers.platform import DeviceClass, ServerSpec, register_platform
from repro.workloads.catalog import Workload, WorkloadKind
from repro.workloads.models import WorkloadResponse, register_workload


def main() -> None:
    # 1. A dense ARM server: many efficient cores, tiny idle power.
    register_platform(
        ServerSpec(
            name="Altra-Q80",
            device_class=DeviceClass.CPU,
            base_frequency_hz=2.8e9,
            sockets=1,
            cores=80,
            peak_power_w=210.0,
            idle_power_w=55.0,
        ),
        aliases=("altra",),
    )

    # 2. A custom batch analytics workload that loves core count.
    register_workload(
        Workload("LogAnalytics", "Custom", WorkloadKind.BATCH, "records/s"),
        WorkloadResponse(
            workload="LogAnalytics",
            base_rate=400.0,
            frequency_sensitivity=0.85,
            power_intensity=0.88,
            affinity={"Altra-Q80": 1.15},  # vectorised parsers love wide parts
        ),
    )

    # 3. A mixed legacy-Xeon + ARM rack under a tight supply.
    cfg = ExperimentConfig(
        platforms=(("E5-2620", 5), ("Altra-Q80", 5)),
        workload="LogAnalytics",
        policies=("Uniform", "GreenHetero"),
        grid_budget_w=None,  # the constrained-supply sweep disables the grid
        supply_fractions=ExperimentConfig.INSUFFICIENT_SWEEP,
        days=0.5,
    )
    rack = cfg.build_rack()
    print(f"rack: {rack.describe()}\n")

    rows = []
    for i, group in enumerate(rack.groups):
        curve = rack.curve(i)
        rows.append(
            [
                group.spec.name,
                f"{curve.max_throughput:,.0f}",
                f"{curve.max_draw_w:.0f} W",
                f"{curve.peak_efficiency:.0f} rec/s/W",
            ]
        )
    print(format_table(["platform", "max records/s", "max draw", "efficiency"], rows))

    result = run_experiment(cfg)
    print(
        f"\nGreenHetero gain over Uniform on the mixed rack: "
        f"{result.gain('GreenHetero'):.2f}x "
        f"(EPU {result.gain('GreenHetero', 'epu'):.2f}x)"
    )


if __name__ == "__main__":
    main()
