#!/usr/bin/env python3
"""Co-located workloads, carbon accounting, and a persistent database.

Three library features beyond the paper's headline experiments:

* a *mixed* rack — the Xeons crunch Streamcluster while the i5s serve
  Memcached — with per-(platform, workload) profiling;
* the sustainability rollup: renewable fraction, CO2, and grid cost of
  the day, per policy;
* database persistence: the profiles learned today are saved to JSON and
  reloaded, so tomorrow's controller skips the training runs.

Run:
    python examples/colocation_sustainability.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.analysis.sustainability import sustainability_report
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.persistence import load_database, save_database
from repro.core.policies import make_policy
from repro.core.scheduler import AdaptiveScheduler
from repro.power import PDU, BatteryBank, GridSource, SolarFarm
from repro.servers.rack import Rack
from repro.sim.telemetry import TelemetryLog
from repro.traces.nrel import synthesize_irradiance
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY


def build_controller(policy_name, database=None, seed=41):
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], ["Streamcluster", "Memcached"])
    trace = synthesize_irradiance(days=2, seed=seed)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1.4 * rack.max_draw_w),
        BatteryBank(),
        GridSource(budget_w=1000.0),
    )
    policy = make_policy(policy_name)
    scheduler = AdaptiveScheduler(policy, database=database)
    return GreenHeteroController(
        rack=rack, pdu=pdu, policy=policy, scheduler=scheduler, monitor=Monitor(seed=seed)
    )


def run_day(controller):
    log = TelemetryLog()
    for i in range(96):
        log.append(controller.run_epoch(SECONDS_PER_DAY + i * EPOCH_SECONDS, 0.6))
    return log


def main() -> None:
    print("mixed rack: 5x E5-2620 (Streamcluster) + 5x i5-4460 (Memcached)\n")

    rows = []
    gh_controller = None
    for policy in ("Uniform", "GreenHetero"):
        controller = build_controller(policy)
        log = run_day(controller)
        report = sustainability_report(log, EPOCH_SECONDS)
        rows.append(
            [
                policy,
                f"{log.mean_throughput():,.0f}",
                f"{report.renewable_fraction:.0%}",
                f"{report.co2_kg:.2f} kg",
                f"${report.grid_cost_usd:.2f}",
                f"{report.curtailment_fraction:.0%}",
            ]
        )
        if policy == "GreenHetero":
            gh_controller = controller
    print(
        format_table(
            ["policy", "mean perf", "renewable", "CO2/day", "grid cost/day", "curtailed"],
            rows,
            title="24-hour co-location run",
        )
    )

    # Persist the learned profiles and prove tomorrow skips training.
    db = gh_controller.scheduler.database
    path = Path(tempfile.gettempdir()) / "greenhetero_profiles.json"
    save_database(db, path)
    restored = load_database(path)
    fresh = build_controller("GreenHetero", database=restored, seed=43)
    record = fresh.run_epoch(SECONDS_PER_DAY, 0.6)
    print(
        f"\nprofiles saved to {path} ({len(restored)} pairs); a restarted "
        f"controller trained {len(record.trained_pairs)} new pairs on its "
        f"first epoch (0 = warm start worked)."
    )


if __name__ == "__main__":
    main()
