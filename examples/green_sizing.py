#!/usr/bin/env python3
"""Sizing a green rack: how much solar, battery, and grid do I need?

Uses the capacity-planning searches (`repro.planning`) to answer the
operator questions the paper's economics motivate: reach 70% renewable
energy for the standard SPECjbb rack with the smallest PV array and
battery bank, and find the smallest grid feed that still sustains 90%
of unconstrained performance (Fig. 12, automated).

Run:
    python examples/green_sizing.py
"""

from repro.planning import size_battery, size_grid, size_solar
from repro.sim.experiment import ExperimentConfig


def main() -> None:
    config = ExperimentConfig(days=1.0, policies=("GreenHetero",), seed=5)
    rack = config.build_rack()
    print(f"sizing for: {rack.describe()}\n")

    solar = size_solar(config, target_renewable_fraction=0.70, tolerance=0.1)
    print(
        f"solar : clear-sky peak {solar.value:.2f}x max draw "
        f"(~{solar.value * rack.max_draw_w:,.0f} W installed) -> "
        f"{solar.achieved:.0%} renewable "
        f"[{solar.evaluations} simulated days]"
    )

    battery = size_battery(
        config, target_renewable_fraction=0.70, solar_scale=max(solar.value, 1.0)
    )
    print(
        f"battery: {battery.value:.0f} x 12V/100Ah units "
        f"({battery.value * 1.2:.1f} kWh) -> {battery.achieved:.0%} renewable "
        f"[{battery.evaluations} simulated days]"
    )

    grid = size_grid(config, target_performance_fraction=0.90, tolerance=50.0)
    print(
        f"grid  : {grid.value:,.0f} W budget sustains {grid.achieved:.0%} of "
        f"unconstrained performance "
        f"(rack max draw {rack.max_draw_w:,.0f} W) "
        f"[{grid.evaluations} simulated days]"
    )

    print(
        "\nGreenHetero's heterogeneity-aware allocation is what lets the "
        "grid feed sit this far below the rack's maximum draw — the "
        "paper's under-provisioning argument, priced out."
    )


if __name__ == "__main__":
    main()
