#!/usr/bin/env python3
"""Quickstart: compare the five power-allocation policies on one rack.

Builds the paper's standard testbed — five dual-socket Xeon E5-2620
servers plus five Core i5-4460 servers running SPECjbb, a solar array,
a 12 kWh battery bank, and a 1000 W grid feed — and replays a 24-hour
High-solar day once per Table III policy.

Run:
    python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment
from repro.analysis.reporting import format_table


def main() -> None:
    config = ExperimentConfig.fig8_default()
    print(f"rack      : {config.build_rack().describe()}")
    print(f"workload  : {config.workload}")
    print(f"grid      : {config.grid_budget_w:.0f} W budget")
    print("running 24 simulated hours x 5 policies ...")

    result = run_experiment(config)

    rows = []
    for name in config.policies:
        summary = result.summary(name)
        rows.append(
            [
                name,
                f"{summary.mean_throughput:,.0f}",
                f"{result.gain(name):.2f}x",
                f"{summary.mean_epu_insufficient:.2f}",
                f"{summary.mean_par:.0%}",
                f"{summary.grid_energy_wh / 1000:.1f} kWh",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "mean jops", "gain (B/C)", "EPU (B/C)", "mean PAR", "grid"],
            rows,
            title="24-hour SPECjbb run, High solar trace",
        )
    )
    print()
    gain = result.gain("GreenHetero")
    print(
        f"GreenHetero improves insufficient-supply performance {gain:.2f}x "
        f"over the heterogeneity-unaware Uniform baseline."
    )


if __name__ == "__main__":
    main()
