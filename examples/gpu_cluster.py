#!/usr/bin/env python3
"""Heterogeneity at its sharpest: a CPU+GPU rack (the paper's Fig. 14).

Five Xeon E5-2620 servers share a rack and a constrained power supply
with five Nvidia Titan Xp accelerator nodes, running the Rodinia
heterogeneous-computing workloads.  For GPU-friendly kernels (Srad_v1),
a uniform split starves the 411 W accelerators below their power-on
threshold, wasting the watts on CPUs that compute a tenth as much —
exactly where heterogeneity-aware allocation pays most.

Run:
    python examples/gpu_cluster.py
"""

from repro import ExperimentConfig, run_experiment
from repro.analysis.reporting import format_table
from repro.workloads.models import response_for

WORKLOADS = ("Streamcluster", "Srad_v1", "Particlefilter", "Cfd")


def main() -> None:
    print("Comb6: 5x E5-2620 + 5x Titan Xp under an insufficient-supply sweep\n")
    rows = []
    for workload in WORKLOADS:
        cfg = ExperimentConfig.combination_sweep(
            "Comb6", workload, policies=("Uniform", "GreenHetero-p", "GreenHetero")
        )
        result = run_experiment(cfg)
        speedup = response_for(workload).gpu_speedup
        rows.append(
            [
                workload,
                f"{speedup:.1f}x",
                f"{result.gain('GreenHetero-p'):.2f}x",
                f"{result.gain('GreenHetero'):.2f}x",
            ]
        )
    print(
        format_table(
            ["workload", "GPU speedup vs CPU", "GreenHetero-p gain", "GreenHetero gain"],
            rows,
            title="Gains over Uniform (higher GPU affinity -> bigger win)",
        )
    )
    print(
        "\nSrad_v1 (most GPU-friendly) gains most; Cfd (CPU ~= GPU) gains "
        "least — the paper's Fig. 14 ordering."
    )


if __name__ == "__main__":
    main()
