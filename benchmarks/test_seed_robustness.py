"""Robustness — the headline gains with error bars.

Every bench elsewhere runs the default seed.  This one replays the
calibration-critical comparisons across five independent seeds (fresh
traces, cloud events, load jitter, meter noise) and reports Student-t
confidence intervals, verifying the paper-shape conclusions are not a
single lucky draw:

* Streamcluster's gain stays > Memcached's across every seed;
* the Fig. 8 dynamic-run gain stays above 1.1x;
* the Comb4 homogeneous-like combination stays pinned at ~1.0x.
"""

from benchmarks.conftest import once
from repro.analysis.comparison import seed_sweep
from repro.sim.experiment import ExperimentConfig

SEEDS = (2021, 2022, 2023, 2024, 2025)


def run_sweeps():
    out = {}
    out["Streamcluster (sweep)"] = seed_sweep(
        ExperimentConfig.insufficient_supply(
            "Streamcluster", policies=("Uniform", "GreenHetero")
        ),
        SEEDS,
    )
    out["Memcached (sweep)"] = seed_sweep(
        ExperimentConfig.insufficient_supply(
            "Memcached", policies=("Uniform", "GreenHetero")
        ),
        SEEDS,
    )
    out["SPECjbb (24h dynamic)"] = seed_sweep(
        ExperimentConfig(days=1.0, policies=("Uniform", "GreenHetero")),
        SEEDS,
    )
    out["Comb4 (homogeneous-like)"] = seed_sweep(
        ExperimentConfig.combination_sweep(
            "Comb4", policies=("Uniform", "GreenHetero")
        ),
        SEEDS,
    )
    return out


def test_seed_robustness(benchmark, reporter):
    results = once(benchmark, run_sweeps)

    reporter.table(
        ["scenario", "gain (mean +- CI)"],
        [[name, stats.describe()] for name, stats in results.items()],
        title=f"Gain confidence intervals over {len(SEEDS)} seeds",
    )

    sc = results["Streamcluster (sweep)"]
    mc = results["Memcached (sweep)"]
    jbb = results["SPECjbb (24h dynamic)"]
    comb4 = results["Comb4 (homogeneous-like)"]

    # Non-overlapping intervals: the workload ordering is robust.
    assert sc.ci_low > mc.ci_high
    # Fig. 8's gain holds across seeds.
    assert jbb.ci_low > 1.1
    # The homogeneous-like combo is pinned at ~1.0 regardless of seed.
    assert 0.9 < comb4.mean < 1.12
    # Per-seed worst cases never invert the headline.
    assert min(sc.samples) > max(mc.samples)
