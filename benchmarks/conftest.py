"""Shared infrastructure for the figure/table reproduction benches.

Every bench regenerates one of the paper's tables or figures: it runs
the same experiment the paper ran (against the simulated substrate),
prints the series/rows the figure plots, and asserts the paper's
qualitative *shape* — who wins, by roughly what factor, where crossovers
fall.  Absolute magnitudes are not asserted tightly: the substrate is a
simulator, not the authors' testbed (see EXPERIMENTS.md).

``run_cached`` memoises experiment runs per session so Fig. 9 and
Fig. 10 (same runs, different metrics) don't pay twice.  Runs go
through :mod:`repro.sim.runner`, so ``REPRO_BENCH_JOBS`` (default:
up to 4 workers) fans the policies of each experiment out over a
process pool — telemetry is bit-identical at any worker count.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.reporting import format_series, format_table
from repro.sim.experiment import ExperimentConfig, ExperimentResult
from repro.sim.runner import run_experiment

_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1))))

_CACHE: dict[ExperimentConfig, ExperimentResult] = {}


def run_cached(config: ExperimentConfig) -> ExperimentResult:
    """Run an experiment once per session (configs are frozen/hashable)."""
    if config not in _CACHE:
        _CACHE[config] = run_experiment(config, jobs=_JOBS)
    return _CACHE[config]


class Reporter:
    """Collects paper-vs-measured lines and prints them as one block."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.lines: list[str] = []

    def line(self, text: str) -> None:
        self.lines.append(text)

    def paper_vs_measured(self, what: str, paper: str, measured: str) -> None:
        self.lines.append(f"{what}: paper {paper} | measured {measured}")

    def table(self, headers, rows, title=None) -> None:
        self.lines.append(format_table(headers, rows, title=title))

    def series(self, name, values, fmt="{:.3f}") -> None:
        self.lines.append(format_series(name, values, fmt=fmt))

    def flush(self) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{self.title}\n{bar}")
        for line in self.lines:
            print(line)
        print(bar)


@pytest.fixture
def reporter(request):
    rep = Reporter(request.node.nodeid)
    yield rep
    rep.flush()


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
