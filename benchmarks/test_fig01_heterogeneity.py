"""Fig. 1 — numbers of server configurations in ten Google datacenters.

Motivation data from [22]: each datacenter runs 2-5 distinct
microarchitectural configurations; 80% run two or three.  We regenerate
the bar series and verify the distribution GreenHetero's design leans on
(Section IV-B.3 bounds the solver at three types because of it).
"""

from collections import Counter

from benchmarks.conftest import once
from repro.servers.platform import GOOGLE_DC_CONFIG_COUNTS


def test_fig01_config_counts(benchmark, reporter):
    def series():
        return GOOGLE_DC_CONFIG_COUNTS

    counts = once(benchmark, series)
    reporter.series("configurations per datacenter", counts, fmt="{:.0f}")

    histogram = Counter(counts)
    reporter.table(
        ["configs", "datacenters"],
        [[k, histogram[k]] for k in sorted(histogram)],
        title="Fig. 1 histogram",
    )
    reporter.paper_vs_measured(
        "range of configurations", "2 to 5", f"{min(counts)} to {max(counts)}"
    )
    two_or_three = sum(1 for c in counts if c in (2, 3)) / len(counts)
    reporter.paper_vs_measured(
        "share running 2-3 configs", "80%", f"{two_or_three:.0%}"
    )

    assert len(counts) == 10
    assert min(counts) == 2 and max(counts) == 5
    assert two_or_three == 0.8
