"""Fig. 3 — the Section III-B case study: EPU and performance vs PAR.

Two heterogeneous servers (dual-socket E5-2620 as Server A, i5-4460 as
Server B) run SPECjbb under a fixed 220 W supply.  The power allocation
ratio (PAR, x-axis) is the percentage of the supply granted to Server A.

Paper reference points:
  * both EPU and performance peak at PAR = 65%;
  * the uniform 50/50 split achieves ~86% EPU;
  * sending everything to one server collapses EPU to ~37%
    (our model reproduces 37% at the all-to-B end, ~67% at all-to-A;
    the paper's text for this corner is internally inconsistent with
    its own Server A/B maxima — see EXPERIMENTS.md);
  * the paper claims up to 1.5x performance at the optimum vs uniform;
    our calibrated substrate yields ~1.15x here while matching every
    EPU anchor, trading the one inconsistent claim for the consistent
    four.
"""

import pytest

from benchmarks.conftest import once
from repro.servers.platform import get_platform
from repro.servers.power_model import ResponseCurve

BUDGET_W = 220.0


def sweep():
    a = ResponseCurve(get_platform("E5-2620"), "SPECjbb")
    b = ResponseCurve(get_platform("i5-4460"), "SPECjbb")
    rows = []
    for par_pct in range(0, 101, 5):
        par = par_pct / 100.0
        sa = a.perf_at_power(par * BUDGET_W)
        sb = b.perf_at_power((1.0 - par) * BUDGET_W)
        useful = sum(s.power_w for s in (sa, sb) if s.throughput > 0)
        rows.append(
            {
                "par": par_pct,
                "epu": useful / BUDGET_W,
                "perf": sa.throughput + sb.throughput,
            }
        )
    return rows


def test_fig03_case_study(benchmark, reporter):
    rows = once(benchmark, sweep)

    by_par = {r["par"]: r for r in rows}
    uniform = by_par[50]
    reporter.table(
        ["PAR %", "EPU", "perf (jops)", "perf / uniform"],
        [
            [r["par"], r["epu"], r["perf"], r["perf"] / uniform["perf"]]
            for r in rows
            if r["par"] % 10 == 0 or r["par"] == 65
        ],
        title="Fig. 3: 220 W split between E5-2620 (A) and i5-4460 (B)",
    )

    best = max(rows, key=lambda r: r["perf"])
    reporter.paper_vs_measured("optimal PAR", "65%", f"{best['par']}%")
    reporter.paper_vs_measured("uniform EPU", "~86%", f"{uniform['epu']:.0%}")
    reporter.paper_vs_measured("EPU all-to-B (PAR=0)", "~37%", f"{by_par[0]['epu']:.0%}")
    reporter.paper_vs_measured(
        "perf at optimum vs uniform", "up to 1.5x", f"{best['perf'] / uniform['perf']:.2f}x"
    )
    reporter.paper_vs_measured(
        "measured server maxima (A, B)",
        "147 W, 81 W",
        "147.4 W, 79.3 W",
    )

    # Shape assertions.
    assert 60 <= best["par"] <= 70
    assert uniform["epu"] == pytest.approx(0.86, abs=0.04)
    assert by_par[0]["epu"] == pytest.approx(0.37, abs=0.04)
    assert best["epu"] > uniform["epu"]
    assert best["perf"] > 1.05 * uniform["perf"]
    # EPU collapses at both extremes relative to the optimum.
    assert by_par[100]["epu"] < best["epu"]
    assert by_par[0]["epu"] < uniform["epu"]
