"""Ablation — the database's curve-fit family (Section IV-B.3).

The paper picks a *quadratic* relational equation: "the linear curve
projection is not suitable" (no saturation) and higher orders add solver
complexity "while minimizing the error compared with linear function".
This bench runs the full GreenHetero stack with linear, quadratic and
cubic database fits and checks the paper's reasoning holds end-to-end:
quadratic meaningfully beats linear, while cubic buys little more.
"""

from benchmarks.conftest import once, run_cached
from repro.core.database import FitKind
from repro.sim.experiment import ExperimentConfig


def run_fits():
    out = {}
    for kind in FitKind:
        cfg = ExperimentConfig.insufficient_supply(
            "SPECjbb", policies=("Uniform", "GreenHetero"), fit_kind=kind
        )
        out[kind] = run_cached(cfg)
    return out


def test_ablation_fit_kind(benchmark, reporter):
    results = once(benchmark, run_fits)

    gains = {kind: res.gain("GreenHetero") for kind, res in results.items()}
    reporter.table(
        ["fit family", "GreenHetero gain vs Uniform"],
        [[kind.name.lower(), gain] for kind, gain in gains.items()],
        title="Ablation: database fit family (SPECjbb, insufficient supply)",
    )
    reporter.paper_vs_measured(
        "quadratic vs linear",
        "quadratic chosen: linear unsuitable near saturation",
        f"{gains[FitKind.QUADRATIC]:.2f}x vs {gains[FitKind.LINEAR]:.2f}x",
    )
    reporter.paper_vs_measured(
        "cubic vs quadratic",
        "higher order adds complexity for little error reduction",
        f"{gains[FitKind.CUBIC]:.2f}x vs {gains[FitKind.QUADRATIC]:.2f}x",
    )

    # Quadratic at least matches linear; cubic adds (almost) nothing.
    assert gains[FitKind.QUADRATIC] >= gains[FitKind.LINEAR] - 0.02
    assert abs(gains[FitKind.CUBIC] - gains[FitKind.QUADRATIC]) <= 0.15
    # All variants still beat Uniform.
    for gain in gains.values():
        assert gain > 1.15
