"""Microbench — parallel experiment runner and solver memoization.

Two claims the runner makes, measured:

* **Fan-out wins wall time, not telemetry.**  The five Table III
  policies of one config are independent stacks, so spreading them over
  a process pool should approach ``min(jobs, n_policies)``-way speedup
  while every :class:`EpochRecord` stays bit-identical to the serial
  path.
* **The solve cache earns its keep under cyclic budgets.**  The
  constrained-supply sweep re-poses the same PAR program every time the
  budget cycle wraps; with a static database (GreenHetero-a) the group
  fits never change, so most solves after the first cycle should be
  cache hits.

Results land in ``BENCH_parallel_runner.json`` at the repo root (CI
uploads it as an artifact).  The speedup assertion is gated on the
host's core count — a 1-core runner can only verify bit-identity.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import once
from repro.core.policies import make_policy
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import run_experiment

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel_runner.json"

#: The full Table III policy set on a short window: enough epochs for the
#: pool's fork/pickle overhead to amortise, short enough for CI.
FANOUT_CONFIG = ExperimentConfig(days=0.25)
FANOUT_JOBS = min(4, os.cpu_count() or 1)


def _timed_run(jobs: int):
    start = time.perf_counter()
    result = run_experiment(FANOUT_CONFIG, jobs=jobs)
    return result, time.perf_counter() - start


def run_fanout():
    serial, serial_s = _timed_run(jobs=1)
    parallel, parallel_s = _timed_run(jobs=FANOUT_JOBS)
    identical = all(
        list(serial.log(name)) == list(parallel.log(name))
        for name in FANOUT_CONFIG.policies
    )
    return {
        "policies": list(FANOUT_CONFIG.policies),
        "days": FANOUT_CONFIG.days,
        "jobs": FANOUT_JOBS,
        "cpu_count": os.cpu_count() or 1,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "bit_identical": identical,
    }


def run_cache_study():
    cfg = ExperimentConfig.insufficient_supply(
        "SPECjbb", policies=("GreenHetero-a",)
    )
    policy = make_policy("GreenHetero-a")
    sim = Simulation.assemble(
        policy=policy,
        rack=cfg.build_rack(),
        clock=cfg.build_clock(),
        seed=cfg.seed,
        supply_fractions=cfg.supply_fractions,
    )
    sim.run()
    return policy.solver.cache_info()


def test_parallel_fanout_and_solver_cache(benchmark, reporter):
    fanout = once(benchmark, run_fanout)
    cache = run_cache_study()

    payload = {"fanout": fanout, "solver_cache": cache}
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    reporter.table(
        ["metric", "value"],
        [
            ["cores", fanout["cpu_count"]],
            ["jobs", fanout["jobs"]],
            ["serial", f"{fanout['serial_s']:.2f} s"],
            ["parallel", f"{fanout['parallel_s']:.2f} s"],
            ["speedup", f"{fanout['speedup']:.2f}x"],
            ["bit-identical", fanout["bit_identical"]],
        ],
        title=f"policy fan-out, {len(fanout['policies'])} policies x {fanout['days']:g} days",
    )
    reporter.table(
        ["metric", "value"],
        [
            ["hits", cache["hits"]],
            ["misses", cache["misses"]],
            ["hit rate", f"{cache['hit_rate']:.0%}"],
        ],
        title="solve cache, GreenHetero-a on the constrained-supply sweep",
    )
    reporter.line(f"wrote {RESULT_PATH.name}")

    # Parallelism must never change the telemetry.
    assert fanout["bit_identical"]
    # The speedup claim needs actual cores to stand on.
    if fanout["cpu_count"] >= 4 and fanout["jobs"] >= 4:
        assert fanout["speedup"] >= 2.0
    elif fanout["cpu_count"] >= 2 and fanout["jobs"] >= 2:
        assert fanout["speedup"] >= 1.2
    # Cyclic budgets on a static database: mostly repeat programs.
    assert cache["hit_rate"] > 0.5
