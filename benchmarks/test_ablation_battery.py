"""Ablation — battery depth-of-discharge policy (Section IV-B.1).

The paper fixes DoD at 40% "to mitigate the impact on battery lifetime"
(1300 cycles at that depth, [31]).  This bench sweeps the DoD cap and
exposes the trade the designers made: deeper discharge buys more green
autonomy (throughput before the grid takes over) at the cost of faster
lifetime consumption per day.
"""

from benchmarks.conftest import once
from repro.core.policies import make_policy
from repro.power.battery import BatteryBank
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig
from repro.units import SECONDS_PER_DAY

DODS = (0.2, 0.4, 0.6, 0.8)


def run_dod_sweep():
    out = {}
    for dod in DODS:
        cfg = ExperimentConfig(days=1.0, policies=("GreenHetero",))
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"),
            rack=cfg.build_rack(),
            clock=cfg.build_clock(),
            grid_budget_w=cfg.grid_budget_w,
            battery=BatteryBank(depth_of_discharge=dod),
            seed=cfg.seed,
        )
        log = sim.run()
        bank = sim.controller.pdu.battery
        out[dod] = {
            "throughput": log.mean_throughput(),
            "grid_wh": log.grid_energy_wh(cfg.epoch_s),
            "discharge_h": log.discharge_hours(cfg.epoch_s),
            # Express wear against the same 40%-DoD rated lifetime:
            # deeper cycles consume disproportionately more plate life,
            # approximated by the standard ~1/DoD^1.3 cycle-life law.
            "wear": bank.equivalent_cycles * (dod / 0.4) ** 1.3,
        }
    return out


def test_ablation_battery_dod(benchmark, reporter):
    results = once(benchmark, run_dod_sweep)

    reporter.table(
        ["DoD", "mean jops", "grid Wh/day", "battery h/day", "wear (40%-equiv cycles)"],
        [
            [f"{dod:.0%}", r["throughput"], r["grid_wh"], r["discharge_h"], r["wear"]]
            for dod, r in results.items()
        ],
        title="Ablation: battery depth-of-discharge cap",
    )
    reporter.paper_vs_measured(
        "paper's choice",
        "DoD 40% balances lifetime (1300 cycles) against autonomy",
        f"40% gives {results[0.4]['discharge_h']:.1f} h/day battery, "
        f"wear {results[0.4]['wear']:.2f} cycles/day",
    )

    dods = sorted(results)
    # Deeper DoD -> more battery autonomy and less grid energy.
    for lo, hi in zip(dods, dods[1:]):
        assert results[hi]["discharge_h"] >= results[lo]["discharge_h"] - 0.25
        assert results[hi]["grid_wh"] <= results[lo]["grid_wh"] * 1.05
    # ... but strictly more lifetime wear.
    assert results[0.8]["wear"] > results[0.2]["wear"]
    # At the paper's 2-cycles/day worst case, 1300 cycles >> one year.
    assert results[0.4]["wear"] < 3.0
