"""Ablation — greedy vs rationed battery discharge (beyond the paper).

The paper's selector burns the battery at full demand until the DoD
floor, then falls back to the under-provisioned grid.  Throughput is
concave in power, so spreading the same stored energy evenly across the
dark hours (``RationedSourceSelector``) should beat burst-then-starve
whenever the grid fallback is weak — Jensen's inequality applied to the
rack's response curve.
"""

import numpy as np

from benchmarks.conftest import once
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.core.scheduler import AdaptiveScheduler
from repro.core.sources import RationedSourceSelector, SourceSelector
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import synthesize_irradiance
from repro.units import EPOCH_SECONDS

WEAK_GRID_W = 400.0
NIGHT_EPOCHS = 48  # midnight to noon, 15-minute epochs


def run_night(selector) -> float:
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "Streamcluster")
    trace = synthesize_irradiance(days=2, seed=29)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1.4 * rack.max_draw_w),
        BatteryBank(),
        GridSource(budget_w=WEAK_GRID_W),
    )
    policy = make_policy("GreenHetero")
    controller = GreenHeteroController(
        rack=rack,
        pdu=pdu,
        policy=policy,
        monitor=Monitor(seed=29),
        scheduler=AdaptiveScheduler(policy, selector=selector),
    )
    total = 0.0
    for i in range(NIGHT_EPOCHS):
        total += controller.run_epoch(i * EPOCH_SECONDS).throughput
    return total / NIGHT_EPOCHS


def test_ablation_battery_rationing(benchmark, reporter):
    results = once(
        benchmark,
        lambda: {
            "greedy (paper)": run_night(SourceSelector()),
            "rationed": run_night(RationedSourceSelector(night_length_s=12 * 3600.0)),
        },
    )

    greedy = results["greedy (paper)"]
    rationed = results["rationed"]
    reporter.table(
        ["discharge strategy", "mean night throughput (ips)"],
        [[k, v] for k, v in results.items()],
        title=f"Ablation: battery discharge strategy (grid capped at {WEAK_GRID_W:.0f} W)",
    )
    reporter.paper_vs_measured(
        "rationing vs greedy",
        "extension: concavity favours spreading the stored energy",
        f"{rationed / greedy:.2f}x",
    )

    # Concavity pays: rationing wins under a weak grid fallback.
    assert rationed > greedy * 1.02
