"""Ablation — partial power-on within a server type (beyond the paper).

Section IV-B.3 fixes "the same amount of power to the same type of
servers by default" and defers more complex cases to future work.  The
:class:`PartialGroupSolver` implements that future work: choosing *how
many* servers of each type to power.  This bench sweeps the insufficient
regime and quantifies what the relaxation buys — the gap concentrates at
budgets stranded between a group's all-on minimum and its all-off zero.
"""

from benchmarks.conftest import once, run_cached
from repro.sim.experiment import ExperimentConfig

WORKLOADS = ("SPECjbb", "Streamcluster", "Canneal")
POLICIES = ("Uniform", "GreenHetero", "GreenHetero+")


def run_sweeps():
    return {
        wl: run_cached(
            ExperimentConfig.insufficient_supply(wl, policies=POLICIES)
        )
        for wl in WORKLOADS
    }


def test_ablation_partial_groups(benchmark, reporter):
    results = once(benchmark, run_sweeps)

    rows = []
    for wl, res in results.items():
        gh = res.gain("GreenHetero")
        ghp = res.gain("GreenHetero+")
        rows.append([wl, gh, ghp, ghp / gh])
    reporter.table(
        ["workload", "GreenHetero", "GreenHetero+ (k-of-n)", "extra"],
        rows,
        title="Ablation: partial power-on within a type (insufficient sweep)",
    )
    reporter.paper_vs_measured(
        "same-power-per-type rule",
        "paper's default; finer cases deferred to future work",
        "; ".join(
            f"{wl}: +{(res.gain('GreenHetero+') / res.gain('GreenHetero') - 1) * 100:.0f}%"
            for wl, res in results.items()
        ),
    )

    for wl, res in results.items():
        # The relaxation never hurts, and helps somewhere.
        assert res.gain("GreenHetero+") >= res.gain("GreenHetero") - 0.03, wl
    assert any(
        res.gain("GreenHetero+") > res.gain("GreenHetero") * 1.03
        for res in results.values()
    )
