"""Ablation — cluster-level grid sharing (the paper's future work).

Section IV-A concedes that rack-independent deployment "cannot share
capacities" across racks.  :class:`ClusterCoordinator` closes that gap:
two racks with *different* solar exposure share one grid feed, and the
shortfall-proportional split is compared against a blind equal split —
heterogeneity-awareness applied one level up.
"""

from benchmarks.conftest import once
from repro.core.cluster import ClusterCoordinator, GridSplit
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import Weather, synthesize_irradiance
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY

SHARED_GRID_W = 1600.0


def build_cluster(split):
    """Two Comb1 racks: one sunny (High trace), one clouded (Low trace)."""
    controllers = []
    for weather, seed in ((Weather.HIGH, 21), (Weather.LOW, 22)):
        rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "Streamcluster")
        trace = synthesize_irradiance(days=2, weather=weather, seed=seed)
        pdu = PDU(
            SolarFarm.sized_for(trace, 1.4 * rack.max_draw_w),
            BatteryBank(count=2),  # small batteries keep the grid relevant
            GridSource(budget_w=SHARED_GRID_W / 2),
        )
        controllers.append(
            GreenHeteroController(
                rack=rack, pdu=pdu, policy=make_policy("GreenHetero"),
                monitor=Monitor(seed=seed),
            )
        )
    return ClusterCoordinator(controllers, SHARED_GRID_W, split=split)


def run_day(split):
    cluster = build_cluster(split)
    total = 0.0
    for i in range(96):
        records = cluster.run_epoch(SECONDS_PER_DAY + i * EPOCH_SECONDS)
        total += cluster.aggregate_throughput(records)
    return total / 96.0


def test_ablation_cluster_grid_split(benchmark, reporter):
    results = once(
        benchmark,
        lambda: {split: run_day(split) for split in (GridSplit.EQUAL, GridSplit.SHORTFALL)},
    )

    equal = results[GridSplit.EQUAL]
    shortfall = results[GridSplit.SHORTFALL]
    reporter.table(
        ["grid split", "cluster mean throughput"],
        [["equal", equal], ["shortfall-proportional", shortfall]],
        title="Ablation: shared-grid division across a sunny and a clouded rack",
    )
    reporter.paper_vs_measured(
        "cross-rack sharing",
        "future work: racks cannot share capacities",
        f"shortfall split = {shortfall / equal:.2f}x equal split",
    )

    # Shortfall-aware division must not lose to the blind split, and on
    # asymmetric weather it should win outright.
    assert shortfall >= equal * 0.99
    assert shortfall / equal >= 1.01
