"""Ablation — the performance/carbon trade-off frontier (beyond the paper).

Sweeps :class:`CarbonAwareSelector`'s grid cap from pure-green (0%) to
the paper's performance-first behaviour (100%) over a 24-hour SPECjbb
day, pricing each point in throughput, CO2, and grid dollars.  The
frontier is what a sustainability-first operator actually chooses from.
"""

from benchmarks.conftest import once
from repro.analysis.sustainability import sustainability_report
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.core.scheduler import AdaptiveScheduler
from repro.core.sources import CarbonAwareSelector, SourceSelector
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.sim.telemetry import TelemetryLog
from repro.traces.nrel import synthesize_irradiance
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY

CAPS = (0.0, 0.3, 0.6, 1.0)


def run_day(selector) -> TelemetryLog:
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")
    trace = synthesize_irradiance(days=2, seed=53)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1.4 * rack.max_draw_w),
        BatteryBank(),
        GridSource(budget_w=1000.0),
    )
    policy = make_policy("GreenHetero")
    controller = GreenHeteroController(
        rack=rack, pdu=pdu, policy=policy, monitor=Monitor(seed=53),
        scheduler=AdaptiveScheduler(policy, selector=selector),
    )
    log = TelemetryLog()
    for i in range(96):
        log.append(controller.run_epoch(SECONDS_PER_DAY + i * EPOCH_SECONDS, 0.8))
    return log


def test_ablation_carbon_frontier(benchmark, reporter):
    def sweep():
        out = {}
        for cap in CAPS:
            selector = (
                SourceSelector()
                if cap >= 1.0
                else CarbonAwareSelector(grid_cap_fraction=cap)
            )
            log = run_day(selector)
            rollup = sustainability_report(log, EPOCH_SECONDS)
            out[cap] = {
                "perf": log.mean_throughput(),
                "co2": rollup.co2_kg,
                "renewable": rollup.renewable_fraction,
                "cost": rollup.grid_cost_usd,
            }
        return out

    results = once(benchmark, sweep)

    rows = [
        [f"{cap:.0%}", r["perf"], f"{r['renewable']:.0%}", r["co2"], r["cost"]]
        for cap, r in results.items()
    ]
    reporter.table(
        ["grid cap", "mean jops", "renewable", "CO2 kg/day", "grid $/day"],
        rows,
        title="Ablation: performance vs carbon (CarbonAwareSelector)",
    )
    pure, full = results[0.0], results[1.0]
    reporter.paper_vs_measured(
        "the trade",
        "paper is performance-first; greener operation sheds throughput",
        f"pure-green keeps {pure['perf'] / full['perf']:.0%} of perf "
        f"at {pure['co2'] / max(full['co2'], 1e-9):.0%} of the CO2",
    )

    caps = sorted(results)
    # Monotone frontier: more grid -> more performance, more carbon.
    for lo, hi in zip(caps, caps[1:]):
        assert results[hi]["perf"] >= results[lo]["perf"] * 0.98
        assert results[hi]["co2"] >= results[lo]["co2"] - 1e-6
    # Pure green is meaningfully cheaper in carbon and worse in perf.
    assert pure["co2"] < 0.6 * full["co2"]
    assert pure["perf"] < full["perf"]
    assert pure["renewable"] > full["renewable"]
