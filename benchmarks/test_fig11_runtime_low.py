"""Fig. 11 — 24-hour SPECjbb run on the Low solar trace.

Paper reference points:
  * Uniform stays consistently below GreenHetero whenever the renewable
    supply is not abundant; GreenHetero averages ~1.2x in Cases A/B;
  * the Low trace fluctuates more, driving more frequent battery
    discharge/charge activity than the High trace;
  * the batteries reach full DoD about twice per day;
  * leftover renewable cannot fully recharge the battery, so more grid
    power is consumed than under the High trace.
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.sim.experiment import ExperimentConfig

LOW = ExperimentConfig.fig11_low_trace(policies=("Uniform", "GreenHetero"))
HIGH = ExperimentConfig(days=1.0, policies=("Uniform", "GreenHetero"))


def _full_depth_discharges(log, floor_wh=7200.0, usable_wh=4800.0):
    """Count discharge episodes that ran the battery to its DoD floor.

    An episode is a maximal run of epochs with battery-to-load flow; it
    counts as full-depth when its ending SoC is within 10% of usable
    capacity of the floor (the selector hands over to the grid slightly
    above the strict floor, once the battery can no longer sustain the
    demand).
    """
    discharging = log.series("battery_to_load_w") > 1.0
    soc = log.battery_soc_wh
    episodes = 0
    in_episode = False
    for i, now in enumerate(discharging):
        if now:
            in_episode = True
            last_soc = soc[i]
        elif in_episode:
            if last_soc <= floor_wh + 0.1 * usable_wh:
                episodes += 1
            in_episode = False
    if in_episode and soc[-1] <= floor_wh + 0.1 * usable_wh:
        episodes += 1
    return episodes


def test_fig11_low_trace_runtime(benchmark, reporter):
    result = once(benchmark, lambda: run_cached(LOW))
    high_result = run_cached(HIGH)
    gh, uniform = result.log("GreenHetero"), result.log("Uniform")
    gh_high = high_result.log("GreenHetero")

    reporter.series("GreenHetero jops (hourly)", gh.throughputs[::4], fmt="{:8.0f}")
    reporter.series("Uniform     jops (hourly)", uniform.throughputs[::4], fmt="{:8.0f}")
    reporter.series("battery SoC Wh (hourly)", gh.battery_soc_wh[::4], fmt="{:7.0f}")

    gain = result.gain("GreenHetero")
    reporter.paper_vs_measured("gain on the Low trace", "~1.2x", f"{gain:.2f}x")

    full_low = _full_depth_discharges(gh)
    full_high = _full_depth_discharges(gh_high)
    reporter.paper_vs_measured(
        "full-DoD discharges per day", "twice (Low trace)",
        f"{full_low} (Low) vs {full_high} (High)",
    )

    grid_low = gh.grid_energy_wh(LOW.epoch_s)
    grid_high = gh_high.grid_energy_wh(HIGH.epoch_s)
    reporter.paper_vs_measured(
        "grid energy", "Low trace uses more grid than High",
        f"{grid_low:.0f} Wh vs {grid_high:.0f} Wh",
    )

    # Shape assertions.
    assert 1.1 <= gain <= 1.7
    # Paper: "GreenHetero discharge the batteries twice per day (to the
    # maximum DoD), so there is relatively very small impact on lifetime".
    assert 1 <= full_low <= 3
    assert full_low >= 2
    assert grid_low > grid_high
    # Renewable on the Low trace is weaker on average.
    assert gh.series("renewable_w").mean() < gh_high.series("renewable_w").mean()
    # DoD floor still honoured under heavy cycling.
    assert gh.battery_soc_wh.min() >= 7200.0 - 1e-6
