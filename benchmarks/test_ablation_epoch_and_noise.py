"""Ablation — scheduling epoch length and measurement-noise sensitivity.

Two operating-point questions the paper fixes by fiat:

* **Epoch length.**  The paper schedules every 15 minutes.  Shorter
  epochs track the renewable faster but amortise each decision over
  less work; longer epochs ride stale forecasts.  We sweep 7.5/15/30/60
  minutes on the Fig. 8 scenario.
* **Meter noise.**  The profiling database is built from noisy sensors
  (Section IV-B.2 calls its information "limited ... and can be less
  accurate").  We sweep the Monitor's noise scale on the constrained-
  supply sweep and verify GreenHetero degrades gracefully rather than
  falling off a cliff.
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig
from repro.units import SECONDS_PER_DAY

EPOCH_MINUTES = (7.5, 15.0, 30.0, 60.0)
NOISE_SCALES = (0.0, 1.0, 3.0)  # multiples of the default sigmas


def run_epoch_sweep():
    out = {}
    for minutes in EPOCH_MINUTES:
        cfg = ExperimentConfig(
            days=1.0, epoch_s=minutes * 60.0, policies=("Uniform", "GreenHetero")
        )
        res = run_cached(cfg)
        out[minutes] = res.gain("GreenHetero")
    return out


def test_ablation_epoch_length(benchmark, reporter):
    gains = once(benchmark, run_epoch_sweep)
    reporter.table(
        ["epoch", "GreenHetero gain"],
        [[f"{m:g} min", g] for m, g in gains.items()],
        title="Ablation: scheduling epoch length (Fig. 8 scenario)",
    )
    reporter.paper_vs_measured(
        "paper's 15-minute epoch", "chosen operating point",
        f"{gains[15.0]:.2f}x (7.5 min: {gains[7.5]:.2f}x, 60 min: {gains[60.0]:.2f}x)",
    )
    # The advantage is robust across a 8x epoch range.
    for gain in gains.values():
        assert gain > 1.1
    # The paper's choice is within 15% of the best in the sweep.
    assert gains[15.0] >= max(gains.values()) * 0.85


def run_noise_sweep():
    out = {}
    for scale in NOISE_SCALES:
        cfg = ExperimentConfig.insufficient_supply(
            "SPECjbb", policies=("Uniform", "GreenHetero")
        )
        gains = {}
        for policy_name in cfg.policies:
            sim = Simulation.assemble(
                policy=make_policy(policy_name),
                rack=cfg.build_rack(),
                clock=cfg.build_clock(),
                seed=cfg.seed,
                supply_fractions=cfg.supply_fractions,
            )
            sim.controller.monitor = Monitor(
                power_noise=0.02 * scale,
                perf_noise=0.03 * scale,
                renewable_noise=0.01 * scale,
                seed=cfg.seed + 1,
            )
            gains[policy_name] = sim.run().mean_throughput()
        out[scale] = gains["GreenHetero"] / gains["Uniform"]
    return out


def test_ablation_measurement_noise(benchmark, reporter):
    gains = once(benchmark, run_noise_sweep)
    reporter.table(
        ["noise scale", "GreenHetero gain"],
        [[f"{s:g}x default", g] for s, g in gains.items()],
        title="Ablation: meter-noise sensitivity (constrained-supply sweep)",
    )
    reporter.paper_vs_measured(
        "noisy profiling data", "database 'can be less accurate'",
        f"gain {gains[0.0]:.2f}x noiseless -> {gains[3.0]:.2f}x at 3x noise",
    )
    # Graceful degradation: even at 3x noise the gain survives.
    assert gains[3.0] > 1.15
    # Noise never *helps* beyond noise floor.
    assert gains[3.0] <= gains[0.0] * 1.1
