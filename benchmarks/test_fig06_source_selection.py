"""Fig. 6 — power-source selection over a 24-hour solar + demand profile.

The figure illustrates the three regimes against a typical diurnal rack
demand and a day of solar: Case A (renewable sufficient, battery
charges), Case B (renewable short, battery supplements), Case C
(renewable absent, battery then grid).  We regenerate the case timeline
from a Fig. 8-style run and assert the regimes appear in the expected
day-structure: C overnight, B at the shoulders, A around midday.
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.core.sources import PowerCase
from repro.sim.experiment import ExperimentConfig


def test_fig06_source_selection(benchmark, reporter):
    cfg = ExperimentConfig(days=1.0, policies=("GreenHetero",))
    result = once(benchmark, lambda: run_cached(cfg))
    log = result.log("GreenHetero")

    hours = (log.times_s % 86400.0) / 3600.0
    cases = log.cases
    timeline = "".join(c.value for c in cases)
    reporter.line("case per epoch (15 min each, midnight start):")
    for i in range(0, len(timeline), 32):
        reporter.line("  " + timeline[i : i + 32])

    renewable = log.series("renewable_w")
    demand = log.demands_w
    reporter.series("renewable W (hourly)", renewable[::4], fmt="{:7.0f}")
    reporter.series("demand W (hourly)", demand[::4], fmt="{:7.0f}")

    midday = (hours >= 11) & (hours <= 14)
    night = (hours <= 4) | (hours >= 22)
    case_a = np.array([c is PowerCase.A for c in cases])
    case_c = np.array([c is PowerCase.C for c in cases])
    case_b = np.array([c is PowerCase.B for c in cases])

    reporter.paper_vs_measured(
        "regimes present", "A, B and C", ",".join(sorted({c.value for c in cases}))
    )
    reporter.paper_vs_measured(
        "midday regime", "mostly Case A", f"{case_a[midday].mean():.0%} A"
    )
    reporter.paper_vs_measured(
        "night regime", "Case C", f"{case_c[night].mean():.0%} C"
    )

    # Shape: night is C, midday is mostly A, B exists at the shoulders.
    assert case_c[night].mean() > 0.95
    assert case_a[midday].mean() > 0.5
    assert case_b.sum() > 0
    # Renewable exceeds demand in at least some Case A epoch and is ~0 at night.
    assert renewable[case_a].max() >= demand[case_a].min() * 0.9
    assert renewable[night].max() < 5.0
