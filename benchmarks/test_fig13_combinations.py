"""Fig. 13 — SPECjbb across the Table IV server combinations.

All CPU combinations run against the *same* absolute supply levels (the
standard testbed's power infrastructure), as in the paper's fixed
prototype.

Paper reference points:
  * Comb2 and Comb4 behave like homogeneous racks (~3% improvement):
    their two platforms have similar power profiles, and the shared
    supply barely stresses these smaller racks;
  * Comb1 and Comb3 are truly heterogeneous: up to ~1.5x gains;
  * the three-type Comb5 solves correctly and gains ~1.6x (ours lands
    higher — the 15-server rack is much deeper under the shared supply
    than the paper's; see EXPERIMENTS.md).
"""

from benchmarks.conftest import once, run_cached
from repro.sim.experiment import COMBINATIONS, ExperimentConfig

CPU_COMBOS = ("Comb1", "Comb2", "Comb3", "Comb4", "Comb5")
POLICIES = ("Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero")


def run_combos():
    return {
        name: run_cached(ExperimentConfig.combination_sweep(name, "SPECjbb", policies=POLICIES))
        for name in CPU_COMBOS
    }


def test_fig13_server_combinations(benchmark, reporter):
    results = once(benchmark, run_combos)

    rows = []
    gains = {}
    for name, res in results.items():
        table = res.gains_table("throughput")
        gains[name] = table["GreenHetero"]
        platforms = "+".join(p for p, _ in COMBINATIONS[name])
        rows.append([name, platforms] + [table[p] for p in POLICIES])
    reporter.table(
        ["combo", "platforms"] + list(POLICIES),
        rows,
        title="Fig. 13: SPECjbb gains by server combination (shared supply)",
    )
    reporter.paper_vs_measured("Comb2/Comb4 (homogeneous-like)", "~1.03x",
                               f"{gains['Comb2']:.2f}x / {gains['Comb4']:.2f}x")
    reporter.paper_vs_measured("Comb1/Comb3 (heterogeneous)", "up to ~1.5x",
                               f"{gains['Comb1']:.2f}x / {gains['Comb3']:.2f}x")
    reporter.paper_vs_measured("Comb5 (three types)", "~1.6x", f"{gains['Comb5']:.2f}x")

    # Homogeneous-like combos: essentially no gain.
    assert abs(gains["Comb2"] - 1.0) <= 0.12
    assert abs(gains["Comb4"] - 1.0) <= 0.12
    # Heterogeneous combos: clear gains.
    assert gains["Comb1"] >= 1.25
    assert gains["Comb3"] >= 1.25
    # Three-type rack: solved, and gains at least the two-type level.
    assert gains["Comb5"] >= 1.3
    # Heterogeneity ordering: hetero combos beat homogeneous-like ones.
    assert min(gains["Comb1"], gains["Comb3"]) > max(gains["Comb2"], gains["Comb4"])
