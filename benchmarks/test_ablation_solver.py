"""Ablation — solver design choices.

Quantifies two GreenHetero solver decisions the paper leaves implicit:

* **Granularity** — the Manual baseline's 10% trial grid vs the solver's
  continuous optimum (the paper observes Manual's "PAR accuracy is very
  low" yet it still beats Uniform).
* **Safety margin** — allocating exactly at the learned power-on
  boundary risks landing just below a server's true minimum active draw
  (meter noise), wasting the whole share.  The margin trades a few watts
  of headroom for cliff immunity.
"""

from benchmarks.conftest import once, run_cached
from repro.core.database import PerfPowerFit
from repro.core.solver import GroupModel, PARSolver
from repro.sim.experiment import ExperimentConfig


def granularity_gap():
    """Projected performance lost by Manual's 10% trial grid."""
    e5 = GroupModel(
        "E5-2620", 5,
        PerfPowerFit(coefficients=(-2.4, 840.0, -49000.0), min_power_w=100.0, max_power_w=150.0),
    )
    i5 = GroupModel(
        "i5-4460", 5,
        PerfPowerFit(coefficients=(-8.0, 1560.0, -59000.0), min_power_w=55.0, max_power_w=80.0),
    )
    solver = PARSolver()
    gaps = []
    for budget in (700.0, 850.0, 1000.0, 1150.0):
        exact = solver.solve([e5, i5], budget).expected_perf

        def projected(ratios, budget=budget):
            return sum(
                g.count * g.fit.predict(r * budget / g.count)
                for g, r in zip((e5, i5), ratios)
            )

        _, coarse = PARSolver.exhaustive(2, projected, granularity=0.1)
        gaps.append((budget, exact, coarse))
    return gaps


def test_ablation_granularity(benchmark, reporter):
    gaps = once(benchmark, granularity_gap)
    reporter.table(
        ["budget W", "solver perf", "10% grid perf", "grid/solver"],
        [[b, e, c, c / e] for b, e, c in gaps],
        title="Ablation: continuous solver vs Manual's 10% trial grid",
    )
    for _, exact, coarse in gaps:
        # The solver never loses to the coarse grid, and the grid stays
        # within a modest factor (it is "near-optimal", per Table III).
        assert exact >= coarse - 1e-6
        assert coarse >= 0.75 * exact


def run_margin_ablation():
    out = {}
    for margin in (0.0, 0.05):
        from repro.core.policies import GreenHeteroPolicy
        # The standard experiment uses the default margin; rebuild the
        # stack manually for margin=0 via a custom policy instance.
        from repro.core.solver import PARSolver as Solver
        from repro.sim.engine import Simulation
        from repro.sim.experiment import ExperimentConfig

        cfg = ExperimentConfig.insufficient_supply(
            "SPECjbb", policies=("Uniform",)
        )
        base = run_cached(cfg)
        sim = Simulation.assemble(
            policy=GreenHeteroPolicy(solver=Solver(safety_margin=margin)),
            rack=cfg.build_rack(),
            clock=cfg.build_clock(),
            seed=cfg.seed,
            supply_fractions=cfg.supply_fractions,
        )
        log = sim.run()
        uniform = base.log("Uniform")
        out[margin] = log.mean_throughput() / uniform.mean_throughput()
    return out


def test_ablation_safety_margin(benchmark, reporter):
    gains = once(benchmark, run_margin_ablation)
    reporter.table(
        ["safety margin", "GreenHetero gain vs Uniform"],
        [[f"{m:.0%}", g] for m, g in gains.items()],
        title="Ablation: solver safety margin at the power-on cliff",
    )
    reporter.paper_vs_measured(
        "margin value",
        "allocations at the noisy learned boundary waste whole shares",
        f"0%: {gains[0.0]:.2f}x, 5%: {gains[0.05]:.2f}x",
    )
    # The margin never hurts materially and both beat Uniform.
    assert gains[0.05] >= gains[0.0] - 0.05
    assert gains[0.05] > 1.2
