"""Fig. 14 — the GPU combination (Comb6: E5-2620 + Titan Xp).

Rodinia workloads with both CPU and GPU ports, under the constrained-
supply sweep of the GPU rack's own (much larger) envelope.

Paper reference points:
  * GreenHetero performs best across all four workloads;
  * Srad_v1 shows the largest improvement (up to 4.6x; average 2.5x
    across the workloads) because the GPU dominates it so thoroughly
    that uniform watts sent to CPUs are nearly worthless;
  * Cfd runs about equally fast on CPU and GPU, so its gain is smallest.
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.analysis.metrics import geometric_mean
from repro.sim.experiment import ExperimentConfig

GPU_WORKLOADS = ("Streamcluster", "Srad_v1", "Particlefilter", "Cfd")
POLICIES = ("Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero")


def run_gpu_sweeps():
    return {
        wl: run_cached(
            ExperimentConfig.combination_sweep("Comb6", wl, policies=POLICIES)
        )
        for wl in GPU_WORKLOADS
    }


def test_fig14_gpu_combination(benchmark, reporter):
    results = once(benchmark, run_gpu_sweeps)

    rows = []
    gh_gains = {}
    max_epoch_gains = {}
    for wl, res in results.items():
        table = res.gains_table("throughput")
        gh_gains[wl] = table["GreenHetero"]
        u = res.log("Uniform").throughputs
        g = res.log("GreenHetero").throughputs
        valid = u > 0
        max_epoch_gains[wl] = float((g[valid] / u[valid]).max()) if valid.any() else float("inf")
        rows.append([wl] + [table[p] for p in POLICIES] + [max_epoch_gains[wl]])
    reporter.table(
        ["workload"] + list(POLICIES) + ["max epoch gain"],
        rows,
        title="Fig. 14: Comb6 (5x E5-2620 + 5x Titan Xp) gains vs Uniform",
    )
    avg = geometric_mean(list(gh_gains.values()))
    reporter.paper_vs_measured("Srad_v1 gain", "up to 4.6x",
                               f"avg {gh_gains['Srad_v1']:.2f}x, max epoch {max_epoch_gains['Srad_v1']:.1f}x")
    reporter.paper_vs_measured("average gain", "~2.5x", f"{avg:.2f}x")
    reporter.paper_vs_measured("smallest gain", "Cfd", min(gh_gains, key=gh_gains.get))

    # Shape assertions.
    assert max(gh_gains, key=gh_gains.get) == "Srad_v1"
    assert min(gh_gains, key=gh_gains.get) == "Cfd"
    assert gh_gains["Srad_v1"] >= 2.0
    assert max_epoch_gains["Srad_v1"] >= 3.5  # "up to" headline
    assert gh_gains["Cfd"] <= 1.6
    assert 1.6 <= avg <= 3.2
    # GreenHetero best (or tied) for every workload.
    for wl, res in results.items():
        table = res.gains_table("throughput")
        assert table["GreenHetero"] >= max(table.values()) - 0.1, wl
