"""Fig. 12 — impact of the grid power budget when the batteries drain.

Paper reference points:
  * absolute performance falls as the grid budget is cut;
  * GreenHetero sustains more performance than Uniform at every budget,
    so it lets the operator under-provision the grid infrastructure:
    GreenHetero at a smaller budget matches Uniform at a larger one;
  * the advantage narrows once the budget approaches the rack demand
    (abundant supply needs no clever allocation).
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.sim.experiment import ExperimentConfig

BUDGETS = (600.0, 800.0, 1000.0, 1200.0, 1400.0)


def run_budget_sweep():
    out = {}
    for budget in BUDGETS:
        cfg = ExperimentConfig(
            grid_budget_w=budget, policies=("Uniform", "GreenHetero")
        )
        out[budget] = run_cached(cfg)
    return out


def test_fig12_grid_budget(benchmark, reporter):
    results = once(benchmark, run_budget_sweep)

    rows = []
    gh_abs = {}
    uniform_abs = {}
    gains = {}
    for budget, res in results.items():
        gh_abs[budget] = res.log("GreenHetero").mean_throughput()
        uniform_abs[budget] = res.log("Uniform").mean_throughput()
        gains[budget] = res.gain("GreenHetero")
        rows.append([f"{budget:.0f} W", uniform_abs[budget], gh_abs[budget], gains[budget]])
    reporter.table(
        ["grid budget", "Uniform jops", "GreenHetero jops", "gain (B/C epochs)"],
        rows,
        title="Fig. 12: SPECjbb vs grid power budget",
    )

    # Under-provisioning headline: GreenHetero at a smaller budget vs
    # Uniform at a larger one.
    reporter.paper_vs_measured(
        "under-provisioning",
        "GreenHetero sustains Uniform's performance at a lower budget",
        f"GH@800W={gh_abs[800.0]:.0f} vs Uniform@1200W={uniform_abs[1200.0]:.0f}",
    )

    budgets = sorted(results)
    # Performance is monotone (within noise) in the budget for both.
    for lo, hi in zip(budgets, budgets[1:]):
        assert gh_abs[hi] >= gh_abs[lo] * 0.97
        assert uniform_abs[hi] >= uniform_abs[lo] * 0.97
    # GreenHetero >= Uniform at every budget.
    for budget in budgets:
        assert gains[budget] >= 0.99
    # The advantage shrinks once the budget is abundant.
    assert gains[1400.0] <= max(gains.values())
    # Under-provisioning: GH at 800 W at least matches Uniform at 1200 W.
    assert gh_abs[800.0] >= 0.9 * uniform_abs[1200.0]
