"""Fig. 8 — 24-hour SPECjbb run on the High solar trace.

(a) Throughput timeline of GreenHetero vs Uniform, plus the PAR series.
(b) Battery discharging/charging and grid activity.

Paper reference points:
  * GreenHetero outperforms Uniform for most epochs, with up to ~1.5x
    gain while the renewable supply is insufficient (Cases B/C);
  * near-equal performance when the supply is abundant;
  * mean PAR over the day ~58%;
  * the battery sustains the load for ~4.2 h overnight before the grid
    takes over and begins charging it (Grid Load + Grid Charging);
  * surplus renewable charges the battery in Case A.
"""

import numpy as np
import pytest

from benchmarks.conftest import once, run_cached
from repro.core.sources import PowerCase
from repro.power.sources import ChargeSource
from repro.sim.experiment import ExperimentConfig

CFG = ExperimentConfig(days=1.0, policies=("Uniform", "GreenHetero"))


def test_fig08a_performance_timeline(benchmark, reporter):
    result = once(benchmark, lambda: run_cached(CFG))
    uniform, gh = result.log("Uniform"), result.log("GreenHetero")

    reporter.series("GreenHetero jops (hourly)", gh.throughputs[::4], fmt="{:8.0f}")
    reporter.series("Uniform     jops (hourly)", uniform.throughputs[::4], fmt="{:8.0f}")
    reporter.series("PAR (hourly)", gh.pars[::4], fmt="{:.2f}")

    mask = result.insufficient_mask()
    gain = result.gain("GreenHetero")
    per_epoch = gh.throughputs[mask] / np.maximum(uniform.throughputs[mask], 1e-9)
    reporter.paper_vs_measured(
        "gain in Cases B/C", "up to ~1.5x", f"mean {gain:.2f}x, max {per_epoch.max():.2f}x"
    )
    reporter.paper_vs_measured(
        "mean PAR over the day", "~58%", f"{gh.mean_par(mask):.0%}"
    )

    assert 1.15 <= gain <= 1.8
    assert per_epoch.max() >= 1.4
    assert 0.50 <= gh.mean_par(mask) <= 0.70
    # Abundant supply: near-equal performance (Case A epochs).
    sufficient = ~mask
    if sufficient.sum() >= 4:
        ratio = gh.mean_throughput(sufficient) / uniform.mean_throughput(sufficient)
        assert ratio == pytest.approx(1.0, abs=0.35)


def test_fig08b_battery_and_grid_activity(benchmark, reporter):
    result = once(benchmark, lambda: run_cached(CFG))
    gh = result.log("GreenHetero")

    reporter.series("battery SoC Wh (hourly)", gh.battery_soc_wh[::4], fmt="{:7.0f}")
    reporter.series("battery->load W (hourly)", gh.series("battery_to_load_w")[::4], fmt="{:6.0f}")
    reporter.series("grid->load W (hourly)", gh.series("grid_to_load_w")[::4], fmt="{:6.0f}")
    reporter.series("charging W (hourly)", gh.series("charge_w")[::4], fmt="{:6.0f}")

    # Paper's ~4.2 h figure is the continuous overnight (Case C)
    # discharge before the grid takes over.
    case_c_discharge = gh.case_mask(PowerCase.C) & (
        gh.series("battery_to_load_w") > 1.0
    )
    overnight_h = float(case_c_discharge.sum()) * CFG.epoch_s / 3600.0
    total_h = gh.discharge_hours(CFG.epoch_s)
    reporter.paper_vs_measured(
        "overnight (Case C) battery discharge", "~4.2 h",
        f"{overnight_h:.1f} h (plus {total_h - overnight_h:.1f} h of Case B supplements)",
    )

    # Battery honours the 40% DoD floor.
    assert gh.battery_soc_wh.min() >= 7200.0 - 1e-6
    # It discharges overnight for hours, then the grid takes over.
    assert 3.0 <= overnight_h <= 7.0
    grid_epochs = gh.series("grid_to_load_w") > 1.0
    assert grid_epochs.sum() >= 8
    grid_charging = [
        r for r in gh if r.charge_source is ChargeSource.GRID and r.charge_w > 0
    ]
    assert grid_charging, "grid charging (Fig. 8b 'Grid Charging') must occur"
    # Case A epochs charge the battery from renewable surplus.
    renewable_charging = [
        r
        for r in gh
        if r.case is PowerCase.A and r.charge_source is ChargeSource.RENEWABLE
    ]
    assert renewable_charging, "Case A must charge the battery from surplus"
