"""Tables I-IV — the paper's configuration tables, regenerated.

These benches print each table from the library's registries and assert
the encoded values match the paper rows exactly.
"""

import pytest

from benchmarks.conftest import once
from repro.core.policies import POLICY_NAMES, all_policies
from repro.servers.platform import PLATFORMS, get_platform
from repro.sim.experiment import COMBINATIONS
from repro.workloads.catalog import WORKLOADS, get_workload


def test_table1_workloads(benchmark, reporter):
    def build():
        return [
            [w.name, w.suite, w.metric, w.slo.describe() if w.slo else "-"]
            for w in WORKLOADS.values()
        ]

    rows = once(benchmark, build)
    reporter.table(["workload", "suite", "metric", "SLO"], rows, title="Table I")

    assert len(rows) == 15
    assert get_workload("SPECjbb").slo.describe() == "99%-ile 500ms"
    assert get_workload("Memcached").slo.describe() == "95%-ile 10ms"
    suites = {w.suite for w in WORKLOADS.values()}
    assert suites == {"SPEC", "Cloudsuite", "PARSEC", "SPECCPU", "Rodinia"}


def test_table2_servers(benchmark, reporter):
    def build():
        return [
            [
                s.name,
                f"{s.base_frequency_hz / 1e9:.3f} GHz",
                s.sockets,
                s.cores,
                f"{s.peak_power_w:.0f} W",
                f"{s.idle_power_w:.0f} W",
            ]
            for s in PLATFORMS.values()
        ]

    rows = once(benchmark, build)
    reporter.table(
        ["server", "frequency", "sockets", "cores", "peak", "idle"],
        rows,
        title="Table II",
    )

    assert get_platform("E5-2620").peak_power_w == 178.0
    assert get_platform("TitanXp").cores == 3840
    assert get_platform("i7-8700K").idle_power_w == 39.0


def test_table3_policies(benchmark, reporter):
    policies = once(benchmark, all_policies)
    reporter.table(
        ["policy", "uses DB", "updates DB", "needs oracle"],
        [
            [p.name, p.uses_database, p.updates_database, p.requires_oracle]
            for p in policies
        ],
        title="Table III",
    )

    assert tuple(p.name for p in policies) == POLICY_NAMES
    by_name = {p.name: p for p in policies}
    assert not by_name["Uniform"].uses_database
    assert by_name["Manual"].requires_oracle
    assert by_name["GreenHetero"].updates_database
    assert not by_name["GreenHetero-a"].updates_database


def test_table4_combinations(benchmark, reporter):
    def build():
        return [
            [name, ", ".join(f"{count}x {p}" for p, count in combo)]
            for name, combo in COMBINATIONS.items()
        ]

    rows = once(benchmark, build)
    reporter.table(["combination", "servers"], rows, title="Table IV")

    assert COMBINATIONS["Comb1"] == (("E5-2620", 5), ("i5-4460", 5))
    assert COMBINATIONS["Comb5"] == (("E5-2620", 5), ("E5-2603", 5), ("i5-4460", 5))
    assert COMBINATIONS["Comb6"][1][0] == "TitanXp"
