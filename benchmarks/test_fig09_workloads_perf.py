"""Fig. 9 — performance of 13 workloads under the five policies.

Normalized to Uniform, during insufficient renewable supply (the paper
"focuses on the analysis of the case when the renewable power is
insufficient"; we reproduce it with the constrained-supply sweep).

Paper reference points:
  * GreenHetero is best overall, averaging ~1.6x over Uniform;
  * Streamcluster shows the best gain (~2.2x), Memcached the worst (~1.2x);
  * Mcf (HPC) gains ~1.3x;
  * Manual beats Uniform despite its coarse 10% granularity;
  * GreenHetero-p wins or loses depending on whether the power left
    after feeding the efficiency leader can power the other group on;
  * GreenHetero-a occasionally trails GreenHetero (database updates help).
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.analysis.metrics import summarize_gains
from repro.sim.experiment import ExperimentConfig
from repro.workloads.catalog import FIG9_WORKLOADS

POLICIES = ("Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero")


def run_sweeps():
    return {
        wl: run_cached(ExperimentConfig.insufficient_supply(wl, policies=POLICIES))
        for wl in FIG9_WORKLOADS
    }


def test_fig09_workload_performance(benchmark, reporter):
    results = once(benchmark, run_sweeps)

    rows = []
    gh_gains = {}
    for wl, res in results.items():
        gains = res.gains_table("throughput")
        gh_gains[wl] = gains["GreenHetero"]
        rows.append([wl] + [gains[p] for p in POLICIES])
    reporter.table(
        ["workload"] + list(POLICIES),
        rows,
        title="Fig. 9: performance normalized to Uniform (insufficient supply)",
    )

    summary = summarize_gains(gh_gains)
    reporter.paper_vs_measured("average GreenHetero gain", "~1.6x", f"{summary['mean']:.2f}x")
    reporter.paper_vs_measured(
        "best workload", "Streamcluster ~2.2x",
        f"{summary['best_workload']} {summary['max']:.2f}x",
    )
    reporter.paper_vs_measured(
        "worst workload", "Memcached ~1.2x",
        f"{summary['worst_workload']} {summary['min']:.2f}x",
    )
    reporter.paper_vs_measured("Mcf gain", "~1.3x", f"{gh_gains['Mcf']:.2f}x")

    # Shape assertions.
    assert summary["best_workload"] == "Streamcluster"
    assert summary["worst_workload"] == "Memcached"
    assert 1.4 <= summary["mean"] <= 1.9
    assert 1.9 <= summary["max"] <= 2.7
    assert 1.0 <= summary["min"] <= 1.35
    assert 1.1 <= gh_gains["Mcf"] <= 1.6
    for wl, res in results.items():
        gains = res.gains_table("throughput")
        # GreenHetero is never (meaningfully) below any other policy.
        assert gains["GreenHetero"] >= max(gains.values()) - 0.08, wl
        # Manual beats Uniform.
        assert gains["Manual"] >= 0.99, wl
