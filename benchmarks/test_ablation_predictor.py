"""Ablation — the prediction method (Section IV-B.1).

The paper selects Holt double exponential smoothing but notes "any other
proven prediction approaches can be integrated".  This bench compares
Holt against persistence (last value) and a moving average on one-step
solar forecasting over the High and Low traces, and confirms Holt's
trend term earns its keep exactly where the paper needs it: on the
smooth ramps of the solar day.
"""

import numpy as np

from benchmarks.conftest import once
from repro.core.predictor import (
    HoltPredictor,
    MovingAveragePredictor,
    PersistencePredictor,
)
from repro.power.solar import SolarFarm
from repro.traces.nrel import Weather, synthesize_irradiance


def one_step_mae(predictor, series):
    """Mean absolute one-step forecast error over ``series``."""
    errors = []
    for value in series:
        if predictor.ready:
            errors.append(abs(predictor.predict() - value))
        predictor.observe(float(value))
    return float(np.mean(errors))


def run_comparison():
    out = {}
    for weather in (Weather.HIGH, Weather.LOW):
        trace = synthesize_irradiance(days=3, weather=weather, seed=7)
        farm = SolarFarm.sized_for(trace, peak_power_w=1900.0)
        series = [farm.power_at(float(t)) for t in trace.times_s]
        train, test = series[:96], series[96:]
        holt = HoltPredictor.fit(train)
        persistence = PersistencePredictor()
        moving = MovingAveragePredictor(window=4)
        for p in (persistence, moving):
            for v in train:
                p.observe(v)
        out[weather.value] = {
            "holt": one_step_mae(holt, test),
            "persistence": one_step_mae(persistence, test),
            "moving-average": one_step_mae(moving, test),
            "scale": float(np.mean(test)),
        }
    return out


def test_ablation_predictor(benchmark, reporter):
    results = once(benchmark, run_comparison)

    rows = []
    for weather, errors in results.items():
        for name in ("holt", "persistence", "moving-average"):
            rows.append([weather, name, errors[name]])
    reporter.table(
        ["trace", "predictor", "one-step MAE (W)"],
        rows,
        title="Ablation: solar forecasting method",
    )
    for weather, errors in results.items():
        reporter.paper_vs_measured(
            f"Holt on {weather} trace",
            "effective for datacenter power patterns",
            f"MAE {errors['holt']:.0f} W vs persistence {errors['persistence']:.0f} W",
        )

    # Holt beats the moving average on both traces (the ramp kills a lagged
    # mean), and at least matches persistence on the smooth High trace.
    for weather, errors in results.items():
        assert errors["holt"] < errors["moving-average"]
    assert results["high"]["holt"] <= results["high"]["persistence"] * 1.05
    # Forecast error is small relative to the signal on the High trace.
    assert results["high"]["holt"] < 0.15 * results["high"]["scale"]
