"""Microbench — the serving daemon under a loadgen burst.

Boots the control-plane daemon in-process (one standard rack), fires the
bundled load generator at it, and measures what a deployment would ask
of the serving path: query throughput (qps), tail latency (p50/p99),
and whether the duplicate-heavy query mix actually lands in the PAR
solver's memo cache.

Results land in ``BENCH_serve.json`` at the repo root — the same record
``tools/serve_smoke.py`` produces in the CI smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import once
from repro.serve.daemon import AllocationDaemon
from repro.serve.loadgen import run_loadgen
from repro.serve.state import ServeConfig, ServeState

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

CONNECTIONS = 4
REQUESTS = 200


def run_burst(port: int):
    return run_loadgen(
        port=port, connections=CONNECTIONS, requests=REQUESTS, out=RESULT_PATH
    )


def test_serving_throughput_and_cache(benchmark, reporter):
    state = ServeState.build(ServeConfig())
    daemon = AllocationDaemon(state, port=0)
    thread = daemon.run_in_thread()
    try:
        result = once(benchmark, lambda: run_burst(daemon.port))
    finally:
        daemon.stop_from_thread()
        thread.join(timeout=30)

    latency = result["latency_ms"]
    cache = result["cache_after"]["racks"]["rack0"]["solver_cache"]
    reporter.table(
        ["metric", "value"],
        [
            ["connections", result["connections"]],
            ["requests", result["requests"]],
            ["qps", f"{result['qps']:.0f}"],
            ["p50", f"{latency['p50']:.2f} ms"],
            ["p99", f"{latency['p99']:.2f} ms"],
            ["errors", result["errors"]],
            ["solve cache", f"{cache['hits']} hits / {cache['misses']} misses"],
        ],
        title="serving daemon, loadgen burst",
    )
    reporter.line(f"wrote {RESULT_PATH.name}")

    assert result["errors"] == 0
    # The benchmark record CI archives must hold the headline numbers.
    saved = json.loads(RESULT_PATH.read_text())
    assert saved["qps"] > 0
    assert saved["latency_ms"]["p99"] >= saved["latency_ms"]["p50"]
    # Duplicate-budget queries are the serving hot path; they must memoise.
    assert cache["hit_rate"] > 0.5
