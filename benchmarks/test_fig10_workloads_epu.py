"""Fig. 10 — effective power utilization of the five policies.

Same runs as Fig. 9, EPU metric, normalized to Uniform.

Paper reference points:
  * average GreenHetero EPU gain ~2.2x (ours lands lower in magnitude —
    see EXPERIMENTS.md — with the orderings intact);
  * Canneal shows the best EPU improvement (paper: up to 2.7x);
  * the interactive Cloudsuite services (Web-search/Memcached) show the
    smallest improvement (paper: Web-search ~1.1x);
  * EPU gain is largely uncorrelated with performance gain, but higher
    EPU accompanies better overall performance.
"""

import numpy as np

from benchmarks.conftest import once, run_cached
from repro.analysis.metrics import summarize_gains
from repro.sim.experiment import ExperimentConfig
from repro.workloads.catalog import FIG9_WORKLOADS

POLICIES = ("Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero")


def run_sweeps():
    return {
        wl: run_cached(ExperimentConfig.insufficient_supply(wl, policies=POLICIES))
        for wl in FIG9_WORKLOADS
    }


def test_fig10_workload_epu(benchmark, reporter):
    results = once(benchmark, run_sweeps)

    rows = []
    epu_gains = {}
    perf_gains = {}
    for wl, res in results.items():
        gains = res.gains_table("epu")
        epu_gains[wl] = gains["GreenHetero"]
        perf_gains[wl] = res.gain("GreenHetero", "throughput")
        rows.append([wl] + [gains[p] for p in POLICIES])
    reporter.table(
        ["workload"] + list(POLICIES),
        rows,
        title="Fig. 10: EPU normalized to Uniform (insufficient supply)",
    )

    summary = summarize_gains(epu_gains)
    reporter.paper_vs_measured("average EPU gain", "~2.2x", f"{summary['mean']:.2f}x")
    reporter.paper_vs_measured(
        "best workload", "Canneal up to 2.7x",
        f"{summary['best_workload']} {summary['max']:.2f}x",
    )
    reporter.paper_vs_measured(
        "worst workload", "Web-search ~1.1x",
        f"{summary['worst_workload']} {summary['min']:.2f}x",
    )
    corr = np.corrcoef(list(epu_gains.values()), list(perf_gains.values()))[0, 1]
    reporter.paper_vs_measured(
        "EPU-vs-perf gain correlation", "no specific correlation", f"r = {corr:.2f}"
    )

    # Shape assertions.
    assert summary["best_workload"] == "Canneal"
    assert summary["worst_workload"] in ("Web-search", "Memcached")
    assert summary["max"] >= 1.9
    assert summary["min"] <= 1.45
    assert summary["mean"] >= 1.4
    # Not a tight linear relationship between the two gains.
    assert abs(corr) < 0.9
    # Every policy's EPU at least matches Uniform for every workload.
    for wl, res in results.items():
        for policy, gain in res.gains_table("epu").items():
            assert gain >= 0.95, (wl, policy)
