"""Microbench — temporal shifting vs the run-immediately baseline.

Runs the bundled mixed interactive+batch scenario (``repro shift``) for
a day of PV trace and reports the numbers the subsystem exists to move:
grid energy in each arm, the saved fraction, EPU drift, and deadline
misses.  The record lands in ``BENCH_shift.json`` at the repo root —
the same artifact ``tools/shift_smoke.py`` produces in the CI smoke job.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import once
from repro.shift.bench import run_shift_bench

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shift.json"


def test_shift_saves_grid_energy_without_misses(benchmark, reporter):
    payload = once(
        benchmark, lambda: run_shift_bench(days=1.0, seed=2021, out=RESULT_PATH)
    )
    comp = payload["comparison"]
    grid = comp["grid_kwh"]
    misses = comp["deadline_misses"]

    reporter.table(
        ["metric", "shift", "no_shift"],
        [
            ["grid kWh", f"{grid['shift']:.3f}", f"{grid['no_shift']:.3f}"],
            [
                "mean EPU",
                f"{comp['epu']['shift']:.3f}",
                f"{comp['epu']['no_shift']:.3f}",
            ],
            ["deadline misses", misses["shift"], misses["no_shift"]],
            [
                "jobs done",
                comp["jobs"]["shift"]["done"],
                comp["jobs"]["no_shift"]["done"],
            ],
        ],
        title=(
            f"temporal shifting, 1 day: saved {grid['saved']:.3f} kWh "
            f"({100.0 * grid['saved_fraction']:.1f}%)"
        ),
    )
    reporter.line(f"wrote {RESULT_PATH.name}")

    # The acceptance claim, held to in the bench as well as the tests.
    assert grid["saved"] > 0.0
    assert misses == {"shift": 0, "no_shift": 0}
