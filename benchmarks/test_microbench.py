"""Microbenchmarks — the controller's hot paths.

The paper's scheduler runs on commodity rack controllers every 15
minutes; its decision latency must be negligible against the epoch.
These are genuine timing benchmarks (many rounds), covering:

* one PAR solve (2 and 3 groups),
* one Holt alpha/beta training (Eq. 5) over a day of history,
* one database re-fit,
* one full controller epoch.
"""

import numpy as np
import pytest

from repro.core.database import PerfPowerFit, ProfilingDatabase
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel, PARSolver
from repro.core.controller import GreenHeteroController
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import synthesize_irradiance


def concave(t_max, lo, hi):
    span = hi - lo
    return PerfPowerFit(
        coefficients=(
            -t_max / span**2,
            2 * t_max * hi / span**2,
            t_max - t_max * hi**2 / span**2,
        ),
        min_power_w=lo,
        max_power_w=hi,
    )


def test_solver_two_groups(benchmark):
    solver = PARSolver()
    groups = [
        GroupModel("A", 5, concave(100.0, 95.0, 150.0)),
        GroupModel("B", 5, concave(60.0, 52.0, 80.0)),
    ]
    solution = benchmark(solver.solve, groups, 1000.0)
    assert solution.expected_perf > 0


def test_solver_three_groups(benchmark):
    solver = PARSolver()
    groups = [
        GroupModel("A", 5, concave(100.0, 95.0, 150.0)),
        GroupModel("B", 5, concave(40.0, 58.0, 75.0)),
        GroupModel("C", 5, concave(60.0, 52.0, 80.0)),
    ]
    solution = benchmark(solver.solve, groups, 1200.0)
    assert solution.expected_perf > 0


def test_holt_training(benchmark):
    t = np.arange(96)
    history = np.maximum(0.0, np.sin((t - 24) * np.pi / 48)) * 1000.0
    predictor = benchmark(HoltPredictor.fit, history, True, 5)
    assert predictor.ready


def test_database_refit(benchmark):
    db = ProfilingDatabase()
    key = ("E5-2620", "SPECjbb")
    db.ingest_training_run(
        key, 88.0, [(100.0 + i * 2.0, 10000.0 + i * 500.0) for i in range(25)]
    )
    fit = benchmark(db.refit, key)
    assert fit.n_samples > 0


def test_full_controller_epoch(benchmark):
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")
    trace = synthesize_irradiance(days=1, seed=3)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1.4 * rack.max_draw_w),
        BatteryBank(),
        GridSource(budget_w=1000.0),
    )
    controller = GreenHeteroController(
        rack=rack, pdu=pdu, policy=make_policy("GreenHetero"), monitor=Monitor(seed=3)
    )
    controller.run_epoch(0.0)  # training epoch outside the timer

    clock = {"t": 900.0}

    def one_epoch():
        record = controller.run_epoch(clock["t"])
        clock["t"] += 900.0
        return record

    record = benchmark.pedantic(one_epoch, rounds=20, iterations=1)
    assert record.throughput >= 0.0
    # A decision epoch must be vastly cheaper than the 900 s it governs.
    assert benchmark.stats["mean"] < 1.0
