"""Ablation — the GreenGear-style on-off baseline (paper Section VI).

The related-work discussion argues against on-off composite-node
strategies: "when the power supply is sufficient, all-on strategy can be
more effective ... GreenHetero is suitable for all cases".  This bench
sweeps supply from starved to abundant and shows the crossover: on-off
is competitive only at the starved end (where powering one group *is*
the optimum), and falls far behind as the budget grows.
"""

from benchmarks.conftest import once
from repro.core.policies import make_policy
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig

FRACTIONS = (0.40, 0.55, 0.70, 0.85, 1.00)


def run_sweep():
    out = {}
    for fraction in FRACTIONS:
        cfg = ExperimentConfig(days=0.25, workload="Streamcluster")
        perfs = {}
        for name in ("OnOff", "GreenHetero"):
            sim = Simulation.assemble(
                policy=make_policy(name),
                rack=cfg.build_rack(),
                clock=cfg.build_clock(),
                seed=cfg.seed,
                supply_fractions=(fraction,),
            )
            perfs[name] = sim.run().mean_throughput()
        out[fraction] = perfs
    return out


def test_ablation_onoff_baseline(benchmark, reporter):
    results = once(benchmark, run_sweep)

    rows = []
    for fraction, perfs in results.items():
        ratio = perfs["GreenHetero"] / perfs["OnOff"] if perfs["OnOff"] > 0 else float("inf")
        rows.append([f"{fraction:.0%}", perfs["OnOff"], perfs["GreenHetero"], ratio])
    reporter.table(
        ["supply (of envelope)", "OnOff ips", "GreenHetero ips", "GH / OnOff"],
        rows,
        title="Ablation: GreenGear-style on-off vs GreenHetero (Streamcluster)",
    )
    reporter.paper_vs_measured(
        "on-off strategy",
        "all-on more effective when supply is sufficient",
        f"GH/OnOff {results[0.40]['GreenHetero'] / results[0.40]['OnOff']:.2f}x starved"
        f" -> {results[1.00]['GreenHetero'] / results[1.00]['OnOff']:.2f}x abundant",
    )

    # GreenHetero never loses, and the gap widens with supply.
    ratios = [
        results[f]["GreenHetero"] / results[f]["OnOff"] for f in FRACTIONS
    ]
    assert all(r >= 0.99 for r in ratios)
    assert ratios[-1] > ratios[0]
    assert ratios[-1] >= 1.2  # abundant supply: all-on clearly wins
