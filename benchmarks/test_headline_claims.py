"""The abstract's headline claims, reproduced in one place.

    "the evaluation shows that our solution can improve the average
     performance by 1.2x-2.2x and the renewable power utilization by up
     to 2.7x under tens of representative datacenter workloads compared
     with the heterogeneity-unaware baseline scheduler" ...
    "The performance gain can reach as much as 4.6x for some server
     configurations."

Reuses the cached Fig. 9/10/14 runs, so this bench is nearly free when
run with the rest of the suite.
"""

from benchmarks.conftest import once, run_cached
from repro.analysis.metrics import summarize_gains
from repro.sim.experiment import ExperimentConfig
from repro.workloads.catalog import FIG9_WORKLOADS

POLICIES = ("Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero")


def collect():
    perf, epu = {}, {}
    for workload in FIG9_WORKLOADS:
        res = run_cached(
            ExperimentConfig.insufficient_supply(workload, policies=POLICIES)
        )
        perf[workload] = res.gain("GreenHetero")
        epu[workload] = res.gain("GreenHetero", "epu")
    gpu = run_cached(
        ExperimentConfig.combination_sweep(
            "Comb6", "Srad_v1", policies=("Uniform", "GreenHetero")
        )
    )
    u = gpu.log("Uniform").throughputs
    g = gpu.log("GreenHetero").throughputs
    max_config_gain = float((g[u > 0] / u[u > 0]).max())
    return perf, epu, max_config_gain


def test_headline_claims(benchmark, reporter):
    perf, epu, max_config_gain = once(benchmark, collect)

    perf_summary = summarize_gains(perf)
    epu_summary = summarize_gains(epu)
    reporter.paper_vs_measured(
        "average performance improvement",
        "1.2x-2.2x",
        f"{perf_summary['min']:.2f}x-{perf_summary['max']:.2f}x "
        f"(mean {perf_summary['mean']:.2f}x) over {len(perf)} workloads",
    )
    reporter.paper_vs_measured(
        "renewable power utilization (EPU)",
        "up to 2.7x",
        f"up to {epu_summary['max']:.2f}x ({epu_summary['best_workload']})",
    )
    reporter.paper_vs_measured(
        "per-configuration performance gain",
        "as much as 4.6x (GPU rack)",
        f"up to {max_config_gain:.1f}x (Comb6, Srad_v1)",
    )

    # The abstract's band, with our calibrated tolerances.
    assert 1.0 <= perf_summary["min"] <= 1.35
    assert 1.9 <= perf_summary["max"] <= 2.7
    assert epu_summary["max"] >= 1.9
    assert max_config_gain >= 4.0
