"""End-to-end integration tests: the paper's headline behaviours.

These run small but complete experiments through the whole stack —
traces, power tree, predictor, database, solver, enforcer, telemetry —
and assert the qualitative results the paper reports.  The full-length
reproductions live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core.sources import PowerCase
from repro.servers.platform import get_platform
from repro.servers.power_model import ResponseCurve
from repro.sim.experiment import ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def fig8_result():
    """A 24-hour Fig. 8-style run with all five policies."""
    return run_experiment(ExperimentConfig(days=1.0))


@pytest.fixture(scope="module")
def sweep_results():
    """Constrained-supply sweeps for three calibration-critical workloads."""
    out = {}
    for wl in ("Streamcluster", "Memcached", "SPECjbb"):
        out[wl] = run_experiment(
            ExperimentConfig.insufficient_supply(wl, policies=("Uniform", "GreenHetero"))
        )
    return out


class TestFig8Runtime:
    def test_greenhetero_beats_uniform_on_insufficient_epochs(self, fig8_result):
        gain = fig8_result.gain("GreenHetero")
        assert 1.15 <= gain <= 1.8  # paper: up to ~1.5x

    def test_every_policy_at_least_uniform(self, fig8_result):
        for name in fig8_result.logs:
            assert fig8_result.gain(name) >= 0.97

    def test_mean_par_near_paper(self, fig8_result):
        # Paper: the average PAR over the 24-hour run is about 58%.
        par = fig8_result.summary("GreenHetero").mean_par
        assert 0.50 <= par <= 0.70

    def test_all_three_cases_occur(self, fig8_result):
        cases = set(fig8_result.log("GreenHetero").cases)
        assert cases == {PowerCase.A, PowerCase.B, PowerCase.C}

    def test_battery_honors_dod(self, fig8_result):
        soc = fig8_result.log("GreenHetero").battery_soc_wh
        assert soc.min() >= 0.6 * 12000.0 - 1e-6

    def test_battery_discharges_for_hours_then_grid(self, fig8_result):
        log = fig8_result.log("GreenHetero")
        hours = log.discharge_hours(900.0)
        assert 2.0 <= hours <= 10.0  # paper: ~4.2 h in Case C
        assert log.grid_energy_wh(900.0) > 0.0

    def test_sufficient_epochs_show_no_gain(self, fig8_result):
        # Paper: "adaptive power allocation has very little impact when
        # the power supply is abundant".
        mask = ~fig8_result.insufficient_mask()
        if mask.sum() >= 4:
            u = fig8_result.log("Uniform").mean_throughput(mask)
            g = fig8_result.log("GreenHetero").mean_throughput(mask)
            assert g / u < 1.35

    def test_epu_gain_positive(self, fig8_result):
        assert fig8_result.gain("GreenHetero", "epu") > 1.1


class TestPolicyOrdering:
    def test_solver_policies_beat_uniform(self, fig8_result):
        for name in ("Manual", "GreenHetero-a", "GreenHetero"):
            assert fig8_result.gain(name) > 1.1

    def test_adaptive_at_least_static(self, sweep_results):
        # GreenHetero >= GreenHetero-a on average (paper Section V-B.2),
        # checked on the sweep where the database quality matters.
        res = run_experiment(
            ExperimentConfig.insufficient_supply(
                "SPECjbb", policies=("Uniform", "GreenHetero-a", "GreenHetero")
            )
        )
        assert res.gain("GreenHetero") >= res.gain("GreenHetero-a") * 0.97


class TestWorkloadSpread:
    def test_streamcluster_gains_most(self, sweep_results):
        sc = sweep_results["Streamcluster"].gain("GreenHetero")
        mc = sweep_results["Memcached"].gain("GreenHetero")
        assert sc > 1.8   # paper: ~2.2x
        assert mc < 1.35  # paper: ~1.2x
        assert sc > mc

    def test_specjbb_in_paper_band(self, sweep_results):
        assert 1.2 <= sweep_results["SPECjbb"].gain("GreenHetero") <= 1.8


class TestHeterogeneityImpact:
    def test_homogeneous_like_combo_shows_no_gain(self):
        res = run_experiment(
            ExperimentConfig.combination_sweep(
                "Comb4", policies=("Uniform", "GreenHetero")
            )
        )
        # Paper: Comb2/Comb4 show only ~3% improvement.
        assert res.gain("GreenHetero") == pytest.approx(1.0, abs=0.12)

    def test_heterogeneous_combo_shows_gain(self):
        res = run_experiment(
            ExperimentConfig.combination_sweep(
                "Comb1", policies=("Uniform", "GreenHetero")
            )
        )
        assert res.gain("GreenHetero") > 1.25

    def test_three_type_combo_solves(self):
        res = run_experiment(
            ExperimentConfig.combination_sweep(
                "Comb5", days=0.25, policies=("Uniform", "GreenHetero")
            )
        )
        log = res.log("GreenHetero")
        assert all(len(r.ratios) == 3 for r in log)
        assert res.gain("GreenHetero") > 1.2


class TestGPU:
    def test_srad_gains_most_cfd_least(self):
        gains = {}
        for wl in ("Srad_v1", "Cfd"):
            res = run_experiment(
                ExperimentConfig.combination_sweep(
                    "Comb6", wl, days=0.25, policies=("Uniform", "GreenHetero")
                )
            )
            gains[wl] = res.gain("GreenHetero")
        assert gains["Srad_v1"] > 1.8   # paper: up to 4.6x, avg 2.5x
        assert gains["Cfd"] < gains["Srad_v1"]


class TestCaseStudy:
    """Section III-B's two-server 220 W case study (Fig. 3)."""

    @pytest.fixture(scope="class")
    def curves(self):
        return (
            ResponseCurve(get_platform("E5-2620"), "SPECjbb"),
            ResponseCurve(get_platform("i5-4460"), "SPECjbb"),
        )

    def _epu_perf(self, curves, par, budget=220.0):
        a, b = curves
        sa = a.perf_at_power(par * budget)
        sb = b.perf_at_power((1 - par) * budget)
        useful = sum(
            s.power_w for s in (sa, sb) if s.throughput > 0
        )
        return useful / budget, sa.throughput + sb.throughput

    def test_optimum_par_near_65(self, curves):
        best_par = max(
            (p / 100 for p in range(0, 101, 5)),
            key=lambda p: self._epu_perf(curves, p)[1],
        )
        assert 0.60 <= best_par <= 0.70

    def test_uniform_epu_near_86(self, curves):
        epu, _ = self._epu_perf(curves, 0.5)
        assert epu == pytest.approx(0.86, abs=0.04)

    def test_all_to_small_server_epu_near_37(self, curves):
        epu, _ = self._epu_perf(curves, 0.0)
        assert epu == pytest.approx(0.37, abs=0.04)

    def test_optimum_beats_uniform(self, curves):
        _, best = self._epu_perf(curves, 0.65)
        _, uniform = self._epu_perf(curves, 0.5)
        assert best > uniform


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        cfg = ExperimentConfig(days=0.25, policies=("GreenHetero",))
        a = run_experiment(cfg).log("GreenHetero")
        b = run_experiment(cfg).log("GreenHetero")
        assert np.allclose(a.throughputs, b.throughputs)
        assert np.allclose(a.epus, b.epus)

    def test_different_seed_different_results(self):
        a = run_experiment(
            ExperimentConfig(days=0.25, policies=("GreenHetero",), seed=1)
        ).log("GreenHetero")
        b = run_experiment(
            ExperimentConfig(days=0.25, policies=("GreenHetero",), seed=2)
        ).log("GreenHetero")
        assert not np.allclose(a.throughputs, b.throughputs)
