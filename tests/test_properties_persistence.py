"""Property-based round-trip tests for database persistence."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.database import FitKind, ProfilingDatabase
from repro.core.persistence import database_from_dict, database_to_dict


@st.composite
def databases(draw):
    db = ProfilingDatabase(
        fit_kind=draw(st.sampled_from(list(FitKind))),
        max_samples=draw(st.integers(min_value=8, max_value=64)),
    )
    n_entries = draw(st.integers(min_value=0, max_value=4))
    for i in range(n_entries):
        key = (f"plat{i}", draw(st.sampled_from(["SPECjbb", "Mcf", "Canneal"])))
        idle = draw(st.floats(min_value=10.0, max_value=100.0))
        span = draw(st.floats(min_value=20.0, max_value=120.0))
        n_samples = draw(st.integers(min_value=0, max_value=12))
        db.ensure_entry(key, idle, idle + span)
        powers = sorted(
            draw(
                st.lists(
                    st.floats(min_value=idle + 1.0, max_value=idle + span),
                    min_size=n_samples,
                    max_size=n_samples,
                )
            )
        )
        for p in powers:
            db.add_sample(key, p, draw(st.floats(min_value=0.1, max_value=1e5)))
        if len({round(p, 6) for p in powers}) >= 2:
            db.refit(key)
    return db


@given(db=databases())
@settings(max_examples=40, deadline=None)
def test_round_trip_preserves_everything(db):
    restored = database_from_dict(database_to_dict(db))
    assert restored.keys() == db.keys()
    assert restored.fit_kind is db.fit_kind
    assert restored.max_samples == db.max_samples
    for key in db.keys():
        assert restored.sample_count(key) == db.sample_count(key)
        assert (key in restored) == (key in db)
        if key in db:
            a, b = db.projection(key), restored.projection(key)
            assert a.coefficients == pytest.approx(b.coefficients)
            assert a.min_power_w == b.min_power_w
            assert a.max_power_w == b.max_power_w


@given(db=databases())
@settings(max_examples=25, deadline=None)
def test_double_round_trip_is_stable(db):
    once = database_to_dict(database_from_dict(database_to_dict(db)))
    twice = database_to_dict(database_from_dict(once))
    assert once == twice
