"""Deferrable job queue: validation, lifecycle, expiry, serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.shift.queue import JobQueue, JobStatus, ShiftJob

EPOCH = 900.0


def job(job_id="j0", energy_wh=150.0, power_w=300.0,
        earliest_start_s=0.0, deadline_s=7200.0, value=1.0):
    return ShiftJob(
        job_id=job_id,
        energy_wh=energy_wh,
        power_w=power_w,
        earliest_start_s=earliest_start_s,
        deadline_s=deadline_s,
        value=value,
    )


class TestShiftJob:
    def test_duration_rounds_to_whole_epochs(self):
        # 150 Wh at 300 W = 30 min = exactly 2 epochs.
        assert job().n_epochs(EPOCH) == 2
        # A hair more energy must round up, a hair less must not round up
        # past the exact count.
        assert job(energy_wh=151.0).n_epochs(EPOCH) == 3
        assert job(energy_wh=149.999999).n_epochs(EPOCH) == 2

    def test_latest_start_leaves_room_for_full_run(self):
        j = job(deadline_s=7200.0)
        assert j.latest_start_s(EPOCH) == 7200.0 - 2 * EPOCH

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"job_id": ""},
            {"energy_wh": 0.0},
            {"power_w": -1.0},
            {"deadline_s": 0.0, "earliest_start_s": 0.0},
            {"value": -0.5},
        ],
    )
    def test_invalid_jobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            job(**kwargs)

    def test_dict_roundtrip(self):
        j = job()
        assert ShiftJob.from_dict(j.to_dict()) == j

    def test_malformed_dict_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            ShiftJob.from_dict({"job_id": "x"})


class TestLifecycle:
    def test_submission_order_preserved(self):
        q = JobQueue()
        for i in (3, 1, 2):
            q.submit(job(job_id=f"j{i}"))
        assert [j.job_id for j in q.jobs()] == ["j3", "j1", "j2"]

    def test_duplicate_id_rejected(self):
        q = JobQueue()
        q.submit(job())
        with pytest.raises(ConfigurationError, match="duplicate"):
            q.submit(job())

    def test_run_to_completion(self):
        q = JobQueue()
        q.submit(job())  # 2 epochs
        q.mark_running("j0", 0.0)
        assert q.status("j0") == JobStatus.RUNNING
        q.advance("j0", EPOCH, EPOCH)
        assert q.status("j0") == JobStatus.RUNNING
        q.advance("j0", EPOCH, 2 * EPOCH)
        assert q.status("j0") == JobStatus.DONE
        assert q.backlog_wh() == 0.0

    def test_cannot_start_twice(self):
        q = JobQueue()
        q.submit(job())
        q.mark_running("j0", 0.0)
        with pytest.raises(ConfigurationError):
            q.mark_running("j0", 0.0)

    def test_expire_marks_unreachable_deadlines(self):
        q = JobQueue()
        q.submit(job(job_id="tight", deadline_s=2 * EPOCH))
        q.submit(job(job_id="loose", deadline_s=10 * EPOCH))
        # At t=0 both are startable; one epoch later "tight" can no
        # longer fit its two epochs before the deadline.
        assert q.expire(0.0, EPOCH) == []
        assert q.expire(EPOCH, EPOCH) == ["tight"]
        assert q.status("tight") == JobStatus.MISSED
        assert q.status("loose") == JobStatus.PENDING

    def test_counts(self):
        q = JobQueue()
        q.submit(job(job_id="a"))
        q.submit(job(job_id="b"))
        q.mark_running("a", 0.0)
        assert q.counts() == {"pending": 1, "running": 1, "done": 0, "missed": 0}


class TestSerialization:
    def test_state_roundtrip_preserves_everything(self):
        q = JobQueue()
        q.submit(job(job_id="a"))
        q.submit(job(job_id="b", deadline_s=2 * EPOCH))
        q.submit(job(job_id="c"))
        q.mark_running("a", 0.0)
        q.advance("a", EPOCH, EPOCH)
        q.expire(EPOCH, EPOCH)  # misses "b"

        restored = JobQueue.from_state_dict(q.state_dict())
        assert restored.state_dict() == q.state_dict()
        assert restored.status("a") == JobStatus.RUNNING
        assert restored.epochs_run("a") == 1
        assert restored.status("b") == JobStatus.MISSED
        assert restored.status("c") == JobStatus.PENDING
        assert [j.job_id for j in restored.jobs()] == ["a", "b", "c"]

    def test_malformed_state_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            JobQueue.from_state_dict({"jobs": [{"job_id": "x"}]})
        with pytest.raises(ConfigurationError, match="unknown job status"):
            JobQueue.from_state_dict(
                {"jobs": [{**job().to_dict(), "status": "paused"}]}
            )
