"""ShiftRuntime against a real simulated rack, plus the benchmark's
acceptance criteria (grid savings with zero deadline misses)."""

import pytest

from repro.core.policies import make_policy
from repro.power.battery import BatteryBank
from repro.shift.bench import (
    BENCH_BATTERY_COUNT,
    build_bench_rack,
    bench_jobs,
    run_shift_bench,
)
from repro.shift.planner import ShiftPlanner
from repro.shift.queue import JobStatus, ShiftJob
from repro.shift.runtime import ShiftRuntime
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.faults import FaultInjector
from repro.traces.nrel import Weather
from repro.units import SECONDS_PER_DAY


def make_sim(shift=None, days=0.5, seed=2021):
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=build_bench_rack(),
        weather=Weather.HIGH,
        clock=SimClock(start_s=SECONDS_PER_DAY, duration_s=days * SECONDS_PER_DAY),
        seed=seed,
        battery=BatteryBank(count=BENCH_BATTERY_COUNT),
    )
    if shift is not None:
        sim.shift = shift
    return sim


def small_job(clock, job_id="j0", epochs=2, power_w=620.0, start_offset=0):
    return ShiftJob(
        job_id=job_id,
        energy_wh=power_w * epochs * clock.epoch_s / 3600.0,
        power_w=power_w,
        earliest_start_s=clock.start_s + start_offset * clock.epoch_s,
        deadline_s=clock.start_s + clock.duration_s,
    )


class TestInertness:
    def test_rack_without_submissions_is_untouched(self):
        """A runtime that never sees a job must not perturb telemetry."""
        plain = make_sim().run()
        routed = make_sim(shift=ShiftRuntime()).run()
        assert [r.budget_w for r in routed] == [r.budget_w for r in plain]
        assert [r.throughput for r in routed] == [r.throughput for r in plain]
        assert [r.grid_to_load_w for r in routed] == [r.grid_to_load_w for r in plain]


class TestExecution:
    def test_jobs_run_to_completion_with_telemetry(self):
        runtime = ShiftRuntime(planner=ShiftPlanner(horizon=8))
        sim = make_sim(shift=runtime)
        job = small_job(sim.clock, epochs=2)
        runtime.submit(job)
        sim.run()
        assert runtime.queue.status("j0") == JobStatus.DONE
        assert runtime.queue.epochs_run("j0") == 2
        assert len(runtime.log) == sim.clock.n_epochs
        started = [r for r in runtime.log if r.jobs_started]
        assert len(started) == 1
        assert started[0].batch_power_w == pytest.approx(job.power_w)
        # Once the job finishes, gating drops batch draw back to zero.
        assert runtime.log.records[-1].batch_power_w == 0.0
        assert runtime.log.deadline_misses == 0

    def test_impossible_job_is_missed_and_accounted(self):
        runtime = ShiftRuntime()
        sim = make_sim(shift=runtime)
        # Deadline two epochs in, duration four epochs: unreachable.
        runtime.submit(
            ShiftJob(
                job_id="doomed",
                energy_wh=620.0,
                power_w=620.0,
                earliest_start_s=sim.clock.start_s,
                deadline_s=sim.clock.start_s + 2 * sim.clock.epoch_s,
            )
        )
        sim.run()
        assert runtime.queue.status("doomed") == JobStatus.MISSED
        assert runtime.log.deadline_misses == 1

    def test_state_roundtrip_mid_run(self):
        runtime = ShiftRuntime()
        sim = make_sim(shift=runtime)
        runtime.submit(small_job(sim.clock, "a", start_offset=0))
        runtime.submit(small_job(sim.clock, "b", start_offset=40))
        for _ in range(4):
            sim.step()
        state = runtime.state_dict()
        clone = ShiftRuntime()
        clone.load_state_dict(state)
        assert clone.state_dict() == state
        assert clone.activated
        assert [j.job_id for j in clone.queue.jobs()] == ["a", "b"]


class TestFaultReplanning:
    def test_renewable_dropout_triggers_replacement(self):
        """Satellite: the planner must replan around an injected dropout.

        Without the fault the job chases the morning sun.  With PV dead
        for the whole run, the same job must still complete (forced by
        its deadline) — the receding-horizon replan absorbs the dropout
        instead of executing a stale sunny-day plan.
        """
        day = SECONDS_PER_DAY

        def run(faults=None):
            runtime = ShiftRuntime(
                planner=ShiftPlanner(horizon=8, grid_penalty_per_kwh=8.0)
            )
            sim = make_sim(shift=runtime)
            if faults:
                sim.faults = faults
            runtime.submit(small_job(sim.clock, epochs=2))
            sim.run()
            return runtime

        sunny = run()
        dark = run(
            FaultInjector().add_renewable_dropout(day, 2 * day, factor=0.0)
        )
        assert sunny.queue.status("j0") == JobStatus.DONE
        assert dark.queue.status("j0") == JobStatus.DONE
        assert dark.log.deadline_misses == 0
        # The sunny run found renewable-covered epochs worth waiting for;
        # the dark run had nothing to chase and saved no grid energy.
        assert sunny.log.total_grid_avoided_wh > 0.0
        assert dark.log.total_grid_avoided_wh == pytest.approx(0.0)


class TestBenchAcceptance:
    """The headline claim, asserted — not just written to the JSON."""

    @pytest.fixture(scope="class")
    def payload(self):
        return run_shift_bench(days=1.0, seed=2021)

    def test_shift_reduces_grid_energy(self, payload):
        grid = payload["comparison"]["grid_kwh"]
        assert grid["shift"] < grid["no_shift"]
        assert grid["saved"] > 0.0

    def test_zero_deadline_misses_in_both_arms(self, payload):
        misses = payload["comparison"]["deadline_misses"]
        assert misses == {"shift": 0, "no_shift": 0}

    def test_all_jobs_complete_in_both_arms(self, payload):
        jobs = payload["comparison"]["jobs"]
        for arm in ("shift", "no_shift"):
            assert jobs[arm]["done"] == payload["config"]["n_jobs"]

    def test_planner_reports_grid_avoided(self, payload):
        assert payload["comparison"]["planner"]["grid_avoided_wh"] > 0.0
