"""The receding-horizon planner: forecast chaining, pricing, policies."""

import pytest

from repro.core.database import PerfPowerFit
from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel
from repro.errors import ConfigurationError
from repro.shift.planner import (
    PlanInputs,
    Placement,
    ShiftPlan,
    ShiftPlanner,
    chain_forecast,
)
from repro.shift.queue import JobQueue, ShiftJob

EPOCH = 900.0


def make_inputs(
    renewable=(0.0,) * 8,
    interactive=(0.0,) * 8,
    committed=(),
    capacity=1000.0,
    battery_wh=0.0,
    battery_rate=0.0,
    grid=1000.0,
    models=(),
    time_s=0.0,
):
    return PlanInputs(
        time_s=time_s,
        epoch_s=EPOCH,
        renewable_w=tuple(renewable),
        interactive_w=tuple(interactive),
        committed_w=tuple(committed),
        batch_capacity_w=capacity,
        battery_usable_wh=battery_wh,
        battery_max_discharge_w=battery_rate,
        grid_budget_w=grid,
        batch_models=tuple(models),
    )


def queue_of(*jobs):
    q = JobQueue()
    for j in jobs:
        q.submit(j)
    return q


def job(job_id="j0", energy_wh=75.0, power_w=300.0,
        earliest_start_s=0.0, deadline_s=8 * EPOCH, value=1.0):
    # 75 Wh at 300 W = one epoch.
    return ShiftJob(
        job_id=job_id,
        energy_wh=energy_wh,
        power_w=power_w,
        earliest_start_s=earliest_start_s,
        deadline_s=deadline_s,
        value=value,
    )


class TestChainForecast:
    """Satellite: H-step chaining must equal Holt's direct h-step ray."""

    def test_matches_direct_multi_step_forecast(self):
        p = HoltPredictor(alpha=0.6, beta=0.2)
        for v in (100.0, 120.0, 138.0, 155.0, 171.0):
            p.observe(v)
        chained = chain_forecast(p, 8)
        direct = tuple(p.predict(h) for h in range(1, 9))
        assert chained == pytest.approx(direct)

    def test_original_predictor_not_mutated(self):
        p = HoltPredictor(alpha=0.5, beta=0.5)
        p.observe(10.0)
        p.observe(12.0)
        before = p.state_dict()
        chain_forecast(p, 5)
        assert p.state_dict() == before

    def test_nonnegative_clamp_respected_along_chain(self):
        p = HoltPredictor(alpha=1.0, beta=1.0, nonnegative=True)
        p.observe(10.0)
        p.observe(4.0)  # steep negative trend
        assert all(v >= 0.0 for v in chain_forecast(p, 8))

    def test_non_holt_predictor_uses_direct_forecast(self):
        class Flat:
            def predict(self, h=1):
                return 42.0

        assert chain_forecast(Flat(), 3) == (42.0, 42.0, 42.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_forecast(HoltPredictor(), 0)


class TestSupplyAccounting:
    def test_renewable_first_then_battery_then_grid(self):
        # Epoch 0 has 200 W renewable free, 50 Wh battery, plenty grid.
        planner = ShiftPlanner(horizon=8)
        plan = planner.plan(
            queue_of(job(power_w=400.0, energy_wh=100.0)),
            make_inputs(
                renewable=(200.0,) + (0.0,) * 7,
                battery_wh=30.0,
                battery_rate=200.0,
            ),
        )
        (placement,) = plan.placements
        assert placement.renewable_wh == pytest.approx(50.0)
        assert placement.battery_wh == pytest.approx(30.0)
        assert placement.grid_wh == pytest.approx(20.0)

    def test_interactive_reserves_renewable(self):
        planner = ShiftPlanner(horizon=8)
        plan = planner.plan(
            queue_of(job()),
            make_inputs(renewable=(500.0,) * 8, interactive=(450.0,) * 8),
        )
        (placement,) = plan.placements
        # Only 50 W of renewable headroom: 12.5 Wh of the 75 Wh epoch.
        assert placement.renewable_wh == pytest.approx(12.5)
        assert placement.grid_wh == pytest.approx(62.5)

    def test_capacity_excludes_oversized_jobs(self):
        planner = ShiftPlanner(horizon=8)
        plan = planner.plan(
            queue_of(job(power_w=1500.0, energy_wh=375.0)),
            make_inputs(capacity=1000.0),
        )
        assert plan.placements == ()
        assert plan.unplaced == ("j0",)

    def test_grid_budget_gates_feasibility(self):
        planner = ShiftPlanner(horizon=8)
        plan = planner.plan(
            queue_of(job(power_w=300.0)),
            make_inputs(grid=100.0),
        )
        assert plan.placements == ()

    def test_multi_epoch_job_cannot_double_spend_battery(self):
        # 60 Wh of battery cannot fund two 75 Wh epochs with no grid.
        planner = ShiftPlanner(horizon=8)
        plan = planner.plan(
            queue_of(job(energy_wh=150.0)),
            make_inputs(grid=0.0, battery_wh=60.0, battery_rate=500.0),
        )
        assert plan.placements == ()


class TestShiftPolicy:
    def test_defers_into_renewable_epochs(self):
        # Renewable appears only at offset 5; with a steep grid price the
        # job must wait for it.
        planner = ShiftPlanner(horizon=8, grid_penalty_per_kwh=20.0)
        plan = planner.plan(
            queue_of(job()),
            make_inputs(renewable=(0.0,) * 5 + (400.0,) * 3),
        )
        (placement,) = plan.placements
        assert placement.start_offset == 5
        assert placement.grid_wh == pytest.approx(0.0)
        assert placement.grid_avoided_wh > 0.0

    def test_runs_immediately_when_renewable_is_free_now(self):
        planner = ShiftPlanner(horizon=8, grid_penalty_per_kwh=20.0)
        plan = planner.plan(
            queue_of(job()),
            make_inputs(renewable=(400.0,) * 8),
        )
        (placement,) = plan.placements
        assert placement.start_offset == 0

    def test_forced_start_beats_negative_utility_at_deadline(self):
        # Last chance to start is *now*; steep grid pricing must not
        # cause a miss.
        planner = ShiftPlanner(horizon=8, grid_penalty_per_kwh=1000.0)
        plan = planner.plan(
            queue_of(job(deadline_s=EPOCH)),
            make_inputs(),
        )
        (placement,) = plan.placements
        assert placement.start_offset == 0
        assert placement.utility < 0.0

    def test_earliest_start_respected(self):
        planner = ShiftPlanner(horizon=8)
        plan = planner.plan(
            queue_of(job(earliest_start_s=3 * EPOCH)),
            make_inputs(renewable=(400.0,) * 8),
        )
        (placement,) = plan.placements
        assert placement.start_offset >= 3

    def test_exhaustive_and_greedy_agree_on_small_instances(self):
        inputs = make_inputs(renewable=(0.0, 300.0, 0.0, 300.0) + (0.0,) * 4)
        jobs = [job(job_id="a"), job(job_id="b")]
        exact = ShiftPlanner(horizon=4, grid_penalty_per_kwh=20.0)
        greedy = ShiftPlanner(
            horizon=4, grid_penalty_per_kwh=20.0, exhaustive_limit=0
        )
        plan_exact = exact.plan(queue_of(*jobs), inputs)
        plan_greedy = greedy.plan(queue_of(*jobs), inputs)
        assert plan_exact.method == "exhaustive"
        assert plan_greedy.method == "greedy"
        placed = lambda plan: sorted(
            (p.job_id, p.start_offset) for p in plan.placements
        )
        assert placed(plan_exact) == placed(plan_greedy)

    def test_start_now_quotes_cover_startable_pending_jobs(self):
        planner = ShiftPlanner(horizon=8, grid_penalty_per_kwh=20.0)
        plan = planner.plan(
            queue_of(job(job_id="now"), job(job_id="later",
                                            earliest_start_s=4 * EPOCH)),
            make_inputs(),
        )
        quoted = dict(plan.start_now_grid_wh)
        assert quoted == {"now": pytest.approx(75.0)}


class TestNoShiftPolicy:
    def test_places_at_earliest_feasible_epoch(self):
        planner = ShiftPlanner(horizon=8, policy="no_shift",
                               grid_penalty_per_kwh=20.0)
        plan = planner.plan(
            queue_of(job()),
            make_inputs(renewable=(0.0,) * 5 + (400.0,) * 3),
        )
        (placement,) = plan.placements
        assert placement.start_offset == 0
        assert placement.grid_wh > 0.0
        assert plan.method == "no_shift"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            ShiftPlanner(policy="asap")


class TestPerfPricing:
    def make_model(self):
        # Concave quadratic peaking at max_power_w.
        lo, hi, t_max = 95.0, 150.0, 100.0
        span = hi - lo
        fit = PerfPowerFit(
            coefficients=(
                -t_max / span**2,
                2 * t_max * hi / span**2,
                t_max - t_max * hi**2 / span**2,
            ),
            min_power_w=lo,
            max_power_w=hi,
        )
        return GroupModel(name="A", count=5, fit=fit)

    def test_marginal_perf_positive_with_models(self):
        planner = ShiftPlanner(horizon=4)
        plan = planner.plan(
            queue_of(job(power_w=600.0, energy_wh=150.0)),
            make_inputs(models=(self.make_model(),), renewable=(800.0,) * 8),
        )
        (placement,) = plan.placements
        assert placement.marginal_perf > 0.0


class TestSerialization:
    def test_plan_roundtrip(self):
        planner = ShiftPlanner(horizon=8, grid_penalty_per_kwh=20.0)
        plan = planner.plan(
            queue_of(job(), job(job_id="j1", earliest_start_s=2 * EPOCH)),
            make_inputs(renewable=(0.0,) * 4 + (400.0,) * 4),
        )
        restored = ShiftPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.to_dict() == plan.to_dict()

    def test_malformed_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            ShiftPlan.from_dict({"time_s": 0.0})
        with pytest.raises(ConfigurationError, match="malformed"):
            Placement.from_dict({"job_id": "x"})

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            make_inputs(renewable=())
        with pytest.raises(ConfigurationError):
            make_inputs(grid=-1.0)
        with pytest.raises(ConfigurationError):
            ShiftPlanner(horizon=0)
