"""Property-based tests on the core invariants (hypothesis).

Each property encodes a physical or algorithmic law the system must hold
for *all* inputs, not just the calibrated ones:

* the battery can never create energy, cross its DoD floor, or overfill;
* the PDU conserves energy and respects the grid budget;
* the PAR solver never over-allocates, and its solution is never worse
  than any uniform split of the same budget;
* response curves are monotone in power and bounded by the envelope;
* EPU is always in [0, 1];
* the Holt predictor is exact on affine series.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.database import PerfPowerFit
from repro.core.epu import effective_power_utilization
from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel, PARSolver
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.platform import get_platform, platform_names
from repro.servers.power_model import ResponseCurve
from repro.traces.nrel import Weather, synthesize_irradiance
from repro.workloads.models import response_for

# ----------------------------------------------------------------------
# Battery
# ----------------------------------------------------------------------

flows = st.lists(
    st.tuples(
        st.sampled_from(["charge", "discharge"]),
        st.floats(min_value=0.0, max_value=5000.0),
        st.floats(min_value=60.0, max_value=3600.0),
    ),
    min_size=1,
    max_size=30,
)


@given(flows=flows, initial=st.floats(min_value=0.6, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_battery_soc_always_within_bounds(flows, initial):
    bank = BatteryBank(initial_soc_fraction=initial)
    for kind, power, duration in flows:
        if kind == "charge":
            bank.charge(power, duration)
        else:
            bank.discharge(power, duration)
        assert bank.floor_wh - 1e-6 <= bank.soc_wh <= bank.capacity_wh + 1e-6


@given(flows=flows)
@settings(max_examples=60, deadline=None)
def test_battery_never_creates_energy(flows):
    bank = BatteryBank(initial_soc_fraction=1.0)
    energy_in = 0.0
    energy_out = 0.0
    start = bank.soc_wh
    for kind, power, duration in flows:
        if kind == "charge":
            energy_in += bank.charge(power, duration) * duration / 3600.0
        else:
            energy_out += bank.discharge(power, duration) * duration / 3600.0
    # Output can never exceed initial usable energy plus charged-in
    # energy (even ignoring charging losses).
    assert energy_out <= (start - bank.floor_wh) + energy_in + 1e-6


@given(
    power=st.floats(min_value=0.0, max_value=10000.0),
    duration=st.floats(min_value=60.0, max_value=3600.0),
)
@settings(max_examples=50, deadline=None)
def test_battery_delivers_at_most_requested(power, duration):
    bank = BatteryBank()
    delivered = bank.discharge(power, duration)
    assert 0.0 <= delivered <= power + 1e-9
    accepted = bank.charge(power, duration)
    assert 0.0 <= accepted <= power + 1e-9


# ----------------------------------------------------------------------
# PDU
# ----------------------------------------------------------------------


@given(
    load=st.floats(min_value=0.0, max_value=3000.0),
    hour=st.floats(min_value=0.0, max_value=24.0),
    soc=st.floats(min_value=0.6, max_value=1.0),
    use_battery=st.booleans(),
    grid_charges=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_pdu_flow_invariants(load, hour, soc, use_battery, grid_charges):
    trace = synthesize_irradiance(days=1, weather=Weather.HIGH, seed=6)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1500.0),
        BatteryBank(initial_soc_fraction=soc),
        GridSource(budget_w=1000.0),
    )
    flows = pdu.supply(load, hour * 3600.0, 900.0, use_battery, grid_charges)
    b = flows.breakdown
    # Never deliver more than asked.
    assert flows.delivered_w <= load + 1e-6
    # Grid never exceeds its budget (load + charging combined).
    assert b.grid_total_w <= 1000.0 + 1e-6
    # Battery respected the controller's disable switch.
    if not use_battery:
        assert b.battery_to_load_w == 0.0
    # Renewable energy conservation.
    renewable_used = b.renewable_to_load_w + (
        b.charge_w if b.charge_source.value == "renewable" else 0.0
    )
    assert renewable_used <= flows.renewable_available_w + 1e-6
    assert flows.curtailed_w >= -1e-9


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------


def fit_strategy():
    return st.builds(
        lambda t_max, lo, span: _concave_fit(t_max, lo, lo + span),
        t_max=st.floats(min_value=10.0, max_value=1000.0),
        lo=st.floats(min_value=20.0, max_value=150.0),
        span=st.floats(min_value=10.0, max_value=150.0),
    )


def _concave_fit(t_max, lo, hi):
    span = hi - lo
    l = -t_max / span**2
    m = 2 * t_max * hi / span**2
    n = t_max - t_max * hi**2 / span**2
    return PerfPowerFit(coefficients=(l, m, n), min_power_w=lo, max_power_w=hi)


groups_strategy = st.lists(
    st.builds(
        GroupModel,
        name=st.sampled_from(["A", "B", "C"]),
        count=st.integers(min_value=1, max_value=8),
        fit=fit_strategy(),
    ),
    min_size=1,
    max_size=3,
)


@given(groups=groups_strategy, budget=st.floats(min_value=0.0, max_value=4000.0))
@settings(max_examples=60, deadline=None)
def test_solver_solution_feasible(groups, budget):
    solver = PARSolver(safety_margin=0.0)
    sol = solver.solve(groups, budget)
    total = sum(g.count * p for g, p in zip(groups, sol.per_server_w))
    assert total <= budget + 1e-4
    assert sum(sol.ratios) <= 1.0 + 1e-6
    assert all(r >= -1e-12 for r in sol.ratios)


@given(groups=groups_strategy, budget=st.floats(min_value=10.0, max_value=4000.0))
@settings(max_examples=60, deadline=None)
def test_solver_never_worse_than_uniform(groups, budget):
    solver = PARSolver(safety_margin=0.0)
    sol = solver.solve(groups, budget)
    n_servers = sum(g.count for g in groups)
    share = budget / n_servers
    uniform_perf = sum(
        g.count * g.fit.predict(min(share, g.fit.max_power_w)) for g in groups
    )
    assert sol.expected_perf >= uniform_perf - 1e-6


@given(
    groups=groups_strategy,
    b1=st.floats(min_value=10.0, max_value=2000.0),
    extra=st.floats(min_value=0.0, max_value=2000.0),
)
@settings(max_examples=40, deadline=None)
def test_solver_monotone_in_budget(groups, b1, extra):
    solver = PARSolver(safety_margin=0.0)
    low = solver.solve(groups, b1).expected_perf
    high = solver.solve(groups, b1 + extra).expected_perf
    assert high >= low - 1e-6


# ----------------------------------------------------------------------
# Response curves
# ----------------------------------------------------------------------

CPU_PLATFORMS = [n for n in platform_names() if n != "TitanXp"]
CPU_WORKLOADS = ["SPECjbb", "Memcached", "Streamcluster", "Canneal", "Mcf"]


@given(
    platform=st.sampled_from(CPU_PLATFORMS),
    workload=st.sampled_from(CPU_WORKLOADS),
    b1=st.floats(min_value=0.0, max_value=300.0),
    extra=st.floats(min_value=0.0, max_value=200.0),
)
@settings(max_examples=80, deadline=None)
def test_response_monotone_and_bounded(platform, workload, b1, extra):
    curve = ResponseCurve(get_platform(platform), workload)
    lo = curve.perf_at_power(b1)
    hi = curve.perf_at_power(b1 + extra)
    assert hi.throughput >= lo.throughput - 1e-9
    assert lo.throughput <= curve.max_throughput + 1e-9
    assert lo.power_w <= curve.spec.peak_power_w + 1e-9


@given(
    platform=st.sampled_from(CPU_PLATFORMS),
    workload=st.sampled_from(CPU_WORKLOADS),
    offered=st.floats(min_value=0.0, max_value=1e6),
)
@settings(max_examples=60, deadline=None)
def test_serving_never_exceeds_offered_or_capacity(platform, workload, offered):
    curve = ResponseCurve(get_platform(platform), workload)
    top = curve.states.active_states[-1]
    sample = curve.serve(top, offered)
    assert sample.throughput <= offered + 1e-9
    assert sample.throughput <= curve.max_throughput + 1e-9
    assert 0.0 <= sample.utilization <= 1.0


# ----------------------------------------------------------------------
# EPU
# ----------------------------------------------------------------------


@given(
    useful=st.floats(min_value=0.0, max_value=1000.0),
    extra=st.floats(min_value=0.0, max_value=1000.0),
)
@settings(max_examples=60)
def test_epu_always_unit_interval(useful, extra):
    assume(useful + extra > 0)
    value = effective_power_utilization(useful, useful + extra)
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Predictor
# ----------------------------------------------------------------------


@given(
    intercept=st.floats(min_value=0.0, max_value=1000.0),
    slope=st.floats(min_value=0.0, max_value=50.0),
    n=st.integers(min_value=3, max_value=40),
)
@settings(max_examples=50, deadline=None)
def test_holt_exact_on_affine_series(intercept, slope, n):
    # Any (alpha, beta) reproduces an affine series exactly, because the
    # initial trend seeds the true slope.
    p = HoltPredictor(alpha=0.5, beta=0.5, nonnegative=False)
    for i in range(n):
        p.observe(intercept + slope * i)
    assert p.predict() == pytest.approx(intercept + slope * n, rel=1e-6, abs=1e-6)


@given(data=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=3, max_size=50))
@settings(max_examples=50, deadline=None)
def test_holt_sse_non_negative(data):
    assert HoltPredictor.sse(data, 0.4, 0.2) >= 0.0


@given(data=st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=5, max_size=30))
@settings(max_examples=25, deadline=None)
def test_holt_fit_never_worse_than_grid_seed(data):
    fitted = HoltPredictor.fit(data, grid_steps=5)
    fitted_sse = HoltPredictor.sse(data, fitted.alpha, fitted.beta)
    grid = np.linspace(0.0, 1.0, 5)
    best_grid = min(HoltPredictor.sse(data, a, b) for a in grid for b in grid)
    assert fitted_sse <= best_grid + 1e-6
