"""Figure-data regeneration pipeline."""

import csv

import pytest

from repro import figures


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out = tmp_path_factory.mktemp("figs")
    paths = figures.generate_all(out, quick=True)
    return out, paths


def read(path):
    with open(path) as f:
        return list(csv.DictReader(f))


class TestGenerateAll:
    def test_all_eight_files(self, generated):
        out, paths = generated
        assert len(paths) == 8
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_fig03_shape(self, generated):
        out, _ = generated
        rows = read(out / "fig03_case_study.csv")
        assert len(rows) == 21  # PAR 0..100 step 5
        best = max(rows, key=lambda r: float(r["perf_jops"]))
        assert 60 <= int(best["par_pct"]) <= 70

    def test_fig08_timeline_columns(self, generated):
        out, _ = generated
        rows = read(out / "fig08_timeline.csv")
        assert {"case", "greenhetero_perf", "uniform_perf", "par"} <= set(rows[0])
        assert len(rows) == 24  # quick: 0.25 day of 15-min epochs

    def test_fig09_normalized_to_uniform(self, generated):
        out, _ = generated
        for row in read(out / "fig09_perf.csv"):
            assert float(row["Uniform"]) == pytest.approx(1.0)

    def test_fig12_monotone(self, generated):
        out, _ = generated
        rows = read(out / "fig12_grid_budget.csv")
        perfs = [float(r["greenhetero_perf"]) for r in rows]
        assert perfs == sorted(perfs) or perfs[-1] >= perfs[0] * 0.95

    def test_fig14_workloads(self, generated):
        out, _ = generated
        names = {r["workload"] for r in read(out / "fig14_gpu.csv")}
        assert "Srad_v1" in names


class TestCli:
    def test_figures_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["figures", "--out", str(tmp_path / "f"), "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 figure datasets" in out
