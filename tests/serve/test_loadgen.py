"""Load generator: op mix, latency accounting, benchmark record."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.daemon import AllocationDaemon
from repro.serve.loadgen import (
    _percentile,
    format_summary,
    run_loadgen,
    solver_cache_hit_ratio,
)
from repro.serve.state import ServeConfig, ServeState

SMALL = ServeConfig(platforms=(("E5-2620", 2), ("i5-4460", 2)), n_racks=1)


@pytest.fixture(scope="module")
def served():
    state = ServeState.build(SMALL)
    daemon = AllocationDaemon(state, port=0)
    thread = daemon.run_in_thread()
    yield daemon
    daemon.stop_from_thread()
    thread.join(timeout=30)


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.99) == 0.0

    def test_single_sample(self):
        assert _percentile([4.2], 0.5) == 4.2

    def test_endpoints(self):
        values = [float(i) for i in range(101)]
        assert _percentile(values, 0.0) == 0.0
        assert _percentile(values, 1.0) == 100.0
        assert _percentile(values, 0.5) == 50.0

    def test_max_fraction_never_overruns_small_samples(self):
        # Regression guard: nearest-rank with fraction 1.0 must index the
        # last element, not one past it, at every sample size.
        for n in range(1, 6):
            values = [float(i) for i in range(n)]
            assert _percentile(values, 1.0) == values[-1]
            assert _percentile(values, 0.99) <= values[-1]

    def test_two_samples_split_at_the_median(self):
        assert _percentile([1.0, 9.0], 0.0) == 1.0
        assert _percentile([1.0, 9.0], 0.49) == 1.0
        assert _percentile([1.0, 9.0], 0.51) == 9.0
        assert _percentile([1.0, 9.0], 1.0) == 9.0


class TestCacheHitRatio:
    def stats(self, hits, misses):
        return {
            "racks": {
                "rack0": {"solver_cache": {"hits": hits, "misses": misses}}
            }
        }

    def test_burst_delta_not_absolute_counters(self):
        # A warm cache (100 prior hits) must not flatter the burst.
        before = self.stats(100, 50)
        after = self.stats(104, 54)
        assert solver_cache_hit_ratio(before, after) == pytest.approx(0.5)

    def test_no_lookups_is_none(self):
        stats = self.stats(10, 5)
        assert solver_cache_hit_ratio(stats, stats) is None

    def test_racks_without_caches_are_skipped(self):
        before = {"racks": {"rack0": {"solver_cache": None}}}
        after = {
            "racks": {
                "rack0": {"solver_cache": None},
                "rack1": {"solver_cache": {"hits": 3, "misses": 1}},
            }
        }
        assert solver_cache_hit_ratio(before, after) == pytest.approx(0.75)


class TestRunLoadgen:
    def test_burst_records_benchmark(self, served, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        result = run_loadgen(
            port=served.port, connections=2, requests=40, seed=3, out=out
        )
        assert result["errors"] == 0
        assert result["qps"] > 0
        assert result["latency_ms"]["p50"] <= result["latency_ms"]["p99"]
        assert sum(result["ops"].values()) == 40
        # Cycled budget levels must actually repeat programs.
        cache = result["cache_after"]["racks"]["rack0"]["solver_cache"]
        assert cache["hits"] > 0
        assert 0.0 < result["cache_hit_ratio"] <= 1.0
        assert json.loads(out.read_text()) == result

    def test_summary_is_printable(self, served):
        result = run_loadgen(port=served.port, connections=1, requests=10)
        summary = format_summary(result)
        assert "qps" in summary
        assert "p99" in summary
        assert "cache hit ratio" in summary

    def test_unknown_rack_rejected(self, served):
        with pytest.raises(ConfigurationError, match="unknown rack"):
            run_loadgen(port=served.port, rack="rack9", requests=5)

    def test_bad_parameters_rejected(self, served):
        with pytest.raises(ConfigurationError):
            run_loadgen(port=served.port, connections=0)
        with pytest.raises(ConfigurationError):
            run_loadgen(port=served.port, requests=0)
