"""The asyncio daemon: dispatch, coalescing, shutdown-with-checkpoint."""

import json
import socket
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import AllocationDaemon
from repro.serve.state import ServeConfig, ServeState

SMALL = ServeConfig(platforms=(("E5-2620", 2), ("i5-4460", 2)), n_racks=1)


@pytest.fixture
def served(tmp_path):
    """A running daemon (one small rack, checkpointing, audit stream)."""
    state = ServeState.build(SMALL, checkpoint_dir=tmp_path / "ckpt")
    daemon = AllocationDaemon(
        state, port=0, audit_log=tmp_path / "audit.jsonl"
    )
    thread = daemon.run_in_thread()
    yield daemon, state
    daemon.stop_from_thread()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture
def client(served):
    daemon, _ = served
    with ServeClient(port=daemon.port) as c:
        yield c


class TestDispatch:
    def test_ping(self, client):
        assert client.ping() == {"pong": True}

    def test_racks(self, client):
        assert client.racks() == ["rack0"]

    def test_allocate_explicit_budget(self, client):
        result = client.allocate("rack0", budget_w=400.0)
        assert result["budget_w"] == 400.0
        assert len(result["ratios"]) == 2

    def test_allocate_unknown_rack_is_error_response(self, client):
        with pytest.raises(ServeError, match="unknown rack") as err:
            client.allocate("rack9")
        assert err.value.error_type == "ConfigurationError"
        client.ping()  # connection survives the error

    def test_allocate_needs_rack(self, client):
        with pytest.raises(ServeError, match="needs a 'rack'"):
            client.request("allocate")

    def test_duplicate_budgets_hit_solver_cache(self, served, client):
        _, state = served
        client.allocate("rack0", budget_w=450.0)
        before = state.rack("rack0").solver.cache_info()["hits"]
        client.allocate("rack0", budget_w=450.0)
        assert state.rack("rack0").solver.cache_info()["hits"] == before + 1

    def test_forecast(self, client):
        forecast = client.forecast("rack0")
        assert forecast["case"] in {"A", "B", "C"}

    def test_observe_round_trip(self, client):
        result = client.observe("rack0", renewable_w=500.0, demand_w=300.0)
        assert result["rack"] == "rack0"

    def test_observe_missing_params_rejected(self, client):
        with pytest.raises(ServeError, match="renewable_w"):
            client.request("observe", rack="rack0")

    def test_step_returns_epoch_event(self, served, client):
        _, state = served
        event = client.step("rack0")
        assert event["event"] == "epoch"
        assert event["epoch_index"] == 0
        assert state.rack("rack0").n_epochs == 1

    def test_step_without_coordinator_needs_rack(self, client):
        with pytest.raises(ServeError, match="needs a 'rack'"):
            client.step()

    def test_status_counts_requests(self, client):
        client.ping()
        status = client.status()
        assert status["racks"]["rack0"]["policy"] == "GreenHetero"
        assert status["counters"]["requests"] >= 2
        assert status["ops"]["ping"] >= 1

    def test_cache_stats_surface_counters(self, client):
        client.allocate("rack0", budget_w=333.0)
        stats = client.cache_stats()
        assert stats["racks"]["rack0"]["solver_cache"]["misses"] >= 1
        assert "coalesced" in stats

    def test_checkpoint_op_writes_files(self, served, client, tmp_path):
        result = client.checkpoint()
        names = {p.name for p in (tmp_path / "ckpt").iterdir()}
        assert "manifest.json" in names
        assert result["checkpoint_dir"].endswith("ckpt")


class TestProtocolSurface:
    def test_malformed_line_answered_not_fatal(self, served):
        daemon, _ = served
        with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as sock:
            f = sock.makefile("rwb")
            f.write(b"{nope}\n")
            f.flush()
            response = json.loads(f.readline())
            assert response["ok"] is False
            assert response["error_type"] == "ProtocolError"
            # Daemon still serves on the same connection.
            f.write(b'{"op": "ping", "id": 2}\n')
            f.flush()
            assert json.loads(f.readline())["ok"] is True

    def test_request_id_echoed(self, served):
        daemon, _ = served
        with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as sock:
            f = sock.makefile("rwb")
            f.write(b'{"op": "ping", "id": "abc-123"}\n')
            f.flush()
            assert json.loads(f.readline())["id"] == "abc-123"


class TestCoalescing:
    def test_concurrent_duplicates_share_one_solve(self, served):
        daemon, state = served
        host = state.rack("rack0")
        calls = []
        original = host.allocate

        def slow_allocate(budget_w=None):
            calls.append(budget_w)
            time.sleep(0.3)
            return original(budget_w)

        host.allocate = slow_allocate
        results = []

        def query():
            with ServeClient(port=daemon.port) as c:
                results.append(c.allocate("rack0", budget_w=512.0))

        threads = [threading.Thread(target=query) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 3
        assert results[0] == results[1] == results[2]
        assert len(calls) == 1  # one executor solve served all three
        assert daemon.counters["coalesced"] == 2


class TestShutdown:
    def test_shutdown_op_checkpoints_and_stops(self, tmp_path):
        state = ServeState.build(SMALL, checkpoint_dir=tmp_path / "ckpt")
        daemon = AllocationDaemon(state, port=0, audit_log=tmp_path / "audit.jsonl")
        thread = daemon.run_in_thread()
        with ServeClient(port=daemon.port) as c:
            c.step("rack0")
            assert c.shutdown() == {"stopping": True}
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert (tmp_path / "ckpt" / "manifest.json").exists()
        events = [
            json.loads(line)
            for line in (tmp_path / "audit.jsonl").read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "serve-start"
        assert "epoch" in kinds
        assert "checkpoint" in kinds
        assert kinds[-1] == "serve-stop"

    def test_epoch_events_carry_cache_counters(self, tmp_path):
        state = ServeState.build(SMALL, checkpoint_dir=None)
        daemon = AllocationDaemon(state, port=0, audit_log=tmp_path / "audit.jsonl")
        thread = daemon.run_in_thread()
        try:
            with ServeClient(port=daemon.port) as c:
                c.step("rack0")
        finally:
            daemon.stop_from_thread()
            thread.join(timeout=30)
        epoch_events = [
            json.loads(line)
            for line in (tmp_path / "audit.jsonl").read_text().splitlines()
            if json.loads(line)["event"] == "epoch"
        ]
        assert epoch_events
        assert epoch_events[0]["solver_cache"]["misses"] >= 1

    def test_restart_restores_learned_state(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        state = ServeState.build(SMALL, checkpoint_dir=ckpt)
        daemon = AllocationDaemon(state, port=0)
        thread = daemon.run_in_thread()
        with ServeClient(port=daemon.port) as c:
            for _ in range(2):
                c.step("rack0")
        daemon.stop_from_thread()
        thread.join(timeout=30)

        state2 = ServeState.build(SMALL, checkpoint_dir=ckpt)
        daemon2 = AllocationDaemon(state2, port=0)
        thread2 = daemon2.run_in_thread()
        try:
            with ServeClient(port=daemon2.port) as c:
                status = c.status()
                assert status["restored"] is True
                assert status["racks"]["rack0"]["epochs"] == 2
        finally:
            daemon2.stop_from_thread()
            thread2.join(timeout=30)


class TestClusterServing:
    def test_cluster_step_over_the_wire(self, tmp_path):
        config = ServeConfig(
            platforms=SMALL.platforms, n_racks=2, shared_grid_w=1500.0
        )
        state = ServeState.build(config)
        daemon = AllocationDaemon(state, port=0)
        thread = daemon.run_in_thread()
        try:
            with ServeClient(port=daemon.port) as c:
                result = c.step()
                assert result["cluster_epoch"] == 1
                assert {event["rack"] for event in result["racks"]} == {
                    "rack0",
                    "rack1",
                }
        finally:
            daemon.stop_from_thread()
            thread.join(timeout=30)
        assert all(host.n_epochs == 1 for host in state.racks.values())
