"""The serve daemon's temporal-shifting verbs and checkpointed plans."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import AllocationDaemon
from repro.serve.state import ServeConfig, ServeState

#: All-batch rack: every group runs a deferrable workload.
BATCH = ServeConfig(
    platforms=(("E5-2620", 2), ("i5-4460", 2)),
    workload="Streamcluster",
    n_racks=1,
)

#: SPECjbb is interactive, so this rack has nothing to defer.
INTERACTIVE = ServeConfig(
    platforms=(("E5-2620", 2),), workload="SPECjbb", n_racks=1
)


def make_job(clock_s, job_id="j0", offset_epochs=0):
    return {
        "job_id": job_id,
        "energy_wh": 100.0,
        "power_w": 200.0,
        "earliest_start_s": clock_s + offset_epochs * 900.0,
        "deadline_s": clock_s + 24 * 3600.0,
        "value": 1.0,
    }


@pytest.fixture(scope="module")
def served():
    daemon = AllocationDaemon(ServeState.build(BATCH), port=0)
    thread = daemon.run_in_thread()
    yield daemon
    daemon.stop_from_thread()
    thread.join(timeout=30)


@pytest.fixture
def client(served):
    with ServeClient(port=served.port) as c:
        yield c


class TestVerbs:
    def test_submit_reports_queue(self, client):
        clock_s = client.queue_status("rack0")["clock_s"]
        status = client.submit("rack0", make_job(clock_s, "verb-submit"))
        assert status["rack"] == "rack0"
        assert status["activated"] is True
        assert status["jobs"]["pending"] >= 1

    def test_plan_names_decisions(self, client):
        clock_s = client.queue_status("rack0")["clock_s"]
        client.submit("rack0", make_job(clock_s, "verb-plan"))
        result = client.plan("rack0")
        assert result["rack"] == "rack0"
        plan = result["plan"]
        assert plan["policy"] == "shift"
        assert plan["horizon"] == 8
        placed = {p["job_id"] for p in plan["placements"]}
        assert "verb-plan" in placed | set(plan["unplaced"])

    def test_plan_is_idempotent(self, client):
        assert client.plan("rack0") == client.plan("rack0")

    def test_queue_status_shape(self, client):
        status = client.queue_status("rack0")
        assert set(status) >= {
            "rack", "clock_s", "activated", "jobs", "backlog_wh",
            "deadline_misses", "grid_avoided_wh", "epochs",
        }

    def test_duplicate_submit_rejected(self, client):
        clock_s = client.queue_status("rack0")["clock_s"]
        client.submit("rack0", make_job(clock_s, "verb-dup"))
        with pytest.raises(ServeError, match="duplicate"):
            client.submit("rack0", make_job(clock_s, "verb-dup"))

    def test_malformed_job_rejected(self, client):
        with pytest.raises(ServeError, match="job"):
            client.request("submit", rack="rack0")
        with pytest.raises(ServeError, match="malformed"):
            client.submit("rack0", {"job_id": "incomplete"})

    def test_verbs_require_a_rack(self, client):
        for op in ("submit", "plan", "queue-status"):
            with pytest.raises(ServeError, match="rack"):
                client.request(op)

    def test_step_executes_submitted_jobs(self, served):
        # Fresh daemon so module-scope submissions don't interfere.
        daemon = AllocationDaemon(ServeState.build(BATCH), port=0)
        thread = daemon.run_in_thread()
        try:
            with ServeClient(port=daemon.port) as client:
                clock_s = client.queue_status("rack0")["clock_s"]
                client.submit("rack0", make_job(clock_s, "runner"))
                for _ in range(4):
                    client.step("rack0")
                status = client.queue_status("rack0")
                assert status["jobs"]["done"] == 1
                assert status["epochs"] == 4
        finally:
            daemon.stop_from_thread()
            thread.join(timeout=30)


class TestInteractiveRackRejected:
    def test_submit_needs_deferrable_groups(self):
        state = ServeState.build(INTERACTIVE)
        with pytest.raises(ConfigurationError, match="no deferrable groups"):
            state.rack("rack0").submit(make_job(0.0))


class TestCheckpointedPlans:
    def test_restore_with_nonempty_queue_is_bit_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        state = ServeState.build(BATCH, checkpoint_dir=ckpt)
        host = state.rack("rack0")
        host.submit(make_job(host.clock_s, "ride-along"))
        host.submit(make_job(host.clock_s, "pending", offset_epochs=40))
        host.step()
        host.step()
        host.plan()
        state.checkpoint()
        want = {
            p.name: p.read_bytes()
            for p in ckpt.iterdir()
            if p.name != "manifest.json"
        }
        counts = host.shift.queue.counts()
        assert counts["pending"] >= 1  # the backlog must survive

        restored = ServeState.build(BATCH, checkpoint_dir=ckpt)
        assert restored.restored
        again = restored.rack("rack0")
        assert again.shift.queue.counts() == counts
        assert again.shift.state_dict() == host.shift.state_dict()
        # Replanning from restored state reproduces the old decision.
        assert again.plan() == host.plan()
        restored.checkpoint()
        for name, blob in want.items():
            assert (ckpt / name).read_bytes() == blob, name

    def test_old_checkpoints_without_shift_state_restore(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        state = ServeState.build(BATCH, checkpoint_dir=ckpt)
        state.rack("rack0").step()
        state.checkpoint()
        # Strip the shift section, as a pre-shift daemon would have
        # written it.
        doc_path = ckpt / "rack0.state.json"
        document = json.loads(doc_path.read_text())
        document.pop("shift")
        doc_path.write_text(json.dumps(document, indent=2, sort_keys=True))

        restored = ServeState.build(BATCH, checkpoint_dir=ckpt)
        host = restored.rack("rack0")
        assert restored.restored
        assert host.n_epochs == 1
        assert not host.shift.activated
        assert len(host.shift.queue) == 0
