"""The daemon's observability surface: metrics verb, obs cache block,
periodic metrics snapshots."""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import parse_exposition
from repro.serve.client import ServeClient
from repro.serve.daemon import AllocationDaemon
from repro.serve.state import ServeConfig, ServeState

SMALL = ServeConfig(platforms=(("E5-2620", 2), ("i5-4460", 2)), n_racks=1)


@pytest.fixture
def served(tmp_path):
    state = ServeState.build(SMALL)
    daemon = AllocationDaemon(
        state, port=0,
        audit_log=tmp_path / "audit.jsonl",
        metrics_interval_s=0.1,
    )
    thread = daemon.run_in_thread()
    yield daemon, tmp_path / "audit.jsonl"
    daemon.stop_from_thread()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture
def client(served):
    daemon, _ = served
    with ServeClient(port=daemon.port) as c:
        yield c


class TestMetricsVerb:
    def test_returns_parseable_exposition(self, client):
        client.allocate("rack0", budget_w=400.0)
        scrape = client.metrics()
        families = parse_exposition(scrape["text"])
        assert "repro_serve_request_seconds" in families
        assert "repro_serve_requests_total" in families
        assert "repro_solver_solve_seconds" in families
        assert set(families) <= set(scrape["families"])

    def test_request_counters_grow(self, client):
        def ping_count():
            families = parse_exposition(client.metrics()["text"])
            return sum(
                value
                for name, labels, value in
                families["repro_serve_requests_total"]["samples"]
                if 'op="ping"' in labels and 'status="ok"' in labels
            )
        client.ping()
        first = ping_count()
        client.ping()
        assert ping_count() == first + 1

    def test_error_responses_counted(self, client):
        families_before = parse_exposition(client.metrics()["text"])

        def errors(families):
            return sum(
                value
                for name, labels, value in
                families.get("repro_serve_requests_total", {"samples": []})["samples"]
                if 'status="error"' in labels
            )
        with pytest.raises(Exception):
            client.allocate("rack9")
        families_after = parse_exposition(client.metrics()["text"])
        assert errors(families_after) == errors(families_before) + 1


class TestCacheStatsObsBlock:
    def test_obs_totals_match_per_rack_counters(self, client):
        client.allocate("rack0", budget_w=400.0)
        client.allocate("rack0", budget_w=400.0)
        stats = client.cache_stats()
        assert "obs" in stats
        obs = stats["obs"]
        # Process-wide counters can only be >= this daemon's rack sums.
        rack_hits = sum(
            info["solver_cache"]["hits"] for info in stats["racks"].values()
        )
        assert obs["solver_cache_hits"] >= rack_hits
        assert obs["solver_cache_misses"] >= 0


class TestMetricsInterval:
    def test_periodic_snapshots_written(self, served, client):
        _, audit = served
        client.ping()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            events = [
                json.loads(line)
                for line in audit.read_text().splitlines()
                if '"metrics"' in line
            ] if audit.exists() else []
            metrics_events = [e for e in events if e.get("event") == "metrics"]
            if metrics_events:
                break
            time.sleep(0.05)
        assert metrics_events, "no periodic metrics snapshot within 10 s"
        snapshot = metrics_events[-1]["snapshot"]
        assert "repro_serve_requests_total" in snapshot

    def test_interval_requires_audit_log(self):
        state = ServeState.build(SMALL)
        with pytest.raises(ConfigurationError, match="audit"):
            AllocationDaemon(state, port=0, metrics_interval_s=1.0)

    def test_interval_must_be_positive(self, tmp_path):
        state = ServeState.build(SMALL)
        with pytest.raises(ConfigurationError):
            AllocationDaemon(
                state, port=0,
                audit_log=tmp_path / "a.jsonl",
                metrics_interval_s=0.0,
            )
