"""NDJSON wire format: framing, validation, envelopes."""

import json

import pytest

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)


class TestFraming:
    def test_encode_is_one_terminated_line(self):
        line = encode_message({"op": "ping", "id": 1})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_round_trip(self):
        message = {"id": 7, "op": "allocate", "rack": "rack0", "budget_w": 800.0}
        assert decode_message(encode_message(message)) == message

    def test_str_lines_accepted(self):
        assert decode_message('{"op": "ping"}') == {"op": "ping"}

    def test_oversized_line_rejected(self):
        line = json.dumps({"op": "x" * MAX_LINE_BYTES}).encode()
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_message(line)

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_message(b"{nope}")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2, 3]")


class TestParseRequest:
    def test_envelope_and_params_split(self):
        request = parse_request(
            {"id": 3, "op": "allocate", "rack": "rack1", "budget_w": 500.0}
        )
        assert request.id == 3
        assert request.op == "allocate"
        assert request.rack == "rack1"
        assert request.params == {"budget_w": 500.0}

    def test_id_and_rack_optional(self):
        request = parse_request({"op": "status"})
        assert request.id is None
        assert request.rack is None
        assert request.params == {}

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="string 'op'"):
            parse_request({"id": 1})

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request({"op": "destroy"})

    def test_non_string_rack_rejected(self):
        with pytest.raises(ProtocolError, match="'rack'"):
            parse_request({"op": "status", "rack": 3})

    def test_every_advertised_op_parses(self):
        for op in OPS:
            assert parse_request({"op": op}).op == op


class TestResponses:
    def test_ok_envelope(self):
        response = ok_response(5, {"pong": True})
        assert response == {"id": 5, "ok": True, "result": {"pong": True}}

    def test_error_envelope(self):
        response = error_response(5, "boom", "SolverError")
        assert response["ok"] is False
        assert response["error"] == "boom"
        assert response["error_type"] == "SolverError"

    def test_responses_encode(self):
        decode_message(encode_message(ok_response(None, {})))
        decode_message(encode_message(error_response(None, "x")))
