"""Serving state: rack hosts, fleets, checkpoint/restore."""

import json

import pytest

from repro.core.persistence import database_to_dict
from repro.errors import ConfigurationError
from repro.serve.state import MANIFEST_NAME, ServeConfig, ServeState

#: Small rack so fleet assembly (with training runs) stays fast.
SMALL = ServeConfig(platforms=(("E5-2620", 2), ("i5-4460", 2)), n_racks=1)


@pytest.fixture
def state():
    return ServeState.build(SMALL)


@pytest.fixture
def host(state):
    return state.rack("rack0")


class TestServeConfig:
    def test_dict_round_trip(self):
        config = ServeConfig(n_racks=3, shared_grid_w=2500.0, seed=7)
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = ServeConfig()
        document = json.loads(json.dumps(config.to_dict()))
        assert ServeConfig.from_dict(document) == config

    def test_zero_racks_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(n_racks=0)

    def test_bad_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(epoch_s=0.0)

    def test_malformed_document_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig.from_dict({"workload": "SPECjbb"})


class TestRackHost:
    def test_allocation_document(self, host):
        result = host.allocate(500.0)
        assert result["rack"] == "rack0"
        assert result["budget_w"] == 500.0
        assert len(result["ratios"]) == 2
        assert result["group_budgets_w"] == [r * 500.0 for r in result["ratios"]]
        assert sum(result["ratios"]) <= 1.0 + 1e-9

    def test_allocate_defaults_to_planned_budget(self, host):
        result = host.allocate()
        assert result["budget_w"] == pytest.approx(host.plan_budget_w())

    def test_negative_budget_rejected(self, host):
        with pytest.raises(ConfigurationError):
            host.allocate(-1.0)

    def test_forecast_names_a_case(self, host):
        forecast = host.forecast()
        assert forecast["case"] in {"A", "B", "C"}
        assert forecast["demand_w"] >= 0.0

    def test_observe_feeds_predictors(self, host):
        before = host.forecast()
        for _ in range(6):
            after = host.observe(renewable_w=900.0, demand_w=300.0)
        assert after["renewable_w"] > before["renewable_w"]

    def test_observe_rejects_negative(self, host):
        with pytest.raises(ConfigurationError):
            host.observe(renewable_w=-1.0, demand_w=100.0)

    def test_step_advances_clock_and_log(self, host):
        t0 = host.clock_s
        record = host.step()
        assert record.time_s == t0
        assert host.n_epochs == 1
        assert host.clock_s == t0 + host.epoch_s
        assert len(host.log) == 1

    def test_status_document(self, host):
        host.step()
        status = host.status()
        assert status["epochs"] == 1
        assert status["database_pairs"] == 2
        assert status["solver_cache"]["misses"] >= 1
        json.dumps(status)  # dashboard-ready


class TestFleet:
    def test_unknown_rack_rejected(self, state):
        with pytest.raises(ConfigurationError, match="unknown rack"):
            state.rack("rack9")

    def test_racks_are_independently_seeded(self):
        fleet = ServeState.build(
            ServeConfig(platforms=SMALL.platforms, n_racks=2)
        )
        a = fleet.rack("rack0").controller
        b = fleet.rack("rack1").controller
        assert a is not b
        assert a.policy is not b.policy  # separate solver caches

    def test_cluster_step_needs_shared_grid(self, state):
        with pytest.raises(ConfigurationError, match="shared grid"):
            state.step_cluster()

    def test_cluster_step_advances_every_rack(self):
        fleet = ServeState.build(
            ServeConfig(platforms=SMALL.platforms, n_racks=2, shared_grid_w=1500.0)
        )
        records = fleet.step_cluster()
        assert len(records) == 2
        assert fleet.cluster_epochs == 1
        assert all(host.n_epochs == 1 for host in fleet.racks.values())

    def test_cluster_restores_provisioned_budgets(self):
        fleet = ServeState.build(
            ServeConfig(platforms=SMALL.platforms, n_racks=2, shared_grid_w=1500.0)
        )
        provisioned = [
            host.controller.pdu.grid.budget_w for host in fleet.racks.values()
        ]
        fleet.step_cluster()
        assert [
            host.controller.pdu.grid.budget_w for host in fleet.racks.values()
        ] == provisioned


class TestCheckpoint:
    def test_checkpoint_requires_directory(self, state):
        with pytest.raises(ConfigurationError):
            state.checkpoint()

    def test_manifest_written_last_means_complete(self, tmp_path):
        state = ServeState.build(SMALL, checkpoint_dir=tmp_path / "ckpt")
        directory = state.checkpoint()
        names = {p.name for p in directory.iterdir()}
        assert names == {MANIFEST_NAME, "rack0.database.json", "rack0.state.json"}

    def test_restore_round_trip_is_bit_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        state = ServeState.build(SMALL, checkpoint_dir=ckpt)
        for _ in range(3):
            state.rack("rack0").step()
        state.checkpoint()
        host = state.rack("rack0")
        want_db = json.dumps(
            database_to_dict(host.controller.scheduler.database), sort_keys=True
        )
        want_state = json.dumps(host.state_document(), sort_keys=True)

        restored = ServeState.build(SMALL, checkpoint_dir=ckpt)
        assert restored.restored
        again = restored.rack("rack0")
        assert (
            json.dumps(
                database_to_dict(again.controller.scheduler.database), sort_keys=True
            )
            == want_db
        )
        assert json.dumps(again.state_document(), sort_keys=True) == want_state
        assert again.n_epochs == 3

    def test_manifest_config_replaces_callers(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ServeState.build(SMALL, checkpoint_dir=ckpt).checkpoint()
        other = ServeConfig(
            platforms=SMALL.platforms, n_racks=1, seed=SMALL.seed + 40
        )
        restored = ServeState.build(other, checkpoint_dir=ckpt)
        assert restored.config == SMALL

    def test_missing_manifest_means_cold_boot(self, tmp_path):
        state = ServeState.build(SMALL, checkpoint_dir=tmp_path / "empty")
        assert not state.restored

    def test_corrupt_manifest_rejected(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(ConfigurationError):
            ServeState.build(SMALL, checkpoint_dir=ckpt)

    def test_version_mismatch_rejected(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        state = ServeState.build(SMALL, checkpoint_dir=ckpt)
        state.checkpoint()
        manifest = json.loads((ckpt / MANIFEST_NAME).read_text())
        manifest["format_version"] = 99
        (ckpt / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="version"):
            ServeState.build(SMALL, checkpoint_dir=ckpt)

    def test_restored_status_reports_it(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ServeState.build(SMALL, checkpoint_dir=ckpt).checkpoint()
        restored = ServeState.build(SMALL, checkpoint_dir=ckpt)
        assert restored.status()["restored"] is True
