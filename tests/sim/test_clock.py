"""Simulation clock."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import SimClock
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY


class TestClock:
    def test_default_is_one_day_of_epochs(self):
        clock = SimClock()
        assert clock.n_epochs == 96
        assert clock.epoch_s == EPOCH_SECONDS

    def test_epoch_times(self):
        clock = SimClock(start_s=0.0, duration_s=3600.0, epoch_s=900.0)
        assert list(clock.epoch_times()) == [0.0, 900.0, 1800.0, 2700.0]

    def test_start_offset(self):
        clock = SimClock(start_s=SECONDS_PER_DAY, duration_s=1800.0, epoch_s=900.0)
        times = list(clock.epoch_times())
        assert times[0] == SECONDS_PER_DAY

    def test_partial_epoch_dropped(self):
        clock = SimClock(start_s=0.0, duration_s=1000.0, epoch_s=900.0)
        assert clock.n_epochs == 1

    def test_history_times_precede_start(self):
        clock = SimClock(start_s=SECONDS_PER_DAY)
        history = clock.history_times(4)
        assert len(history) == 4
        assert all(t < SECONDS_PER_DAY for t in history)
        assert history == sorted(history)
        assert history[-1] == SECONDS_PER_DAY - EPOCH_SECONDS

    def test_history_needs_positive_count(self):
        with pytest.raises(ConfigurationError):
            SimClock().history_times(0)

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock(duration_s=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock(start_s=-1.0)
