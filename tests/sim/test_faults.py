"""Failure injection: the controller must degrade gracefully."""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig
from repro.sim.faults import FaultInjector, FaultWindow, parse_fault_spec
from repro.sim.runner import run_experiment
from repro.units import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY


def assemble(faults=None, hours=6.0, start_hour=0.0, **kwargs):
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")
    clock = SimClock(start_s=DAY + start_hour * 3600.0, duration_s=hours * 3600.0)
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"), rack=rack, clock=clock, seed=13, **kwargs
    )
    sim.faults = faults
    return sim


class TestFaultWindow:
    def test_half_open_interval(self):
        w = FaultWindow(10.0, 20.0, 0.5)
        assert w.active_at(10.0)
        assert w.active_at(19.999)
        assert not w.active_at(20.0)
        assert not w.active_at(9.999)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultWindow(20.0, 10.0, 0.5)
        with pytest.raises(ConfigurationError):
            FaultWindow(0.0, 10.0, 1.5)


class TestRenewableDropout:
    def test_noon_dropout_kills_solar(self):
        faults = FaultInjector().add_renewable_dropout(
            DAY + 12 * 3600.0, DAY + 14 * 3600.0, factor=0.0
        )
        sim = assemble(faults, hours=6.0, start_hour=10.0)
        log = sim.run()
        hours = (log.times_s - DAY) / 3600.0
        dropped = (hours >= 12.0) & (hours < 14.0)
        healthy = ~dropped
        assert log.series("renewable_w")[dropped].max() == 0.0
        assert log.series("renewable_w")[healthy].max() > 100.0

    def test_rack_survives_on_battery(self):
        faults = FaultInjector().add_renewable_dropout(
            DAY + 12 * 3600.0, DAY + 13 * 3600.0
        )
        sim = assemble(faults, hours=3.0, start_hour=11.0)
        log = sim.run()
        # Battery/grid carries the load: no zero-throughput epochs.
        assert log.throughputs.min() > 0.0

    def test_partial_dropout_scales(self):
        faults = FaultInjector().add_renewable_dropout(
            DAY + 12 * 3600.0, DAY + 13 * 3600.0, factor=0.5
        )
        healthy = assemble(None, hours=1.0, start_hour=12.0).run()
        faulty = assemble(faults, hours=1.0, start_hour=12.0).run()
        ratio = faulty.series("renewable_w")[0] / healthy.series("renewable_w")[0]
        assert ratio == pytest.approx(0.5, abs=0.05)


class TestBatteryOutage:
    def test_night_outage_routes_to_grid(self):
        faults = FaultInjector().add_battery_outage(DAY, DAY + 2 * 3600.0)
        sim = assemble(faults, hours=2.0, start_hour=0.0)
        log = sim.run()
        assert log.series("battery_to_load_w").max() == pytest.approx(0.0, abs=1e-6)
        assert log.series("grid_to_load_w").max() > 0.0

    def test_battery_restored_after_window(self):
        faults = FaultInjector().add_battery_outage(DAY, DAY + 3600.0)
        sim = assemble(faults, hours=3.0, start_hour=0.0)
        log = sim.run()
        hours = (log.times_s - DAY) / 3600.0
        after = hours >= 1.0
        assert log.series("battery_to_load_w")[after].max() > 0.0


class TestGridOutage:
    def test_blackout_with_drained_battery_browns_out(self):
        faults = FaultInjector().add_grid_outage(DAY, DAY + 2 * 3600.0)
        sim = assemble(faults, hours=2.0, start_hour=0.0)
        # Drain the battery so nothing can serve the night load.
        bank = sim.controller.pdu.battery
        bank.soc_wh = bank.floor_wh
        log = sim.run()
        assert log.series("grid_to_load_w").max() == pytest.approx(0.0, abs=1e-6)
        # Throughput collapses but the controller never crashes.
        assert log.throughputs.max() < 1e-6 or log.throughputs.min() >= 0.0

    def test_brownout_factor(self):
        faults = FaultInjector().add_grid_outage(DAY, DAY + 3600.0, factor=0.5)
        sim = assemble(faults, hours=1.0, start_hour=0.0)
        bank = sim.controller.pdu.battery
        bank.soc_wh = bank.floor_wh
        healthy_budget = sim.controller.pdu.grid.budget_w
        log = sim.run()
        assert log.series("grid_to_load_w").max() <= 0.5 * healthy_budget + 1e-6

    def test_grid_restored_after_window(self):
        faults = FaultInjector().add_grid_outage(DAY, DAY + 3600.0)
        sim = assemble(faults, hours=3.0, start_hour=0.0)
        sim.run()
        assert sim.controller.pdu.grid.budget_w > 0.0


class TestComposition:
    def test_overlapping_faults_compose(self):
        faults = (
            FaultInjector()
            .add_renewable_dropout(DAY + 12 * 3600.0, DAY + 13 * 3600.0)
            .add_battery_outage(DAY + 12 * 3600.0, DAY + 13 * 3600.0)
        )
        sim = assemble(faults, hours=1.0, start_hour=12.0)
        log = sim.run()
        # Only the grid remains: load served within its budget.
        assert log.series("grid_to_load_w").max() > 0.0
        assert log.series("battery_to_load_w").max() == pytest.approx(0.0, abs=1e-6)

    def test_no_faults_is_identity(self):
        a = assemble(None, hours=2.0).run()
        b = assemble(FaultInjector(), hours=2.0).run()
        assert np.allclose(a.throughputs, b.throughputs)


class TestFaultSpecs:
    """The ``kind:factor:start_s:end_s`` CLI spec language."""

    def test_parse_valid_spec(self):
        kind, window = parse_fault_spec("renewable:0.25:100:200")
        assert kind == "renewable"
        assert window == FaultWindow(100.0, 200.0, 0.25)

    @pytest.mark.parametrize(
        "spec",
        [
            "renewable:0.0:100",           # wrong field count
            "solar:0.0:100:200",           # unknown kind
            "renewable:zero:100:200",      # non-numeric factor
            "renewable:0.0:200:100",       # empty window
            "renewable:1.5:100:200",       # factor out of range
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(spec)

    def test_from_specs_routes_each_kind(self):
        injector = FaultInjector.from_specs(
            [
                "renewable:0.0:0:10",
                "battery:0.5:0:10",
                "grid:0.0:0:10",
            ]
        )
        assert len(injector.renewable_windows) == 1
        assert len(injector.battery_windows) == 1
        assert len(injector.grid_windows) == 1


class TestExperimentWiring:
    """``ExperimentConfig.faults`` must reach every policy's simulation."""

    def test_bad_spec_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(faults=("bogus",))

    def test_injected_dropout_changes_the_run(self):
        # A quarter-day run straddling midday of simulated day 1, with a
        # two-hour dropout aligned to the epoch grid (metering is
        # sub-epoch, so a straddling window would only scale part of an
        # epoch's renewable).
        start_s = 1.4 * DAY
        dropout_start = start_s + 4 * 900.0
        dropout_end = dropout_start + 7200.0
        base = ExperimentConfig(
            days=0.25, start_day=1.4, policies=("GreenHetero",), seed=13
        )
        faulty = ExperimentConfig(
            days=0.25,
            start_day=1.4,
            policies=("GreenHetero",),
            seed=13,
            # Full-precision endpoints: the epoch grid lives at
            # 1.4 * DAY + k * 900 (not a round number), and a rounded
            # window would only partially cover its boundary epochs.
            faults=(f"renewable:0.0:{dropout_start!r}:{dropout_end!r}",),
        )
        clean_log = run_experiment(base).log("GreenHetero")
        faulty_log = run_experiment(faulty).log("GreenHetero")
        # During the dropout no renewable reaches the load...
        window = [
            r for r in faulty_log if dropout_start <= r.time_s < dropout_end
        ]
        assert window
        assert all(r.renewable_metered_w == 0.0 for r in window)
        # ...whereas the clean run was solar-powered then.
        clean_window = [
            r for r in clean_log if dropout_start <= r.time_s < dropout_end
        ]
        assert any(r.renewable_metered_w > 0.0 for r in clean_window)
