"""Failure injection: the controller must degrade gracefully."""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.faults import FaultInjector, FaultWindow
from repro.units import SECONDS_PER_DAY

DAY = SECONDS_PER_DAY


def assemble(faults=None, hours=6.0, start_hour=0.0, **kwargs):
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")
    clock = SimClock(start_s=DAY + start_hour * 3600.0, duration_s=hours * 3600.0)
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"), rack=rack, clock=clock, seed=13, **kwargs
    )
    sim.faults = faults
    return sim


class TestFaultWindow:
    def test_half_open_interval(self):
        w = FaultWindow(10.0, 20.0, 0.5)
        assert w.active_at(10.0)
        assert w.active_at(19.999)
        assert not w.active_at(20.0)
        assert not w.active_at(9.999)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultWindow(20.0, 10.0, 0.5)
        with pytest.raises(ConfigurationError):
            FaultWindow(0.0, 10.0, 1.5)


class TestRenewableDropout:
    def test_noon_dropout_kills_solar(self):
        faults = FaultInjector().add_renewable_dropout(
            DAY + 12 * 3600.0, DAY + 14 * 3600.0, factor=0.0
        )
        sim = assemble(faults, hours=6.0, start_hour=10.0)
        log = sim.run()
        hours = (log.times_s - DAY) / 3600.0
        dropped = (hours >= 12.0) & (hours < 14.0)
        healthy = ~dropped
        assert log.series("renewable_w")[dropped].max() == 0.0
        assert log.series("renewable_w")[healthy].max() > 100.0

    def test_rack_survives_on_battery(self):
        faults = FaultInjector().add_renewable_dropout(
            DAY + 12 * 3600.0, DAY + 13 * 3600.0
        )
        sim = assemble(faults, hours=3.0, start_hour=11.0)
        log = sim.run()
        # Battery/grid carries the load: no zero-throughput epochs.
        assert log.throughputs.min() > 0.0

    def test_partial_dropout_scales(self):
        faults = FaultInjector().add_renewable_dropout(
            DAY + 12 * 3600.0, DAY + 13 * 3600.0, factor=0.5
        )
        healthy = assemble(None, hours=1.0, start_hour=12.0).run()
        faulty = assemble(faults, hours=1.0, start_hour=12.0).run()
        ratio = faulty.series("renewable_w")[0] / healthy.series("renewable_w")[0]
        assert ratio == pytest.approx(0.5, abs=0.05)


class TestBatteryOutage:
    def test_night_outage_routes_to_grid(self):
        faults = FaultInjector().add_battery_outage(DAY, DAY + 2 * 3600.0)
        sim = assemble(faults, hours=2.0, start_hour=0.0)
        log = sim.run()
        assert log.series("battery_to_load_w").max() == pytest.approx(0.0, abs=1e-6)
        assert log.series("grid_to_load_w").max() > 0.0

    def test_battery_restored_after_window(self):
        faults = FaultInjector().add_battery_outage(DAY, DAY + 3600.0)
        sim = assemble(faults, hours=3.0, start_hour=0.0)
        log = sim.run()
        hours = (log.times_s - DAY) / 3600.0
        after = hours >= 1.0
        assert log.series("battery_to_load_w")[after].max() > 0.0


class TestGridOutage:
    def test_blackout_with_drained_battery_browns_out(self):
        faults = FaultInjector().add_grid_outage(DAY, DAY + 2 * 3600.0)
        sim = assemble(faults, hours=2.0, start_hour=0.0)
        # Drain the battery so nothing can serve the night load.
        bank = sim.controller.pdu.battery
        bank.soc_wh = bank.floor_wh
        log = sim.run()
        assert log.series("grid_to_load_w").max() == pytest.approx(0.0, abs=1e-6)
        # Throughput collapses but the controller never crashes.
        assert log.throughputs.max() < 1e-6 or log.throughputs.min() >= 0.0

    def test_brownout_factor(self):
        faults = FaultInjector().add_grid_outage(DAY, DAY + 3600.0, factor=0.5)
        sim = assemble(faults, hours=1.0, start_hour=0.0)
        bank = sim.controller.pdu.battery
        bank.soc_wh = bank.floor_wh
        healthy_budget = sim.controller.pdu.grid.budget_w
        log = sim.run()
        assert log.series("grid_to_load_w").max() <= 0.5 * healthy_budget + 1e-6

    def test_grid_restored_after_window(self):
        faults = FaultInjector().add_grid_outage(DAY, DAY + 3600.0)
        sim = assemble(faults, hours=3.0, start_hour=0.0)
        sim.run()
        assert sim.controller.pdu.grid.budget_w > 0.0


class TestComposition:
    def test_overlapping_faults_compose(self):
        faults = (
            FaultInjector()
            .add_renewable_dropout(DAY + 12 * 3600.0, DAY + 13 * 3600.0)
            .add_battery_outage(DAY + 12 * 3600.0, DAY + 13 * 3600.0)
        )
        sim = assemble(faults, hours=1.0, start_hour=12.0)
        log = sim.run()
        # Only the grid remains: load served within its budget.
        assert log.series("grid_to_load_w").max() > 0.0
        assert log.series("battery_to_load_w").max() == pytest.approx(0.0, abs=1e-6)

    def test_no_faults_is_identity(self):
        a = assemble(None, hours=2.0).run()
        b = assemble(FaultInjector(), hours=2.0).run()
        assert np.allclose(a.throughputs, b.throughputs)
