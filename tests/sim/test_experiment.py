"""Experiment harness: configs, sweeps, gains."""

import pytest

from repro.core.database import FitKind
from repro.errors import ConfigurationError
from repro.sim.experiment import (
    COMBINATIONS,
    STANDARD_TESTBED_ENVELOPE_W,
    ExperimentConfig,
    run_experiment,
)
from repro.traces.nrel import Weather


class TestConfig:
    def test_defaults_are_fig8(self):
        cfg = ExperimentConfig()
        assert cfg.platforms == (("E5-2620", 5), ("i5-4460", 5))
        assert cfg.workload == "SPECjbb"
        assert cfg.grid_budget_w == 1000.0
        assert cfg.weather is Weather.HIGH

    def test_fig8_factory_overrides(self):
        cfg = ExperimentConfig.fig8_default(days=2.0)
        assert cfg.days == 2.0

    def test_fig11_uses_low_trace(self):
        assert ExperimentConfig.fig11_low_trace().weather is Weather.LOW

    def test_bad_days_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(days=0.0)

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(policies=())

    def test_supply_fractions_with_grid_budget_rejected(self):
        # The default grid_budget_w counts too: the sweep disables the
        # grid, so a silently-ignored budget must be an error.
        with pytest.raises(ConfigurationError):
            ExperimentConfig(supply_fractions=(0.5, 0.8))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(supply_fractions=(0.5,), grid_budget_w=800.0)

    def test_supply_fractions_without_grid_budget_accepted(self):
        cfg = ExperimentConfig(supply_fractions=(0.5, 0.8), grid_budget_w=None)
        assert cfg.supply_fractions == (0.5, 0.8)

    def test_named_sweeps_disable_the_grid(self):
        assert ExperimentConfig.insufficient_supply("SPECjbb").grid_budget_w is None
        assert ExperimentConfig.combination_sweep("Comb1").grid_budget_w is None

    def test_build_rack(self):
        rack = ExperimentConfig().build_rack()
        assert rack.n_servers == 10

    def test_build_clock(self):
        clock = ExperimentConfig(days=0.5).build_clock()
        assert clock.n_epochs == 48


class TestTableIV:
    def test_six_combinations(self):
        assert set(COMBINATIONS) == {f"Comb{i}" for i in range(1, 7)}

    def test_comb5_has_three_types(self):
        assert len(COMBINATIONS["Comb5"]) == 3

    def test_comb6_is_gpu(self):
        assert ("TitanXp", 5) in COMBINATIONS["Comb6"]

    def test_five_servers_per_type(self):
        for combo in COMBINATIONS.values():
            assert all(count == 5 for _, count in combo)

    def test_for_combination(self):
        cfg = ExperimentConfig.for_combination("Comb3")
        assert cfg.platforms == COMBINATIONS["Comb3"]

    def test_unknown_combination_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.for_combination("Comb9")

    def test_standard_envelope(self):
        assert STANDARD_TESTBED_ENVELOPE_W == pytest.approx(1370.0)

    def test_combination_sweep_pins_reference_for_cpu(self):
        cfg = ExperimentConfig.combination_sweep("Comb2")
        assert cfg.budget_reference_w == STANDARD_TESTBED_ENVELOPE_W

    def test_combination_sweep_gpu_uses_own_envelope(self):
        cfg = ExperimentConfig.combination_sweep("Comb6", "Srad_v1")
        assert cfg.budget_reference_w is None


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            ExperimentConfig(days=0.25, policies=("Uniform", "GreenHetero"))
        )

    def test_one_log_per_policy(self, result):
        assert set(result.logs) == {"Uniform", "GreenHetero"}
        assert len(result.log("Uniform")) == 24

    def test_unknown_policy_log_rejected(self, result):
        with pytest.raises(ConfigurationError):
            result.log("Manual")

    def test_gain_of_baseline_is_one(self, result):
        assert result.gain("Uniform") == pytest.approx(1.0)

    def test_gain_metrics(self, result):
        assert result.gain("GreenHetero", "throughput") > 0
        assert result.gain("GreenHetero", "epu") > 0
        with pytest.raises(ConfigurationError):
            result.gain("GreenHetero", "latency")

    def test_gains_table(self, result):
        table = result.gains_table()
        assert set(table) == {"Uniform", "GreenHetero"}

    def test_summary_fields(self, result):
        s = result.summary("GreenHetero")
        assert s.policy == "GreenHetero"
        assert s.mean_throughput > 0
        assert 0 <= s.mean_epu <= 1
        assert s.grid_energy_wh >= 0

    def test_insufficient_mask_shared(self, result):
        mask = result.insufficient_mask()
        assert mask.shape == (24,)

    def test_fit_kind_plumbed(self):
        res = run_experiment(
            ExperimentConfig(
                days=0.1, policies=("GreenHetero",), fit_kind=FitKind.LINEAR
            )
        )
        assert len(res.log("GreenHetero")) > 0


class TestExtendedPolicySet:
    def test_all_seven_policies_coexist(self):
        cfg = ExperimentConfig(
            days=0.1,
            policies=(
                "Uniform", "Manual", "GreenHetero-p", "GreenHetero-a",
                "GreenHetero", "GreenHetero+", "OnOff",
            ),
        )
        result = run_experiment(cfg)
        assert set(result.logs) == set(cfg.policies)
        for name in cfg.policies:
            assert len(result.log(name)) == cfg.build_clock().n_epochs
