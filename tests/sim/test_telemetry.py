"""Telemetry log and regime masks."""

import numpy as np
import pytest

from repro.core.controller import EpochRecord
from repro.core.sources import PowerCase
from repro.errors import SimulationError
from repro.power.sources import ChargeSource
from repro.sim.telemetry import TelemetryLog


def record(t=0.0, case=PowerCase.A, budget=1000.0, demand=1000.0, thr=100.0,
           epu=0.9, par=0.6, b2l=0.0, g2l=0.0, charge=0.0,
           charge_source=ChargeSource.NONE, soc=12000.0):
    return EpochRecord(
        time_s=t, case=case, budget_w=budget, demand_w=demand,
        renewable_w=500.0, load_fraction=1.0, ratios=(par, 1 - par),
        group_budgets_w=(par * budget, (1 - par) * budget),
        state_indices=(5, 5), throughput=thr, epu=epu,
        useful_power_w=epu * budget, renewable_to_load_w=0.0,
        battery_to_load_w=b2l, grid_to_load_w=g2l, charge_w=charge,
        charge_source=charge_source, battery_soc_wh=soc, curtailed_w=0.0,
        trained_pairs=(), brownout=False,
    )


@pytest.fixture
def log():
    out = TelemetryLog()
    out.append(record(t=0.0, case=PowerCase.C, budget=800.0, demand=1000.0, thr=50.0, epu=0.5, b2l=800.0))
    out.append(record(t=900.0, case=PowerCase.B, budget=1000.0, demand=1000.0, thr=90.0, epu=0.8, g2l=400.0, charge=100.0, charge_source=ChargeSource.GRID))
    out.append(record(t=1800.0, case=PowerCase.A, budget=1000.0, demand=1000.0, thr=100.0, epu=0.95))
    return out


class TestAppend:
    def test_ordering_enforced(self, log):
        with pytest.raises(SimulationError):
            log.append(record(t=900.0))

    def test_len_iter_getitem(self, log):
        assert len(log) == 3
        assert len(list(log)) == 3
        assert log[0].case is PowerCase.C
        assert len(log.records) == 3

    def test_empty_log_raises(self):
        with pytest.raises(SimulationError):
            TelemetryLog().throughputs


class TestSeries:
    def test_series_by_field(self, log):
        assert list(log.series("budget_w")) == [800.0, 1000.0, 1000.0]

    def test_named_series(self, log):
        assert list(log.throughputs) == [50.0, 90.0, 100.0]
        assert list(log.epus) == [0.5, 0.8, 0.95]
        assert list(log.pars) == [0.6, 0.6, 0.6]
        assert list(log.times_s) == [0.0, 900.0, 1800.0]

    def test_cases(self, log):
        assert log.cases == [PowerCase.C, PowerCase.B, PowerCase.A]


class TestMasks:
    def test_insufficient_is_not_case_a(self, log):
        assert list(log.insufficient_mask()) == [True, True, False]

    def test_budget_short_mask(self, log):
        assert list(log.budget_short_mask()) == [True, False, False]

    def test_case_mask(self, log):
        assert list(log.case_mask(PowerCase.B, PowerCase.C)) == [True, True, False]


class TestAggregates:
    def test_mean_throughput(self, log):
        assert log.mean_throughput() == pytest.approx(80.0)

    def test_masked_mean(self, log):
        mask = log.insufficient_mask()
        assert log.mean_throughput(mask) == pytest.approx(70.0)

    def test_empty_mask_is_zero(self, log):
        mask = np.zeros(3, dtype=bool)
        assert log.mean_epu(mask) == 0.0

    def test_bad_mask_shape_rejected(self, log):
        with pytest.raises(SimulationError):
            log.mean_epu(np.ones(5, dtype=bool))

    def test_grid_energy_includes_charging(self, log):
        # 400 W load + 100 W charging for one 900 s epoch.
        assert log.grid_energy_wh(900.0) == pytest.approx(500.0 * 900.0 / 3600.0)

    def test_discharge_hours(self, log):
        assert log.discharge_hours(900.0) == pytest.approx(0.25)

    def test_mean_par(self, log):
        assert log.mean_par() == pytest.approx(0.6)


class TestCsvExport:
    def test_round_trippable_csv(self, log, tmp_path):
        import csv as csv_mod

        path = tmp_path / "telemetry.csv"
        log.to_csv(path)
        with open(path) as f:
            rows = list(csv_mod.DictReader(f))
        assert len(rows) == 3
        assert rows[0]["case"] == "C"
        assert float(rows[0]["budget_w"]) == 800.0
        assert rows[1]["charge_source"] == "grid"
        assert {"par_0", "par_1"} <= set(rows[0])

    def test_empty_log_rejected(self, tmp_path):
        from repro.errors import SimulationError
        from repro.sim.telemetry import TelemetryLog

        with pytest.raises(SimulationError):
            TelemetryLog().to_csv(tmp_path / "x.csv")


class TestJsonlExport:
    def test_one_object_per_epoch(self, log, tmp_path):
        import json

        path = tmp_path / "telemetry.jsonl"
        log.to_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0]["case"] == "C"
        assert lines[0]["budget_w"] == 800.0
        assert lines[1]["charge_source"] == "grid"
        assert lines[0]["ratios"] == [0.6, 0.4]

    def test_extra_keys_merged_into_every_line(self, log, tmp_path):
        import json

        path = tmp_path / "telemetry.jsonl"
        log.to_jsonl(path, extra={"rack": "rack0", "policy": "GreenHetero"})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(line["rack"] == "rack0" for line in lines)
        assert all(line["policy"] == "GreenHetero" for line in lines)

    def test_matches_record_to_dict(self, log, tmp_path):
        import json

        from repro.sim.telemetry import record_to_dict

        path = tmp_path / "telemetry.jsonl"
        log.to_jsonl(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == record_to_dict(list(log)[0])

    def test_empty_log_rejected(self, tmp_path):
        from repro.errors import SimulationError
        from repro.sim.telemetry import TelemetryLog

        with pytest.raises(SimulationError):
            TelemetryLog().to_jsonl(tmp_path / "x.jsonl")


class TestRecordToDict:
    def test_json_ready(self, log):
        import json

        from repro.sim.telemetry import record_to_dict

        data = record_to_dict(list(log)[0])
        json.dumps(data)  # everything serializable
        assert data["case"] == "C"
        assert data["trained_pairs"] == []
        assert isinstance(data["ratios"], list)

    def test_powered_counts_listified(self):
        from dataclasses import replace

        from repro.sim.telemetry import record_to_dict

        data = record_to_dict(replace(record(), powered_counts=(3, 5)))
        assert data["powered_counts"] == [3, 5]
