"""Parallel experiment runner: fan-out semantics and bit-identity."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import run_experiment, run_experiments

#: Small but real: two policies over a quarter day = 2 x 24 epochs.
CONFIG = ExperimentConfig(days=0.25, policies=("Uniform", "GreenHetero"), seed=7)


class TestParallelBitIdentity:
    def test_parallel_matches_serial_exactly(self):
        serial = run_experiment(CONFIG, jobs=1)
        parallel = run_experiment(CONFIG, jobs=4)
        for name in CONFIG.policies:
            # EpochRecords are frozen dataclasses: == is field-exact, so
            # this pins every telemetry channel bit-for-bit.
            assert list(serial.log(name)) == list(parallel.log(name))

    def test_policy_order_preserved(self):
        result = run_experiment(CONFIG, jobs=4)
        assert tuple(result.logs) == CONFIG.policies

    def test_matches_experiment_module_entry_point(self):
        from repro.sim.experiment import run_experiment as experiment_run

        a = experiment_run(CONFIG, jobs=2)
        b = run_experiment(CONFIG, jobs=1)
        for name in CONFIG.policies:
            assert list(a.log(name)) == list(b.log(name))


class TestBatch:
    def test_batch_results_in_input_order(self):
        configs = [
            ExperimentConfig(days=0.1, policies=("Uniform",), seed=1),
            ExperimentConfig(days=0.1, policies=("Uniform",), seed=2),
        ]
        results = run_experiments(configs, jobs=2)
        assert [r.config.seed for r in results] == [1, 2]
        # Different seeds, different noise: the runs must not be shared.
        a = results[0].log("Uniform")
        b = results[1].log("Uniform")
        assert list(a) != list(b)

    def test_batch_matches_individual_runs(self):
        configs = [
            ExperimentConfig(days=0.1, policies=("Uniform",), seed=1),
            ExperimentConfig(days=0.1, policies=("Uniform", "GreenHetero-p"), seed=2),
        ]
        batch = run_experiments(configs, jobs=3)
        for config, result in zip(configs, batch):
            solo = run_experiment(config, jobs=1)
            for name in config.policies:
                assert list(solo.log(name)) == list(result.log(name))

    def test_empty_batch(self):
        assert run_experiments([], jobs=4) == []

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(CONFIG, jobs=0)
        with pytest.raises(ConfigurationError):
            run_experiments([CONFIG], jobs=-2)

    def test_jobs_none_uses_available_cores(self):
        result = run_experiment(
            ExperimentConfig(days=0.1, policies=("Uniform",), seed=3), jobs=None
        )
        assert len(result.log("Uniform")) > 0
