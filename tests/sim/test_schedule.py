"""Workload schedules and their engine integration."""

import pytest

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.schedule import WorkloadPhase, WorkloadSchedule
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def day_night():
    return WorkloadSchedule(
        [
            WorkloadPhase(8.0, "SPECjbb"),
            WorkloadPhase(20.0, "Streamcluster"),
        ]
    )


class TestSchedule:
    def test_daytime_phase(self, day_night):
        assert day_night.workload_at(10 * 3600.0) == "SPECjbb"
        assert day_night.workload_at(19.9 * 3600.0) == "SPECjbb"

    def test_evening_phase(self, day_night):
        assert day_night.workload_at(21 * 3600.0) == "Streamcluster"

    def test_overnight_wrap(self, day_night):
        # 03:00 is before the first phase start: the latest phase wraps.
        assert day_night.workload_at(3 * 3600.0) == "Streamcluster"

    def test_multi_day_cyclic(self, day_night):
        t = 2 * SECONDS_PER_DAY + 10 * 3600.0
        assert day_night.workload_at(t) == "SPECjbb"

    def test_single_phase_always_active(self):
        schedule = WorkloadSchedule([WorkloadPhase(6.0, "Mcf")])
        for hour in (0, 5, 6, 12, 23):
            assert schedule.workload_at(hour * 3600.0) == "Mcf"

    def test_per_group_spec(self):
        schedule = WorkloadSchedule(
            [WorkloadPhase(0.0, ["Streamcluster", "Memcached"])]
        )
        assert schedule.workload_at(0.0) == ["Streamcluster", "Memcached"]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSchedule([])

    def test_duplicate_start_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSchedule([WorkloadPhase(8.0, "a"), WorkloadPhase(8.0, "b")])

    def test_bad_hour_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadPhase(24.0, "SPECjbb")


class TestEngineIntegration:
    def _sim(self, schedule, hours=24.0):
        rack = Rack([("E5-2620", 3), ("i5-4460", 3)], "SPECjbb")
        clock = SimClock(start_s=SECONDS_PER_DAY, duration_s=hours * 3600.0)
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"), rack=rack, clock=clock, seed=27
        )
        sim.workload_schedule = schedule
        return sim

    def test_workload_rotates_over_the_day(self, day_night):
        sim = self._sim(day_night)
        sim.run()
        db = sim.controller.scheduler.database
        # Both phases' pairs were profiled on their first arrival.
        assert db.has("E5-2620", "SPECjbb")
        assert db.has("E5-2620", "Streamcluster")
        assert db.has("i5-4460", "Streamcluster")

    def test_rack_workload_matches_schedule_at_end(self, day_night):
        sim = self._sim(day_night, hours=22.0)  # ends at 22:00: batch phase
        sim.run()
        assert sim.controller.rack.groups[0].workload.name == "Streamcluster"

    def test_returning_phase_does_not_retrain(self, day_night):
        sim = self._sim(day_night, hours=36.0)  # wraps into day 2's SPECjbb
        log = sim.run()
        trainings = [r.trained_pairs for r in log if r.trained_pairs]
        # Exactly two training bursts: one per distinct workload.
        assert len(trainings) == 2

    def test_load_generator_tracks_workload_kind(self, day_night):
        sim = self._sim(day_night, hours=24.0)
        log = sim.run()
        hours = ((log.times_s % SECONDS_PER_DAY) / 3600.0)
        loads = log.series("load_fraction")
        batch = (hours < 8.0) | (hours >= 20.0)
        # Batch phases saturate; interactive phases follow the pattern.
        assert (loads[batch] == 1.0).all()
        assert loads[~batch].std() > 0.0
