"""Simulation engine assembly and execution."""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.traces.nrel import Weather
from repro.units import SECONDS_PER_DAY


def assemble(policy="GreenHetero", hours=2.0, **kwargs):
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], kwargs.pop("workload", "SPECjbb"))
    clock = SimClock(start_s=SECONDS_PER_DAY, duration_s=hours * 3600.0)
    return Simulation.assemble(
        policy=make_policy(policy), rack=rack, clock=clock, seed=11, **kwargs
    )


class TestAssembly:
    def test_default_stack(self):
        sim = assemble()
        assert sim.controller.pdu.grid.budget_w > 0
        assert sim.controller.pdu.battery.is_full
        assert sim.clock.n_epochs == 8

    def test_solar_sized_to_rack(self):
        sim = assemble(solar_scale=1.5)
        assert sim.controller.pdu.solar.rated_peak_w == pytest.approx(
            1.5 * sim.controller.rack.max_draw_w
        )

    def test_grid_budget_override(self):
        sim = assemble(grid_budget_w=777.0)
        assert sim.controller.pdu.grid.budget_w == 777.0

    def test_grid_budget_default_underprovisioned(self):
        sim = assemble(grid_budget_w=None)
        assert sim.controller.pdu.grid.budget_w < sim.controller.rack.max_draw_w

    def test_predictors_pretrained(self):
        sim = assemble()
        assert sim.controller.scheduler.renewable_predictor.ready
        assert sim.controller.scheduler.demand_predictor.ready

    def test_bad_solar_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            assemble(solar_scale=0.0)

    def test_constrained_mode_disables_grid(self):
        sim = assemble(supply_fractions=(0.6, 0.8))
        assert sim.controller.pdu.grid.budget_w == 0.0
        assert sim.controller.budget_override is not None

    def test_bad_supply_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            assemble(supply_fractions=(0.5, -0.1))
        with pytest.raises(ConfigurationError):
            assemble(supply_fractions=())


class TestExecution:
    def test_run_fills_log(self):
        sim = assemble()
        log = sim.run()
        assert len(log) == sim.clock.n_epochs

    def test_step_incremental(self):
        sim = assemble(hours=0.5)
        sim.step()
        assert len(sim.log) == 1
        sim.step()
        assert len(sim.log) == 2
        with pytest.raises(ConfigurationError):
            sim.step()

    def test_deterministic_per_seed(self):
        a = assemble().run()
        b = assemble().run()
        assert np.allclose(a.throughputs, b.throughputs)
        assert np.allclose(a.epus, b.epus)

    def test_constrained_mode_budget_cycles(self):
        sim = assemble(supply_fractions=(0.5, 0.9), hours=1.0)
        log = sim.run()
        envelope = sim.controller.rack.envelope_w
        assert log[0].budget_w <= 0.5 * envelope + 1e-6
        assert log[1].budget_w > log[0].budget_w

    def test_budget_reference_used(self):
        sim = assemble(
            supply_fractions=(0.5,), budget_reference_w=800.0, hours=0.5,
            workload="Streamcluster",
        )
        log = sim.run()
        assert log[0].budget_w == pytest.approx(400.0)

    def test_interactive_load_varies_with_diurnal_pattern(self):
        sim = assemble(hours=8.0, diurnal_load=True)
        log = sim.run()
        loads = log.series("load_fraction")
        assert loads.std() > 0.0

    def test_batch_load_constant(self):
        sim = assemble(hours=2.0, workload="Streamcluster")
        log = sim.run()
        assert np.allclose(log.series("load_fraction"), 1.0)


class TestSupplyFractionConflicts:
    def test_caller_battery_rejected(self):
        from repro.power.battery import BatteryBank

        with pytest.raises(ConfigurationError):
            assemble(supply_fractions=(0.6, 0.8), battery=BatteryBank())

    def test_caller_grid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            assemble(supply_fractions=(0.6, 0.8), grid_budget_w=500.0)

    def test_battery_and_grid_still_accepted_alone(self):
        from repro.power.battery import BatteryBank

        sim = assemble(battery=BatteryBank(count=3), grid_budget_w=500.0)
        assert sim.controller.pdu.grid.budget_w == 500.0


class TestStepReturnValue:
    def test_step_returns_the_epoch_record(self):
        from repro.core.controller import EpochRecord

        sim = assemble(hours=0.5)
        record = sim.step()
        assert isinstance(record, EpochRecord)
        assert record is sim.log[0]
        assert record.time_s == sim.clock.start_s

    def test_run_completes_a_partially_stepped_simulation(self):
        stepped = assemble()
        first = stepped.step()
        log = stepped.run()
        assert len(log) == stepped.clock.n_epochs
        # One shared per-epoch code path: step-then-run equals run.
        reference = assemble().run()
        assert log[0] == first
        assert list(log) == list(reference)

    def test_run_on_finished_simulation_is_a_no_op(self):
        sim = assemble(hours=0.5)
        log = sim.run()
        assert list(sim.run()) == list(log)


class TestMixedRackLeadWorkload:
    def test_interactive_group_drives_the_offered_load(self):
        # Batch group first: the generator must still follow the
        # interactive group's diurnal request stream, not group 0's
        # saturating batch load.
        rack = Rack(
            [("E5-2620", 5), ("i5-4460", 5)], ["Streamcluster", "Memcached"]
        )
        clock = SimClock(start_s=SECONDS_PER_DAY, duration_s=8 * 3600.0)
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"), rack=rack, clock=clock, seed=11
        )
        assert sim.load_generator.workload.name == "Memcached"
        log = sim.run()
        assert log.series("load_fraction").std() > 0.0

    def test_all_batch_rack_falls_back_to_group_zero(self):
        rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "Streamcluster")
        clock = SimClock(start_s=SECONDS_PER_DAY, duration_s=2 * 3600.0)
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"), rack=rack, clock=clock, seed=11
        )
        assert sim.load_generator.workload.name == "Streamcluster"
        assert np.allclose(sim.run().series("load_fraction"), 1.0)
