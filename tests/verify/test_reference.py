"""Strict-mode reference simulations: the end-to-end acceptance gate."""

import pytest

from repro.verify import run_strict_reference
from repro.verify.reference import REFERENCE_MODES


class TestStrictReference:
    def test_both_supply_regimes_run_clean(self):
        results = run_strict_reference(n_epochs=8, seed=2021)
        assert [r.mode for r in results] == list(REFERENCE_MODES)
        for result in results:
            assert result.passed, result.summary()
            assert result.n_epochs == 8
            assert result.audit["epochs_audited"] == 8

    def test_low_trace_also_clean(self):
        from repro.traces.nrel import Weather

        results = run_strict_reference(
            n_epochs=6, weather=Weather.LOW, seed=5
        )
        assert all(r.passed for r in results)

    def test_summary_mentions_strictness(self):
        (result, _) = run_strict_reference(n_epochs=2, seed=1)
        assert "--strict" in result.summary()
        assert "clean" in result.summary()
