"""The differential solver corpus: the regression gate for the solver."""

import random

import pytest

from repro.core.solver import FEASIBILITY_SLACK_W, PARSolver
from repro.verify import run_differential
from repro.verify.differential import check_case, random_case


class TestCorpus:
    def test_regression_corpus_passes(self):
        # The acceptance-criteria corpus: 200 deterministic seeded cases.
        report = run_differential(n_cases=200, seed=0)
        assert report.passed, report.summary()
        assert report.n_cases == 200

    def test_corpus_is_deterministic(self):
        a = run_differential(n_cases=5, seed=3)
        b = run_differential(n_cases=5, seed=3)
        assert a == b

    def test_alternate_seed_also_clean(self):
        report = run_differential(n_cases=25, seed=99)
        assert report.passed, report.summary()


class TestCaseGeneration:
    def test_random_case_budget_clears_power_on(self):
        rng = random.Random(11)
        for _ in range(20):
            groups, budget = random_case(rng)
            power_on = sum(
                g.count * g.fit.min_power_w * 1.05 for g in groups
            )
            assert budget >= 1.4 * power_on - 1e-9

    def test_concavity_of_generated_fits(self):
        rng = random.Random(12)
        for _ in range(20):
            groups, _ = random_case(rng)
            for g in groups:
                l, m, _ = g.fit.coefficients
                assert l < 0  # strictly concave
                vertex = -m / (2.0 * l)
                assert vertex >= g.fit.max_power_w - 1e-9  # increasing


class TestCheckCase:
    def test_detects_an_infeasible_mechanism(self):
        import dataclasses

        rng = random.Random(21)
        groups, budget = random_case(rng)

        class OverdrawingSolver(PARSolver):
            def solve_via(self, groups, total_power_w, method):
                # A broken mechanism: hands out twice what it solved for.
                sol = super().solve_via(groups, total_power_w, method)
                return dataclasses.replace(
                    sol,
                    per_server_w=tuple(2.0 * p for p in sol.per_server_w),
                )

        outcome = check_case(
            OverdrawingSolver(cache_size=0), groups, budget, case_seed=21
        )
        assert not outcome.ok
        assert any(
            "infeasible" in f or "plateau" in f for f in outcome.failures
        )

    def test_solutions_stay_within_budget(self):
        solver = PARSolver(cache_size=0)
        rng = random.Random(31)
        for i in range(10):
            groups, budget = random_case(
                rng, safety_margin=solver.safety_margin
            )
            for method in PARSolver.METHODS:
                sol = solver.solve_via(groups, budget, method)
                total = sum(
                    g.count * p for g, p in zip(groups, sol.per_server_w)
                )
                assert total <= budget + FEASIBILITY_SLACK_W
