"""The invariant auditor: clean passes and per-invariant negative paths."""

import dataclasses

import pytest

from repro.core.policies import make_policy
from repro.errors import InvariantViolation
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.traces.nrel import Weather
from repro.units import EPOCH_SECONDS
from repro.verify import AuditContext, InvariantAuditor


@pytest.fixture(scope="module")
def sim():
    """A short completed run; its log supplies realistic records."""
    simulation = Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb"),
        weather=Weather.HIGH,
        clock=SimClock(duration_s=6 * EPOCH_SECONDS),
        seed=7,
    )
    simulation.run()
    return simulation


@pytest.fixture(scope="module")
def record(sim):
    """A solver epoch (carries projected_perf, so fit-bounds applies)."""
    for r in sim.log:
        if r.projected_perf is not None:
            return r
    pytest.fail("no solver epoch in the reference run")


def make_ctx(sim, record, soc_before=None, gating_active=False):
    """An AuditContext whose soc_before is consistent with the record."""
    if soc_before is None:
        battery = sim.controller.pdu.battery
        hours = sim.clock.epoch_s / 3600.0
        expected = (
            record.charge_w * hours * battery.efficiency
            - record.battery_to_load_w * hours
        )
        soc_before = record.battery_soc_wh - expected
    return AuditContext(
        record=record,
        controller=sim.controller,
        epoch_s=sim.clock.epoch_s,
        soc_before_wh=soc_before,
        gating_active=gating_active,
    )


def checks_fired(sim, record, **corrupt):
    """Audit a corrupted copy of ``record``; return the check names."""
    bad = dataclasses.replace(record, **corrupt)
    auditor = InvariantAuditor()
    found = auditor.audit(make_ctx(sim, bad))
    return {v.check for v in found}


class TestCleanEpochs:
    def test_every_logged_epoch_audits_clean(self, sim, record):
        auditor = InvariantAuditor(strict=True)
        assert auditor.audit(make_ctx(sim, record)) == ()

    def test_engine_wired_auditor_saw_every_epoch(self, sim):
        assert sim.auditor is not None
        assert sim.auditor.epochs_audited == len(sim.log)
        assert sim.auditor.violation_count == 0


class TestNegativePaths:
    def test_renewable_to_load_exceeding_supply(self, sim, record):
        fired = checks_fired(
            sim, record, renewable_to_load_w=record.renewable_w + 50.0
        )
        assert "energy-conservation" in fired

    def test_overcounted_curtailment(self, sim, record):
        fired = checks_fired(
            sim, record, curtailed_w=record.renewable_w + 50.0
        )
        assert "energy-conservation" in fired

    def test_unaccounted_renewable(self, sim, record):
        inflated = (
            record.renewable_to_load_w
            + record.curtailed_w
            + record.charge_w
            + 50.0
        )
        fired = checks_fired(sim, record, renewable_w=inflated)
        assert "energy-conservation" in fired

    def test_useful_power_exceeding_delivery(self, sim, record):
        delivered = (
            record.renewable_to_load_w
            + record.battery_to_load_w
            + record.grid_to_load_w
        )
        fired = checks_fired(sim, record, useful_power_w=delivered + 50.0)
        assert "energy-conservation" in fired

    def test_soc_delta_mismatch(self, sim, record):
        auditor = InvariantAuditor()
        found = auditor.audit(
            make_ctx(sim, record, soc_before=record.battery_soc_wh + 100.0)
        )
        assert "battery-soc" in {v.check for v in found}

    def test_soc_below_dod_floor(self, sim, record):
        floor = sim.controller.pdu.battery.floor_wh
        fired = checks_fired(sim, record, battery_soc_wh=floor - 10.0)
        assert "soc-floor" in fired

    def test_soc_above_capacity(self, sim, record):
        capacity = sim.controller.pdu.battery.capacity_wh
        fired = checks_fired(sim, record, battery_soc_wh=capacity + 10.0)
        assert "soc-floor" in fired

    def test_grid_overdraw(self, sim, record):
        budget = sim.controller.pdu.grid.budget_w
        fired = checks_fired(sim, record, grid_to_load_w=budget + 10.0)
        assert "grid-budget" in fired

    def test_ratio_sum_above_one(self, sim, record):
        fired = checks_fired(sim, record, ratios=(0.9, 0.9))
        assert "ratios" in fired

    def test_negative_ratio(self, sim, record):
        fired = checks_fired(sim, record, ratios=(-0.1, 0.5))
        assert "ratios" in fired

    def test_epu_above_one(self, sim, record):
        fired = checks_fired(sim, record, epu=1.5)
        assert "epu-range" in fired

    def test_negative_throughput(self, sim, record):
        fired = checks_fired(sim, record, throughput=-1.0)
        assert "epu-range" in fired

    def test_allocation_above_fit_peak(self, sim, record):
        groups = sim.controller.rack.groups
        database = sim.controller.scheduler.database
        inflated = tuple(
            g.count * database.projection(g.key).max_power_w * 2.0
            for g in groups
        )
        fired = checks_fired(sim, record, group_budgets_w=inflated)
        assert "fit-bounds" in fired

    def test_allocation_below_power_on(self, sim, record):
        groups = sim.controller.rack.groups
        database = sim.controller.scheduler.database
        starved = tuple(
            g.count * database.projection(g.key).min_power_w * 0.5
            for g in groups
        )
        fired = checks_fired(sim, record, group_budgets_w=starved)
        assert "fit-bounds" in fired

    def test_gating_waives_the_lower_fit_bound(self, sim, record):
        groups = sim.controller.rack.groups
        database = sim.controller.scheduler.database
        starved = dataclasses.replace(
            record,
            group_budgets_w=tuple(
                g.count * database.projection(g.key).min_power_w * 0.5
                for g in groups
            ),
        )
        found = InvariantAuditor().audit(
            make_ctx(sim, starved, gating_active=True)
        )
        assert "fit-bounds" not in {v.check for v in found}

    def test_fallback_epochs_skip_fit_bounds(self, sim, record):
        # No projected_perf => uniform fallback plan, no fit semantics.
        starved = dataclasses.replace(
            record,
            projected_perf=None,
            group_budgets_w=(1.0,) * len(record.group_budgets_w),
        )
        found = InvariantAuditor().audit(make_ctx(sim, starved))
        assert "fit-bounds" not in {v.check for v in found}


class TestModes:
    def test_strict_raises_with_the_violations_attached(self, sim, record):
        auditor = InvariantAuditor(strict=True)
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.audit(
                make_ctx(
                    sim,
                    dataclasses.replace(record, epu=1.5),
                )
            )
        assert excinfo.value.violations
        assert excinfo.value.violations[0].check == "epu-range"

    def test_counting_mode_accumulates(self, sim, record):
        auditor = InvariantAuditor(strict=False)
        bad = dataclasses.replace(record, epu=1.5, throughput=-1.0)
        auditor.audit(make_ctx(sim, bad))
        auditor.audit(make_ctx(sim, record))
        summary = auditor.summary()
        assert summary["epochs_audited"] == 2
        assert summary["violations"] == 2
        assert summary["by_check"] == {"epu-range": 2}
        assert summary["strict"] is False

    def test_custom_check_subset(self, sim, record):
        from repro.verify.auditor import check_epu_range

        auditor = InvariantAuditor(checks=[check_epu_range])
        bad = dataclasses.replace(record, ratios=(0.9, 0.9), epu=1.5)
        found = auditor.audit(make_ctx(sim, bad))
        assert {v.check for v in found} == {"epu-range"}
