"""Checkpoint round-trip fuzzing for serve/shift state."""

from repro.verify import fuzz_round_trips


class TestFuzz:
    def test_round_trips_are_fixed_points(self):
        report = fuzz_round_trips(n_cases=20, seed=1)
        assert report.passed, report.summary()

    def test_deterministic_for_a_seed(self):
        a = fuzz_round_trips(n_cases=5, seed=4)
        b = fuzz_round_trips(n_cases=5, seed=4)
        assert a == b
