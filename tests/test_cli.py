"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policies", "RoundRobin"])


class TestRun:
    def test_run_prints_policy_table(self, capsys):
        code = main(
            [
                "run", "--days", "0.125",
                "--policies", "Uniform", "GreenHetero",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "GreenHetero" in out
        assert "gain" in out

    def test_run_with_sustainability(self, capsys):
        code = main(
            [
                "run", "--days", "0.125",
                "--policies", "GreenHetero", "--sustainability",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CO2" in out

    def test_run_custom_platforms(self, capsys):
        code = main(
            [
                "run", "--days", "0.125", "--platforms", "E5-2650:2,i7-8700K:2",
                "--policies", "Uniform", "GreenHetero", "--workload", "Canneal",
            ]
        )
        assert code == 0

    def test_bad_platform_is_clean_error(self, capsys):
        code = main(
            ["run", "--days", "0.125", "--platforms", "Epyc:2",
             "--policies", "Uniform"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err


class TestSweep:
    def test_sweep_two_workloads(self, capsys):
        code = main(
            [
                "sweep", "--workloads", "Memcached", "Streamcluster",
                "--policies", "Uniform", "GreenHetero",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Memcached" in out and "Streamcluster" in out


class TestCaseStudy:
    def test_default_case_study(self, capsys):
        code = main(["case-study", "--step", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal PAR" in out
        assert "E5-2620" in out


class TestCombos:
    def test_single_combo(self, capsys):
        code = main(["combos", "--names", "Comb2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Comb2" in out

    def test_unknown_combo_is_clean_error(self, capsys):
        code = main(["combos", "--names", "Comb17"])
        assert code == 2


class TestTrace:
    def test_writes_csv(self, tmp_path, capsys):
        out_file = tmp_path / "trace.csv"
        code = main(["trace", "--days", "1", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        header = out_file.read_text().splitlines()[0]
        assert header == "time_s,ghi_w_m2"


class TestValidate:
    def test_all_anchors_hold(self, capsys):
        code = main(["validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "7/7 anchors hold" in out
        assert "FAIL" not in out


class TestExport:
    def test_run_exports_csv(self, tmp_path, capsys):
        out_file = tmp_path / "telemetry.csv"
        code = main(
            [
                "run", "--days", "0.125", "--policies", "Uniform", "GreenHetero",
                "--export", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        assert "case" in out_file.read_text().splitlines()[0]


class TestExtensionPolicies:
    def test_extension_policies_selectable(self, capsys):
        code = main(
            [
                "run", "--days", "0.125",
                "--policies", "Uniform", "GreenHetero+", "OnOff",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "GreenHetero+" in out
        assert "OnOff" in out


class TestServeCommands:
    def test_serve_args_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--racks", "2",
                "--checkpoint", "/tmp/ckpt", "--shared-grid-w", "1500",
            ]
        )
        assert args.port == 0
        assert args.racks == 2
        assert args.shared_grid == 1500.0
        assert args.func.__name__ == "cmd_serve"

    def test_serve_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "RoundRobin"])

    def test_loadgen_args_parse(self):
        args = build_parser().parse_args(
            ["loadgen", "--port", "7000", "--requests", "50", "--out", "b.json"]
        )
        assert args.port == 7000
        assert args.requests == 50
        assert args.func.__name__ == "cmd_loadgen"

    def test_loadgen_against_no_daemon_is_clean_error(self, capsys):
        # Port 1 is never listening; the failure must be a clean exit code,
        # not a traceback.
        code = main(["loadgen", "--port", "1", "--requests", "1"])
        assert code == 2


class TestVerify:
    def test_verify_passes(self, capsys):
        code = main(
            ["verify", "--cases", "5", "--fuzz-cases", "2", "--epochs", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: PASS" in out
        assert "reference[default]" in out
        assert "reference[supply_fractions]" in out
        assert "differential" in out
        assert "fuzz" in out

    def test_verify_args_parse(self):
        args = build_parser().parse_args(
            ["verify", "--cases", "10", "--fuzz-cases", "3", "--seed", "9"]
        )
        assert args.cases == 10
        assert args.fuzz_cases == 3
        assert args.seed == 9
        assert args.func.__name__ == "cmd_verify"

    def test_run_accepts_strict(self, capsys):
        code = main(
            [
                "run", "--days", "0.125",
                "--policies", "GreenHetero", "--strict",
            ]
        )
        assert code == 0

    def test_sweep_accepts_strict(self):
        args = build_parser().parse_args(["sweep", "--strict"])
        assert args.strict is True
