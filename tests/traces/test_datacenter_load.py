"""Diurnal rack-load pattern ([13]'s typical datacenter demand)."""

import pytest

from repro.errors import TraceError
from repro.traces.datacenter_load import DiurnalLoadPattern
from repro.units import SECONDS_PER_DAY, hours


@pytest.fixture
def pattern():
    return DiurnalLoadPattern()


class TestShape:
    def test_bounded(self, pattern):
        for h in range(0, 24):
            v = pattern.at(hours(h))
            assert pattern.trough - 1e-9 <= v <= 1.0 + 1e-9

    def test_peak_is_one(self, pattern):
        peak_hour = pattern.daily_peak_hour()
        assert pattern.at(hours(peak_hour)) == pytest.approx(1.0, abs=1e-3)

    def test_evening_peak(self, pattern):
        # The evening bump is the daily maximum, per the paper's Fig. 6.
        assert 18.0 <= pattern.daily_peak_hour() <= 22.0

    def test_overnight_trough(self, pattern):
        assert pattern.at(hours(3)) < 0.65

    def test_morning_activity(self, pattern):
        assert pattern.at(hours(10)) > pattern.at(hours(3))

    def test_wraps_daily(self, pattern):
        assert pattern.at(hours(5)) == pytest.approx(
            pattern.at(hours(5) + SECONDS_PER_DAY)
        )

    def test_continuous_at_midnight(self, pattern):
        before = pattern.at(hours(23.99))
        after = pattern.at(hours(0.01))
        assert abs(before - after) < 0.01

    def test_callable(self, pattern):
        assert pattern(hours(12)) == pattern.at(hours(12))


class TestValidation:
    def test_bad_trough(self):
        with pytest.raises(TraceError):
            DiurnalLoadPattern(trough=1.0)

    def test_bad_width(self):
        with pytest.raises(TraceError):
            DiurnalLoadPattern(morning_width_h=0.0)

    def test_bad_weight(self):
        with pytest.raises(TraceError):
            DiurnalLoadPattern(evening_weight=-1.0)

    def test_custom_trough(self):
        pattern = DiurnalLoadPattern(trough=0.3)
        assert min(pattern.at(hours(h)) for h in range(24)) >= 0.3 - 1e-9


class TestWeeklyStructure:
    def test_default_has_no_weekend_dip(self, pattern):
        from repro.units import SECONDS_PER_DAY

        weekday = pattern.at(2 * SECONDS_PER_DAY + 12 * 3600.0)
        weekend = pattern.at(5 * SECONDS_PER_DAY + 12 * 3600.0)
        assert weekday == pytest.approx(weekend)

    def test_weekend_scale_applies_on_days_5_and_6(self):
        from repro.units import SECONDS_PER_DAY

        p = DiurnalLoadPattern(weekend_scale=0.7)
        noon = 12 * 3600.0
        weekday = p.at(2 * SECONDS_PER_DAY + noon)
        saturday = p.at(5 * SECONDS_PER_DAY + noon)
        sunday = p.at(6 * SECONDS_PER_DAY + noon)
        monday = p.at(7 * SECONDS_PER_DAY + noon)
        assert saturday == pytest.approx(0.7 * weekday)
        assert sunday == pytest.approx(0.7 * weekday)
        assert monday == pytest.approx(weekday)

    def test_bad_weekend_scale_rejected(self):
        with pytest.raises(TraceError):
            DiurnalLoadPattern(weekend_scale=0.0)
        with pytest.raises(TraceError):
            DiurnalLoadPattern(weekend_scale=1.2)
