"""Synthetic NREL-style irradiance traces."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.nrel import (
    GHI_PEAK,
    IrradianceTrace,
    Weather,
    clear_sky_irradiance,
    load_irradiance_csv,
    synthesize_irradiance,
)
from repro.units import SECONDS_PER_DAY, hours


class TestClearSky:
    def test_zero_at_night(self):
        assert clear_sky_irradiance(hours(0)) == 0.0
        assert clear_sky_irradiance(hours(5.9)) == 0.0
        assert clear_sky_irradiance(hours(18.1)) == 0.0

    def test_peak_at_noon(self):
        noon = clear_sky_irradiance(hours(12))
        assert noon == pytest.approx(GHI_PEAK)
        assert clear_sky_irradiance(hours(9)) < noon
        assert clear_sky_irradiance(hours(15)) < noon

    def test_symmetric_about_noon(self):
        assert clear_sky_irradiance(hours(10)) == pytest.approx(
            clear_sky_irradiance(hours(14))
        )

    def test_wraps_daily(self):
        assert clear_sky_irradiance(hours(12)) == pytest.approx(
            clear_sky_irradiance(hours(36))
        )


class TestSynthesis:
    def test_deterministic_per_seed(self):
        a = synthesize_irradiance(days=1, seed=42)
        b = synthesize_irradiance(days=1, seed=42)
        assert np.array_equal(a.values_w_m2, b.values_w_m2)

    def test_seeds_differ(self):
        a = synthesize_irradiance(days=1, seed=1)
        b = synthesize_irradiance(days=1, seed=2)
        assert not np.array_equal(a.values_w_m2, b.values_w_m2)

    def test_one_week_at_15_minutes(self):
        trace = synthesize_irradiance(days=7)
        assert len(trace.times_s) == 7 * 96
        assert trace.interval_s == 900.0

    def test_never_exceeds_clear_sky(self):
        trace = synthesize_irradiance(days=3, weather=Weather.HIGH, seed=3)
        for t, v in zip(trace.times_s, trace.values_w_m2):
            assert v <= clear_sky_irradiance(t) + 1e-9

    def test_high_outproduces_low(self):
        high = synthesize_irradiance(days=7, weather=Weather.HIGH, seed=4)
        low = synthesize_irradiance(days=7, weather=Weather.LOW, seed=4)
        assert high.mean_w_m2() > 1.3 * low.mean_w_m2()

    def test_low_trace_more_variable(self):
        # Fig. 11: "the power supply ... becomes more fluctuated".
        high = synthesize_irradiance(days=7, weather=Weather.HIGH, seed=4)
        low = synthesize_irradiance(days=7, weather=Weather.LOW, seed=4)

        def daytime_cv(trace):
            day = trace.values_w_m2[trace.values_w_m2 > 1.0]
            clear = np.array(
                [clear_sky_irradiance(t) for t, v in zip(trace.times_s, trace.values_w_m2) if v > 1.0]
            )
            ratio = day / clear
            return ratio.std()

        assert daytime_cv(low) > daytime_cv(high)

    def test_bad_days_rejected(self):
        with pytest.raises(TraceError):
            synthesize_irradiance(days=0)


class TestTraceContainer:
    def test_at_zero_order_hold(self):
        trace = synthesize_irradiance(days=1, seed=9)
        assert trace.at(0.0) == trace.values_w_m2[0]
        assert trace.at(450.0) == trace.values_w_m2[0]
        assert trace.at(900.0) == trace.values_w_m2[1]

    def test_at_wraps_past_end(self):
        trace = synthesize_irradiance(days=1, seed=9)
        assert trace.at(SECONDS_PER_DAY + 450.0) == trace.at(450.0)

    def test_at_wraps_negative(self):
        trace = synthesize_irradiance(days=1, seed=9)
        assert trace.at(-900.0) == trace.at(SECONDS_PER_DAY - 900.0)

    def test_window(self):
        trace = synthesize_irradiance(days=2, seed=9)
        day2 = trace.window(SECONDS_PER_DAY, 2 * SECONDS_PER_DAY)
        assert len(day2.times_s) == 96

    def test_window_too_small_rejected(self):
        trace = synthesize_irradiance(days=1, seed=9)
        with pytest.raises(TraceError):
            trace.window(0.0, 900.0)

    def test_validation_irregular_sampling(self):
        with pytest.raises(TraceError):
            IrradianceTrace(np.array([0.0, 900.0, 2000.0]), np.zeros(3))

    def test_validation_negative_values(self):
        with pytest.raises(TraceError):
            IrradianceTrace(np.array([0.0, 900.0]), np.array([1.0, -1.0]))

    def test_validation_too_short(self):
        with pytest.raises(TraceError):
            IrradianceTrace(np.array([0.0]), np.array([1.0]))

    def test_validation_non_increasing(self):
        with pytest.raises(TraceError):
            IrradianceTrace(np.array([900.0, 0.0]), np.array([1.0, 1.0]))


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path):
        trace = synthesize_irradiance(days=1, seed=11)
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = load_irradiance_csv(path)
        assert np.allclose(loaded.values_w_m2, trace.values_w_m2, atol=1e-3)
        assert loaded.name == "trace"

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            load_irradiance_csv(path)

    def test_bad_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,ghi_w_m2\n0,x\n")
        with pytest.raises(TraceError):
            load_irradiance_csv(path)


class TestMidcFormat:
    """Parsing real NREL MIDC exports (the paper's data source)."""

    def _write_midc(self, path, rows, ghi_header="Global Horizontal [W/m^2]"):
        lines = [f"DATE (MM/DD/YYYY),MST,{ghi_header}"]
        lines += [",".join(str(v) for v in row) for row in rows]
        path.write_text("\n".join(lines) + "\n")

    def test_parses_midc_export(self, tmp_path):
        from repro.traces.nrel import load_midc_csv

        path = tmp_path / "midc.csv"
        self._write_midc(
            path,
            [
                ("07/01/2020", "10:00", 650.2),
                ("07/01/2020", "10:15", 675.9),
                ("07/01/2020", "10:30", 640.1),
            ],
        )
        trace = load_midc_csv(path)
        assert trace.interval_s == 900.0
        assert trace.at(0.0) == pytest.approx(650.2)
        assert trace.name == "midc"

    def test_clamps_negative_night_readings(self, tmp_path):
        from repro.traces.nrel import load_midc_csv

        path = tmp_path / "midc.csv"
        self._write_midc(
            path,
            [
                ("07/01/2020", "02:00", -1.8),
                ("07/01/2020", "02:15", -2.1),
            ],
        )
        trace = load_midc_csv(path)
        assert trace.at(0.0) == 0.0

    def test_crosses_midnight(self, tmp_path):
        from repro.traces.nrel import load_midc_csv

        path = tmp_path / "midc.csv"
        self._write_midc(
            path,
            [
                ("07/01/2020", "23:45", 0.0),
                ("07/02/2020", "00:00", 0.0),
                ("07/02/2020", "00:15", 0.0),
            ],
        )
        trace = load_midc_csv(path)
        assert trace.interval_s == 900.0

    def test_missing_ghi_column_rejected(self, tmp_path):
        from repro.traces.nrel import load_midc_csv

        path = tmp_path / "midc.csv"
        self._write_midc(path, [("07/01/2020", "10:00", 1.0)], ghi_header="Diffuse")
        with pytest.raises(TraceError):
            load_midc_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        from repro.traces.nrel import load_midc_csv

        path = tmp_path / "midc.csv"
        self._write_midc(path, [("07/01/2020", "oops", 1.0), ("07/01/2020", "10:15", 2.0)])
        with pytest.raises(TraceError):
            load_midc_csv(path)

    def test_loaded_trace_drives_a_farm(self, tmp_path):
        from repro.power.solar import SolarFarm
        from repro.traces.nrel import load_midc_csv

        path = tmp_path / "midc.csv"
        self._write_midc(
            path,
            [("07/01/2020", f"{10 + i // 4:02d}:{(i % 4) * 15:02d}", 500.0 + i)
             for i in range(8)],
        )
        farm = SolarFarm.sized_for(load_midc_csv(path), peak_power_w=1500.0)
        assert farm.power_at(0.0) > 0.0
