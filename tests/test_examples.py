"""Smoke tests: every shipped example must run to completion.

Examples are the library's de-facto acceptance suite for the public API;
each is executed in-process with stdout captured and sanity-checked for
its headline output.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "GreenHetero" in out
    assert "Uniform" in out
    assert "improves insufficient-supply performance" in out


def test_solar_datacenter_day(capsys):
    out = run_example("solar_datacenter_day", capsys)
    assert "day summary" in out
    assert out.count("\n") > 24  # hourly rows


def test_capacity_planning(capsys):
    out = run_example("capacity_planning", capsys)
    assert "under-provision" in out


def test_gpu_cluster(capsys):
    out = run_example("gpu_cluster", capsys)
    assert "Srad_v1" in out
    assert "Cfd" in out


def test_custom_hardware(capsys):
    out = run_example("custom_hardware", capsys)
    assert "Altra-Q80" in out
    assert "gain over Uniform" in out
    # The example registered a platform/workload; later tests must not
    # see them (examples clean-up is not required, so purge here).
    from repro.servers.platform import PLATFORMS, _ALIASES
    from repro.workloads import models
    from repro.workloads.catalog import WORKLOADS

    PLATFORMS.pop("Altra-Q80", None)
    _ALIASES.pop("altra", None)
    WORKLOADS.pop("LogAnalytics", None)
    models._RESPONSES.pop("LogAnalytics", None)


def test_hybrid_renewables_cluster(capsys):
    out = run_example("hybrid_renewables_cluster", capsys)
    assert "shortfall-proportional" in out


def test_colocation_sustainability(capsys):
    out = run_example("colocation_sustainability", capsys)
    assert "CO2" in out
    assert "0 = warm start worked" in out


def test_fault_tolerance(capsys):
    out = run_example("fault_tolerance", capsys)
    assert "battery lockout" in out
    assert "rides every fault" in out


def test_daynight_schedule(capsys):
    out = run_example("daynight_schedule", capsys)
    assert "training bursts: 2" in out
    assert "throughput" in out


def test_green_sizing(capsys):
    out = run_example("green_sizing", capsys)
    assert "solar" in out and "battery" in out and "grid" in out
    assert "renewable" in out
