"""Mixed-workload (co-location) racks.

The paper runs one workload per experiment, but the rack/group plumbing
generalises: each group may run its own workload, with the database
keyed by (platform, workload) pairs.  These tests pin that behaviour:
batch groups saturate independently, interactive balancing stays within
each service's groups, and the solver optimises across the mixed fits.
"""

import pytest

from repro.core.controller import GreenHeteroController
from repro.core.policies import make_policy
from repro.core.monitor import Monitor
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import synthesize_irradiance

NOON = 12 * 3600.0


def make_controller(groups, workloads, policy="GreenHetero", grid_w=900.0, seed=17):
    rack = Rack(groups, workloads)
    trace = synthesize_irradiance(days=1, seed=seed)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1.3 * rack.max_draw_w),
        BatteryBank(),
        GridSource(budget_w=grid_w),
    )
    return GreenHeteroController(
        rack=rack, pdu=pdu, policy=make_policy(policy), monitor=Monitor(seed=seed)
    )


class TestMixedBatch:
    def test_two_batch_workloads(self):
        ctl = make_controller(
            [("E5-2620", 3), ("i5-4460", 3)], ["Streamcluster", "Canneal"]
        )
        record = ctl.run_epoch(NOON)
        assert record.throughput > 0.0
        assert set(record.trained_pairs) == {
            ("E5-2620", "Streamcluster"),
            ("i5-4460", "Canneal"),
        }

    def test_database_keys_per_pair(self):
        ctl = make_controller(
            [("E5-2620", 3), ("i5-4460", 3)], ["Streamcluster", "Canneal"]
        )
        ctl.run_epoch(NOON)
        db = ctl.scheduler.database
        assert db.has("E5-2620", "Streamcluster")
        assert db.has("i5-4460", "Canneal")
        assert not db.has("E5-2620", "Canneal")


class TestMixedInteractiveBatch:
    def test_batch_group_saturates_interactive_follows_load(self):
        ctl = make_controller(
            [("E5-2620", 3), ("i5-4460", 3)], ["Streamcluster", "Memcached"]
        )
        high = ctl._measure_rack((3 * 170.0, 3 * 70.0), load_fraction=1.0)
        low = ctl._measure_rack((3 * 170.0, 3 * 70.0), load_fraction=0.1)
        # Batch share is identical; only the interactive share shrinks.
        assert low < high
        batch_only = ctl.rack.curve(0).max_throughput * 3
        assert low >= batch_only * 0.8

    def test_interactive_balancing_stays_within_service(self):
        # Memcached load must not be "absorbed" by the streamcluster
        # group: power off the memcached servers and its throughput
        # must go to zero even though the batch group runs.
        ctl = make_controller(
            [("E5-2620", 3), ("i5-4460", 3)], ["Streamcluster", "Memcached"]
        )
        states = [
            ctl.rack.curve(0).states.active_states[-1],
            ctl.rack.curve(0).states[0],  # OFF
        ]
        samples = ctl._samples_for_states(states, load_fraction=0.5)
        assert samples[0].throughput > 0.0
        assert samples[1].throughput == 0.0

    def test_full_epoch_runs(self):
        ctl = make_controller(
            [("E5-2620", 3), ("i5-4460", 3)], ["Mcf", "SPECjbb"]
        )
        record = ctl.run_epoch(NOON, load_fraction=0.7)
        assert record.throughput > 0.0
        assert 0.0 <= record.epu <= 1.0

    def test_greenhetero_beats_uniform_on_mixed_rack(self):
        results = {}
        for policy in ("Uniform", "GreenHetero"):
            ctl = make_controller(
                [("E5-2620", 3), ("i5-4460", 3)],
                ["Streamcluster", "Canneal"],
                policy=policy,
                grid_w=500.0,
            )
            ctl.pdu.battery.soc_wh = ctl.pdu.battery.floor_wh  # force grid
            total = 0.0
            for i in range(4):
                total += ctl.run_epoch(i * 900.0).throughput  # night epochs
            results[policy] = total
        assert results["GreenHetero"] >= results["Uniform"]
