"""Monitor: seeded noisy sensing."""

import numpy as np
import pytest

from repro.core.monitor import Monitor
from repro.errors import ConfigurationError
from repro.servers.power_model import ServerSample


def sample(power=100.0, perf=5000.0):
    return ServerSample(power_w=power, throughput=perf, state_index=5, utilization=0.8)


class TestNoise:
    def test_deterministic_per_seed(self):
        m1, m2 = Monitor(seed=3), Monitor(seed=3)
        o1 = m1.observe_server(sample(), 0, 0.0)
        o2 = m2.observe_server(sample(), 0, 0.0)
        assert o1.power_w == o2.power_w
        assert o1.throughput == o2.throughput

    def test_different_seeds_differ(self):
        o1 = Monitor(seed=1).observe_server(sample(), 0, 0.0)
        o2 = Monitor(seed=2).observe_server(sample(), 0, 0.0)
        assert o1.power_w != o2.power_w

    def test_zero_noise_is_exact(self):
        m = Monitor(power_noise=0.0, perf_noise=0.0, renewable_noise=0.0)
        obs = m.observe_server(sample(), 1, 10.0)
        assert obs.power_w == 100.0
        assert obs.throughput == 5000.0
        assert m.observe_renewable(750.0) == 750.0
        assert m.observe_demand(900.0) == 900.0

    def test_noise_centered_on_truth(self):
        m = Monitor(power_noise=0.05, seed=0)
        readings = [m.observe_server(sample(), 0, 0.0).power_w for _ in range(500)]
        assert np.mean(readings) == pytest.approx(100.0, rel=0.02)
        assert np.std(readings) == pytest.approx(5.0, rel=0.25)

    def test_never_negative(self):
        m = Monitor(power_noise=1.0, perf_noise=1.0, seed=0)  # huge noise
        for _ in range(200):
            obs = m.observe_server(sample(), 0, 0.0)
            assert obs.power_w >= 0.0
            assert obs.throughput >= 0.0

    def test_zero_value_stays_zero(self):
        m = Monitor(seed=0)
        obs = m.observe_server(ServerSample(0.0, 0.0, 0, 0.0), 0, 0.0)
        assert obs.power_w == 0.0
        assert obs.throughput == 0.0

    def test_state_index_exact(self):
        obs = Monitor(seed=0).observe_server(sample(), 2, 5.0)
        assert obs.state_index == 5
        assert obs.group_index == 2
        assert obs.time_s == 5.0

    def test_observe_throughput(self):
        m = Monitor(perf_noise=0.0)
        assert m.observe_throughput(42.0) == 42.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            Monitor(power_noise=-0.1)
