"""The GreenHetero rack controller: one epoch end to end."""

import pytest

from repro.core.controller import GreenHeteroController, N_SUBSTEPS
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.core.sources import PowerCase
from repro.errors import ConfigurationError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import Weather, synthesize_irradiance

NOON = 12 * 3600.0
MIDNIGHT = 0.0


def make_controller(policy_name="GreenHetero", solar_peak=1900.0, grid_w=1000.0, seed=3):
    rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")
    trace = synthesize_irradiance(days=2, weather=Weather.HIGH, seed=seed)
    pdu = PDU(
        SolarFarm.sized_for(trace, solar_peak),
        BatteryBank(),
        GridSource(budget_w=grid_w),
    )
    return GreenHeteroController(
        rack=rack, pdu=pdu, policy=make_policy(policy_name), monitor=Monitor(seed=seed)
    )


class TestEpochExecution:
    def test_record_fields_consistent(self):
        ctl = make_controller()
        record = ctl.run_epoch(NOON)
        assert record.time_s == NOON
        assert record.case in (PowerCase.A, PowerCase.B, PowerCase.C)
        assert 0.0 <= record.epu <= 1.0
        assert record.throughput >= 0.0
        assert len(record.ratios) == 2
        assert sum(record.ratios) <= 1.0 + 1e-9
        assert record.group_budgets_w == pytest.approx(
            tuple(r * record.budget_w for r in record.ratios)
        )

    def test_first_epoch_runs_training(self):
        ctl = make_controller("GreenHetero")
        record = ctl.run_epoch(NOON)
        assert set(record.trained_pairs) == {
            ("E5-2620", "SPECjbb"),
            ("i5-4460", "SPECjbb"),
        }

    def test_training_only_once(self):
        ctl = make_controller("GreenHetero")
        ctl.run_epoch(NOON)
        record = ctl.run_epoch(NOON + 900.0)
        assert record.trained_pairs == ()

    def test_uniform_policy_never_trains(self):
        ctl = make_controller("Uniform")
        record = ctl.run_epoch(NOON)
        assert record.trained_pairs == ()
        assert len(ctl.scheduler.database) == 0

    def test_manual_policy_gets_oracle(self):
        ctl = make_controller("Manual")
        record = ctl.run_epoch(NOON)
        assert sum(record.ratios) == pytest.approx(1.0)

    def test_database_grows_under_adaptive_policy(self):
        ctl = make_controller("GreenHetero")
        ctl.run_epoch(NOON)
        key = ("E5-2620", "SPECjbb")
        after_training = ctl.scheduler.database.sample_count(key)
        ctl.run_epoch(NOON + 900.0)
        assert ctl.scheduler.database.sample_count(key) > after_training

    def test_database_frozen_under_static_policy(self):
        ctl = make_controller("GreenHetero-a")
        ctl.run_epoch(NOON)
        key = ("E5-2620", "SPECjbb")
        after_training = ctl.scheduler.database.sample_count(key)
        ctl.run_epoch(NOON + 900.0)
        assert ctl.scheduler.database.sample_count(key) == after_training

    def test_night_uses_battery(self):
        ctl = make_controller()
        record = ctl.run_epoch(MIDNIGHT)
        assert record.case is PowerCase.C
        assert record.battery_to_load_w > 0.0

    def test_noon_uses_renewable(self):
        ctl = make_controller()
        record = ctl.run_epoch(NOON)
        assert record.renewable_to_load_w > 0.0

    def test_bad_load_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            make_controller().run_epoch(NOON, load_fraction=1.5)

    def test_bad_epoch_length_rejected(self):
        rack = Rack([("i5-4460", 2)], "SPECjbb")
        trace = synthesize_irradiance(days=1, seed=1)
        pdu = PDU(SolarFarm.sized_for(trace, 300.0), BatteryBank(), GridSource())
        with pytest.raises(ConfigurationError):
            GreenHeteroController(rack, pdu, make_policy("Uniform"), epoch_s=0.0)


class TestEnergyAccounting:
    def test_epu_consistent_with_useful_power(self):
        ctl = make_controller()
        record = ctl.run_epoch(NOON)
        if record.budget_w > 0:
            assert record.epu == pytest.approx(
                min(record.useful_power_w / record.budget_w, 1.0)
            )

    def test_battery_soc_decreases_overnight(self):
        ctl = make_controller()
        before = ctl.pdu.battery.soc_wh
        record = ctl.run_epoch(MIDNIGHT)
        assert record.battery_soc_wh < before

    def test_budget_override_forces_budget(self):
        ctl = make_controller()
        ctl.budget_override = lambda t, d: 700.0
        record = ctl.run_epoch(NOON)
        assert record.budget_w == 700.0
        assert record.case is PowerCase.B


class TestLoadBalancing:
    def test_offered_load_reroutes_to_survivors(self):
        # At a budget where uniform sleeps the Xeons, interactive load
        # must still be served by the i5s (low offered load).
        ctl = make_controller("Uniform")
        ctl.budget_override = lambda t, d: 700.0  # 70 W/server: E5s sleep
        record = ctl.run_epoch(NOON, load_fraction=0.2)
        assert record.throughput > 0.0

    def test_measure_rack_matches_manual_oracle_shape(self):
        ctl = make_controller("GreenHetero")
        full = ctl._measure_rack((5 * 150.0, 5 * 80.0), 1.0)
        half = ctl._measure_rack((5 * 150.0, 5 * 80.0), 0.4)
        assert 0.0 < half < full


class ConstantSource:
    """A renewable source with flat output (PDU duck-types power_at)."""

    def __init__(self, power_w: float) -> None:
        self.power_w = power_w

    def power_at(self, time_s: float) -> float:
        return self.power_w


class TestPredictorFeedback:
    """The renewable feedback is metered per substep, jittered once.

    Regression for a double-jitter bug: the controller used to feed the
    predictor ``observe_renewable(record.renewable_w)`` — re-metering an
    epoch *mean* that conceptually already passed through the sensor —
    which both mis-scaled the noise (a mean of 6 readings has sigma/sqrt(6))
    and consumed an extra RNG draw.
    """

    PV_W = 500.0

    def make_controller(self, seed=42):
        import numpy as np

        rack = Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")
        pdu = PDU(ConstantSource(self.PV_W), BatteryBank(), GridSource(budget_w=1000.0))
        monitor = Monitor(
            power_noise=0.0, perf_noise=0.0, renewable_noise=0.01, seed=seed
        )
        ctl = GreenHeteroController(
            rack=rack, pdu=pdu, policy=make_policy("Uniform"), monitor=monitor
        )
        ctl.prime_predictors([self.PV_W] * 96, [1000.0] * 96)
        return ctl, np.random.default_rng(seed)

    def expected_readings(self, rng, n):
        # With only renewable_noise non-zero, the Monitor's RNG advances
        # exactly once per observe_renewable call; replay it.
        return [
            max(0.0, self.PV_W * (1.0 + 0.01 * float(rng.standard_normal())))
            for _ in range(n)
        ]

    def test_feedback_is_mean_of_substep_meter_readings(self):
        ctl, rng = self.make_controller()
        fed = []
        original = ctl.scheduler.observe

        def spy(renewable_w, demand_w):
            fed.append(renewable_w)
            original(renewable_w, demand_w)

        ctl.scheduler.observe = spy
        record = ctl.run_epoch(NOON)

        # Draw 1 is the epoch-start reading; draws 2..7 are the six
        # substeps whose mean is the one-and-only predictor feedback.
        readings = self.expected_readings(rng, 1 + N_SUBSTEPS)
        expected = sum(readings[1:]) / N_SUBSTEPS
        assert fed == [pytest.approx(expected, rel=1e-12)]
        assert record.renewable_metered_w == pytest.approx(expected, rel=1e-12)
        # The noise-free channel is untouched by the metering.
        assert record.renewable_w == pytest.approx(self.PV_W)

    def test_no_second_jitter_of_the_epoch_mean(self):
        ctl, rng = self.make_controller()
        record = ctl.run_epoch(NOON)
        readings = self.expected_readings(rng, 1 + N_SUBSTEPS)
        # The buggy path would consume an 8th draw to re-jitter the mean;
        # the RNG must sit exactly at draw 7 afterwards.
        next_value = float(rng.standard_normal())
        actual_next = float(ctl.monitor._rng.standard_normal())
        assert actual_next == next_value
        assert record.renewable_metered_w == pytest.approx(
            sum(readings[1:]) / N_SUBSTEPS, rel=1e-12
        )
