"""Partial-group allocation (the k-of-n extension beyond the paper)."""

import pytest

from repro.core.database import PerfPowerFit
from repro.core.policies import GreenHeteroPartialPolicy, make_policy
from repro.core.enforcer import ServerPowerController
from repro.core.solver import GroupModel, PARSolver, PartialGroupSolver
from repro.errors import PowerError
from repro.servers.rack import Rack


def concave(t_max, lo, hi):
    span = hi - lo
    return PerfPowerFit(
        coefficients=(
            -t_max / span**2,
            2 * t_max * hi / span**2,
            t_max - t_max * hi**2 / span**2,
        ),
        min_power_w=lo,
        max_power_w=hi,
    )


BIG = GroupModel("big", 5, concave(100.0, 100.0, 150.0))
SMALL = GroupModel("small", 5, concave(60.0, 52.0, 80.0))


class TestPartialGroupSolver:
    def test_never_worse_than_group_granular(self):
        base = PARSolver(safety_margin=0.0)
        partial = PartialGroupSolver(safety_margin=0.0)
        for budget in (300.0, 500.0, 700.0, 900.0, 1100.0, 1300.0):
            a = base.solve([BIG, SMALL], budget).expected_perf
            b = partial.solve([BIG, SMALL], budget).expected_perf
            assert b >= a - 1e-9, budget

    def test_wins_at_the_cliff(self):
        # 600 W: all-on choices are poor — five big servers crawl at
        # their 100 W minimum (and 500 W leaves the small group dark),
        # while the small group alone caps out at 400 W.  Powering a
        # *subset* of big servers well plus most of the small group
        # beats both by a wide margin.
        base = PARSolver(safety_margin=0.0)
        partial = PartialGroupSolver(safety_margin=0.0)
        a = base.solve([BIG, SMALL], 600.0)
        b = partial.solve([BIG, SMALL], 600.0)
        assert b.expected_perf > a.expected_perf * 1.2
        assert b.powered_counts is not None
        assert 0 < b.powered_counts[0] < 5

    def test_full_budget_powers_everything(self):
        partial = PartialGroupSolver(safety_margin=0.0)
        sol = partial.solve([BIG, SMALL], 10000.0)
        assert sol.powered_counts == (5, 5)

    def test_budget_respected(self):
        partial = PartialGroupSolver(safety_margin=0.0)
        for budget in (250.0, 650.0, 1000.0):
            sol = partial.solve([BIG, SMALL], budget)
            total = sum(
                k * p for k, p in zip(sol.powered_counts, sol.per_server_w)
            )
            assert total <= budget + 1e-6

    def test_zero_budget(self):
        sol = PartialGroupSolver().solve([BIG, SMALL], 0.0)
        assert sol.powered_counts == (0, 0)
        assert sol.expected_perf == 0.0

    def test_method_label(self):
        sol = PartialGroupSolver(safety_margin=0.0).solve([BIG, SMALL], 700.0)
        assert sol.method == "kkt-partial"


class TestEnforcerPartial:
    def test_powers_first_k_servers(self):
        rack = Rack([("E5-2620", 4), ("i5-4460", 2)], "Streamcluster")
        servers = rack.build_servers()
        ServerPowerController.apply(servers, (300.0, 180.0), powered_counts=(2, 2))
        e5 = servers[0]
        assert e5[0].state.active and e5[1].state.active
        assert e5[2].state.is_off and e5[3].state.is_off
        # Powered servers split the group budget between them.
        assert e5[0].run().power_w <= 150.0 + 1e-6

    def test_zero_count_turns_group_off(self):
        rack = Rack([("E5-2620", 2), ("i5-4460", 2)], "Streamcluster")
        servers = rack.build_servers()
        ServerPowerController.apply(servers, (0.0, 150.0), powered_counts=(0, 2))
        assert all(s.state.is_off for s in servers[0])

    def test_bad_count_rejected(self):
        rack = Rack([("E5-2620", 2)], "Streamcluster")
        servers = rack.build_servers()
        with pytest.raises(PowerError):
            ServerPowerController.apply(servers, (100.0,), powered_counts=(3,))

    def test_count_length_mismatch_rejected(self):
        rack = Rack([("E5-2620", 2)], "Streamcluster")
        servers = rack.build_servers()
        with pytest.raises(PowerError):
            ServerPowerController.apply(servers, (100.0,), powered_counts=(1, 1))


class TestPolicy:
    def test_registered(self):
        assert make_policy("GreenHetero+").name == "GreenHetero+"

    def test_plan_carries_counts(self):
        from tests.core.test_policies import make_ctx

        plan = GreenHeteroPartialPolicy().allocate_plan(make_ctx(budget=700.0))
        assert plan.powered_counts is not None
        assert len(plan.powered_counts) == 2

    def test_default_policies_plan_has_no_counts(self):
        from tests.core.test_policies import make_ctx

        plan = make_policy("GreenHetero").allocate_plan(make_ctx(budget=700.0))
        assert plan.powered_counts is None

    def test_end_to_end_never_worse(self):
        from repro.sim.experiment import ExperimentConfig, run_experiment

        cfg = ExperimentConfig.insufficient_supply(
            "SPECjbb", days=0.25, policies=("Uniform", "GreenHetero", "GreenHetero+")
        )
        result = run_experiment(cfg)
        assert result.gain("GreenHetero+") >= result.gain("GreenHetero") - 0.03


class TestCombinatoricGuard:
    def test_huge_racks_rejected_with_guidance(self):
        from repro.errors import SolverError

        groups = [
            GroupModel("a", 40, concave(100.0, 100.0, 150.0)),
            GroupModel("b", 40, concave(60.0, 52.0, 80.0)),
            GroupModel("c", 40, concave(60.0, 52.0, 80.0)),
        ]
        with pytest.raises(SolverError, match="group-granular"):
            PartialGroupSolver().solve(groups, 5000.0)

    def test_paper_scale_racks_fine(self):
        groups = [
            GroupModel("a", 5, concave(100.0, 100.0, 150.0)),
            GroupModel("b", 5, concave(60.0, 52.0, 80.0)),
            GroupModel("c", 5, concave(60.0, 52.0, 80.0)),
        ]
        sol = PartialGroupSolver(safety_margin=0.0).solve(groups, 1500.0)
        assert sol.expected_perf > 0
