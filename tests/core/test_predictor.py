"""Holt double-exponential-smoothing predictor (Eq. 2-5)."""

import numpy as np
import pytest

from repro.core.predictor import HoltPredictor
from repro.errors import ConfigurationError


class TestEquations:
    def test_first_observation_seeds_level(self):
        p = HoltPredictor(alpha=0.5, beta=0.5)
        p.observe(10.0)
        assert p.level == 10.0
        assert p.trend == 0.0

    def test_recurrence_matches_paper(self):
        alpha, beta = 0.6, 0.3
        p = HoltPredictor(alpha=alpha, beta=beta, nonnegative=False)
        p.observe(10.0)
        p.observe(14.0)
        p.observe(15.0)
        # Manual Eq. 2-3 with the standard initialisation S_1 after
        # absorbing O_1=14 with B_0 = O_1 - O_0 = 4:
        s1 = alpha * 14.0 + (1 - alpha) * (10.0 + 4.0)
        b1 = beta * (s1 - 10.0) + (1 - beta) * 4.0
        s2 = alpha * 15.0 + (1 - alpha) * (s1 + b1)
        b2 = beta * (s2 - s1) + (1 - beta) * b1
        assert p.level == pytest.approx(s2)
        assert p.trend == pytest.approx(b2)
        assert p.predict() == pytest.approx(s2 + b2)

    def test_horizon_extrapolates_trend(self):
        p = HoltPredictor(alpha=1.0, beta=1.0, nonnegative=False)
        for v in (0.0, 1.0, 2.0, 3.0):
            p.observe(v)
        assert p.predict(1) == pytest.approx(4.0)
        assert p.predict(3) == pytest.approx(6.0)

    def test_tracks_linear_series_exactly(self):
        p = HoltPredictor(alpha=0.8, beta=0.8)
        for v in np.arange(0.0, 50.0, 2.0):
            p.observe(float(v))
        assert p.predict() == pytest.approx(50.0, abs=0.5)

    def test_nonnegative_clamp(self):
        p = HoltPredictor(alpha=1.0, beta=1.0, nonnegative=True)
        p.observe(10.0)
        p.observe(1.0)
        p.observe(0.0)
        assert p.predict() == 0.0

    def test_without_clamp_can_go_negative(self):
        p = HoltPredictor(alpha=1.0, beta=1.0, nonnegative=False)
        p.observe(10.0)
        p.observe(1.0)
        p.observe(0.0)
        assert p.predict() < 0.0


class TestLifecycle:
    def test_predict_before_observe_rejected(self):
        with pytest.raises(ConfigurationError):
            HoltPredictor().predict()

    def test_bad_horizon_rejected(self):
        p = HoltPredictor()
        p.observe(1.0)
        with pytest.raises(ConfigurationError):
            p.predict(0)

    def test_ready_flag(self):
        p = HoltPredictor()
        assert not p.ready
        p.observe(1.0)
        assert p.ready

    def test_reset_keeps_constants(self):
        p = HoltPredictor(alpha=0.7, beta=0.2)
        p.observe(5.0)
        p.reset()
        assert not p.ready
        assert p.alpha == 0.7

    @pytest.mark.parametrize("alpha,beta", [(-0.1, 0.5), (1.1, 0.5), (0.5, -0.1), (0.5, 2.0)])
    def test_bad_constants_rejected(self, alpha, beta):
        with pytest.raises(ConfigurationError):
            HoltPredictor(alpha=alpha, beta=beta)


class TestTraining:
    """Eq. 5: alpha/beta minimise squared one-step error."""

    def _solar_like(self, n=96):
        t = np.arange(n)
        return np.maximum(0.0, np.sin((t - 24) * np.pi / 48)) * 1000.0

    def test_sse_computes(self):
        history = self._solar_like()
        assert HoltPredictor.sse(history, 0.5, 0.3) > 0.0

    def test_sse_needs_history(self):
        with pytest.raises(ConfigurationError):
            HoltPredictor.sse([1.0, 2.0], 0.5, 0.5)

    def test_fit_beats_default_constants(self):
        history = self._solar_like()
        fitted = HoltPredictor.fit(history)
        fitted_sse = HoltPredictor.sse(history, fitted.alpha, fitted.beta)
        default_sse = HoltPredictor.sse(history, 0.5, 0.3)
        assert fitted_sse <= default_sse + 1e-9

    def test_fit_primes_state(self):
        fitted = HoltPredictor.fit(self._solar_like())
        assert fitted.ready
        assert fitted.predict() >= 0.0

    def test_fit_constants_in_bounds(self):
        fitted = HoltPredictor.fit(self._solar_like())
        assert 0.0 <= fitted.alpha <= 1.0
        assert 0.0 <= fitted.beta <= 1.0

    def test_fit_needs_history(self):
        with pytest.raises(ConfigurationError):
            HoltPredictor.fit([1.0, 2.0])

    def test_fitted_predictor_tracks_solar_ramp(self):
        # One-step forecasts of a smooth solar ramp should be close.
        history = self._solar_like()
        p = HoltPredictor.fit(history[:48])
        errors = []
        for obs in history[48:72]:
            errors.append(abs(p.predict() - obs))
            p.observe(float(obs))
        assert np.mean(errors) < 100.0  # within 10% of the 1 kW peak


class TestStateDict:
    def _primed(self):
        p = HoltPredictor(alpha=0.6, beta=0.3)
        for v in (10.0, 14.0, 15.0, 13.0):
            p.observe(v)
        return p

    def test_round_trip_bit_identical(self):
        p = self._primed()
        q = HoltPredictor.from_state_dict(p.state_dict())
        assert q.state_dict() == p.state_dict()
        assert q.predict(3) == p.predict(3)

    def test_restored_predictor_keeps_learning(self):
        p = self._primed()
        q = HoltPredictor.from_state_dict(p.state_dict())
        p.observe(16.0)
        q.observe(16.0)
        assert q.predict() == p.predict()

    def test_unprimed_round_trip(self):
        p = HoltPredictor(alpha=0.5, beta=0.5)
        q = HoltPredictor.from_state_dict(p.state_dict())
        assert not q.ready
        assert q.state_dict() == p.state_dict()

    def test_malformed_state_rejected(self):
        with pytest.raises(ConfigurationError):
            HoltPredictor.from_state_dict({"alpha": 0.5})

    def test_invalid_smoothing_rejected(self):
        state = HoltPredictor(alpha=0.5, beta=0.5).state_dict()
        state["alpha"] = 7.0
        with pytest.raises(ConfigurationError):
            HoltPredictor.from_state_dict(state)
