"""Cluster coordinator: shared-grid division across racks."""

import pytest

from repro.core.cluster import ClusterCoordinator, GridSplit
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.errors import ConfigurationError, PowerError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import Weather, synthesize_irradiance

MIDNIGHT = 0.0
NOON = 12 * 3600.0


def make_controller(weather=Weather.HIGH, seed=1, solar_peak=1900.0, soc=1.0):
    rack = Rack([("E5-2620", 3), ("i5-4460", 3)], "Streamcluster")
    trace = synthesize_irradiance(days=1, weather=weather, seed=seed)
    pdu = PDU(
        SolarFarm.sized_for(trace, solar_peak),
        BatteryBank(count=2, initial_soc_fraction=soc),
        GridSource(budget_w=0.0),
    )
    return GreenHeteroController(
        rack=rack, pdu=pdu, policy=make_policy("GreenHetero"), monitor=Monitor(seed=seed)
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterCoordinator([], 1000.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(PowerError):
            ClusterCoordinator([make_controller()], -1.0)


class TestEqualSplit:
    def test_divides_evenly(self):
        cluster = ClusterCoordinator(
            [make_controller(seed=1), make_controller(seed=2)],
            1000.0,
            split=GridSplit.EQUAL,
        )
        assert cluster.grid_shares_w(MIDNIGHT) == [500.0, 500.0]


class TestShortfallSplit:
    def test_sunny_rack_cedes_grid(self):
        # Rack A has huge solar at noon; rack B has none (tiny farm).
        sunny = make_controller(seed=1, solar_peak=5000.0)
        dark = make_controller(seed=2, solar_peak=1.0)
        cluster = ClusterCoordinator([sunny, dark], 1000.0, split=GridSplit.SHORTFALL)
        # Drain both batteries so shortfall is driven by renewables.
        for c in (sunny, dark):
            c.pdu.battery.soc_wh = c.pdu.battery.floor_wh
        shares = cluster.grid_shares_w(NOON)
        assert shares[1] > shares[0]
        assert sum(shares) == pytest.approx(1000.0)

    def test_no_shortfall_falls_back_to_equal(self):
        a = make_controller(seed=1, solar_peak=50000.0)
        b = make_controller(seed=2, solar_peak=50000.0)
        cluster = ClusterCoordinator([a, b], 1000.0, split=GridSplit.SHORTFALL)
        assert cluster.grid_shares_w(NOON) == [500.0, 500.0]


class TestEpochExecution:
    def test_runs_all_racks(self):
        cluster = ClusterCoordinator(
            [make_controller(seed=1), make_controller(seed=2)], 1500.0
        )
        records = cluster.run_epoch(NOON)
        assert len(records) == 2
        assert cluster.aggregate_throughput(records) > 0.0

    def test_provisioned_grid_budget_restored_after_epoch(self):
        # The per-epoch share must not clobber each rack's provisioned
        # budget: after the epoch the racks read exactly as provisioned.
        a, b = make_controller(seed=1), make_controller(seed=2)
        a.pdu.grid.budget_w = 120.0
        b.pdu.grid.budget_w = 340.0
        cluster = ClusterCoordinator([a, b], 1500.0, split=GridSplit.EQUAL)
        records = cluster.run_epoch(MIDNIGHT)
        assert len(records) == 2
        assert a.pdu.grid.budget_w == pytest.approx(120.0)
        assert b.pdu.grid.budget_w == pytest.approx(340.0)

    def test_epoch_share_drives_the_epoch(self):
        # At midnight with drained batteries, a grid-only epoch's budget
        # comes from the coordinator's share, not the provisioned cap.
        a, b = make_controller(seed=1), make_controller(seed=2)
        for c in (a, b):
            c.pdu.battery.soc_wh = c.pdu.battery.floor_wh
        cluster = ClusterCoordinator([a, b], 1500.0, split=GridSplit.EQUAL)
        records = cluster.run_epoch(MIDNIGHT)
        for record in records:
            assert record.budget_w <= 750.0 + 1e-6
            assert record.grid_to_load_w <= 750.0 + 1e-6

    def test_shortfall_fallback_with_primed_predictors(self):
        # Primed predictors forecasting abundant renewables: zero total
        # predicted shortfall must fall back to the EQUAL division.
        a = make_controller(seed=1, solar_peak=50000.0)
        b = make_controller(seed=2, solar_peak=50000.0)
        for c in (a, b):
            c.prime_predictors([9000.0] * 8, [700.0] * 8)
        cluster = ClusterCoordinator([a, b], 1000.0, split=GridSplit.SHORTFALL)
        assert cluster.grid_shares_w(NOON) == [500.0, 500.0]

    def test_load_fraction_mismatch_rejected(self):
        cluster = ClusterCoordinator([make_controller()], 1000.0)
        with pytest.raises(ConfigurationError):
            cluster.run_epoch(NOON, load_fractions=[1.0, 0.5])

    def test_aggregate_requires_matching_records(self):
        cluster = ClusterCoordinator([make_controller()], 1000.0)
        with pytest.raises(ConfigurationError):
            cluster.aggregate_throughput([])
