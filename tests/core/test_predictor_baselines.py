"""Persistence and moving-average predictor baselines."""

import pytest

from repro.core.predictor import (
    HoltPredictor,
    MovingAveragePredictor,
    PersistencePredictor,
)
from repro.errors import ConfigurationError


class TestPersistence:
    def test_predicts_last_value(self):
        p = PersistencePredictor()
        p.observe(3.0)
        p.observe(7.0)
        assert p.predict() == 7.0
        assert p.predict(horizon=5) == 7.0

    def test_ready_flag(self):
        p = PersistencePredictor()
        assert not p.ready
        p.observe(1.0)
        assert p.ready

    def test_predict_before_observe_rejected(self):
        with pytest.raises(ConfigurationError):
            PersistencePredictor().predict()

    def test_bad_horizon_rejected(self):
        p = PersistencePredictor()
        p.observe(1.0)
        with pytest.raises(ConfigurationError):
            p.predict(0)

    def test_nonnegative_clamp(self):
        p = PersistencePredictor(nonnegative=True)
        p.observe(-5.0)
        assert p.predict() == 0.0

    def test_reset(self):
        p = PersistencePredictor()
        p.observe(1.0)
        p.reset()
        assert not p.ready


class TestMovingAverage:
    def test_window_mean(self):
        p = MovingAveragePredictor(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            p.observe(v)
        assert p.predict() == pytest.approx(3.0)  # mean of last 3

    def test_partial_window(self):
        p = MovingAveragePredictor(window=10)
        p.observe(4.0)
        p.observe(6.0)
        assert p.predict() == pytest.approx(5.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            MovingAveragePredictor(window=0)

    def test_predict_before_observe_rejected(self):
        with pytest.raises(ConfigurationError):
            MovingAveragePredictor().predict()

    def test_reset(self):
        p = MovingAveragePredictor()
        p.observe(1.0)
        p.reset()
        assert not p.ready


class TestSchedulerInterop:
    """The scheduler accepts any predictor behind the shared interface."""

    def test_scheduler_with_persistence(self):
        from repro.core.policies import UniformPolicy
        from repro.core.scheduler import AdaptiveScheduler

        s = AdaptiveScheduler(
            UniformPolicy(),
            renewable_predictor=PersistencePredictor(),
            demand_predictor=MovingAveragePredictor(window=2),
        )
        s.observe(500.0, 900.0)
        s.observe(450.0, 950.0)
        renewable, demand = s.forecast()
        assert renewable == 450.0
        assert demand == pytest.approx(925.0)

    def test_holt_lags_less_on_ramp(self):
        ramp = [float(10 * i) for i in range(30)]
        holt = HoltPredictor(alpha=0.8, beta=0.8)
        moving = MovingAveragePredictor(window=4)
        for v in ramp:
            holt.observe(v)
            moving.observe(v)
        truth = 300.0
        assert abs(holt.predict() - truth) < abs(moving.predict() - truth)
