"""Workload switching at runtime (Algorithm 1's arrival path)."""

import pytest

from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import synthesize_irradiance

NOON = 12 * 3600.0
EPOCH = 900.0


@pytest.fixture
def controller():
    rack = Rack([("E5-2620", 3), ("i5-4460", 3)], "SPECjbb")
    trace = synthesize_irradiance(days=1, seed=23)
    pdu = PDU(
        SolarFarm.sized_for(trace, 1.3 * rack.max_draw_w),
        BatteryBank(),
        GridSource(budget_w=700.0),
    )
    return GreenHeteroController(
        rack=rack, pdu=pdu, policy=make_policy("GreenHetero"), monitor=Monitor(seed=23)
    )


class TestSwitching:
    def test_new_workload_triggers_training(self, controller):
        first = controller.run_epoch(NOON)
        assert len(first.trained_pairs) == 2
        controller.switch_workload("Streamcluster")
        second = controller.run_epoch(NOON + EPOCH)
        assert set(second.trained_pairs) == {
            ("E5-2620", "Streamcluster"),
            ("i5-4460", "Streamcluster"),
        }

    def test_database_retains_old_pairs(self, controller):
        controller.run_epoch(NOON)
        controller.switch_workload("Streamcluster")
        controller.run_epoch(NOON + EPOCH)
        db = controller.scheduler.database
        assert db.has("E5-2620", "SPECjbb")
        assert db.has("E5-2620", "Streamcluster")

    def test_returning_workload_skips_training(self, controller):
        controller.run_epoch(NOON)
        controller.switch_workload("Streamcluster")
        controller.run_epoch(NOON + EPOCH)
        controller.switch_workload("SPECjbb")
        third = controller.run_epoch(NOON + 2 * EPOCH)
        # Already profiled: Algorithm 1 takes the solver branch directly.
        assert third.trained_pairs == ()

    def test_platforms_preserved_across_switch(self, controller):
        controller.switch_workload("Canneal")
        assert controller.rack.platform_names == ("E5-2620", "i5-4460")
        assert controller.rack.n_servers == 6

    def test_switch_to_per_group_workloads(self, controller):
        controller.switch_workload(["Streamcluster", "Memcached"])
        record = controller.run_epoch(NOON)
        assert record.throughput > 0.0

    def test_switch_updates_demand_scale(self, controller):
        controller.run_epoch(NOON)
        jbb_demand = controller.rack.demand_at_load(1.0)
        controller.switch_workload("Memcached")
        memcached_demand = controller.rack.demand_at_load(1.0)
        assert memcached_demand < jbb_demand

    def test_incompatible_switch_rejected(self, controller):
        from repro.errors import IncompatibleWorkloadError

        gpu_rack = Rack([("TitanXp", 2)], "Srad_v1")
        trace = synthesize_irradiance(days=1, seed=23)
        pdu = PDU(SolarFarm.sized_for(trace, 1000.0), BatteryBank(), GridSource())
        ctl = GreenHeteroController(gpu_rack, pdu, make_policy("Uniform"))
        with pytest.raises(IncompatibleWorkloadError):
            ctl.switch_workload("SPECjbb")
