"""Effective Power Utilization metric (Eq. 1)."""

import pytest

from repro.core.epu import effective_power_utilization, useful_power
from repro.errors import PowerError


class TestUsefulPower:
    def test_counts_only_productive_servers(self):
        draws = [100.0, 50.0, 3.0]
        perfs = [10.0, 0.0, 0.0]
        assert useful_power(draws, perfs) == 100.0

    def test_all_productive(self):
        assert useful_power([10.0, 20.0], [1.0, 1.0]) == 30.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(PowerError):
            useful_power([1.0], [1.0, 2.0])

    def test_negative_draw_rejected(self):
        with pytest.raises(PowerError):
            useful_power([-1.0], [1.0])


class TestEPU:
    def test_scalar_form(self):
        assert effective_power_utilization(86.0, 100.0) == pytest.approx(0.86)

    def test_iterable_form(self):
        assert effective_power_utilization([40.0, 46.0], [50.0, 50.0]) == pytest.approx(
            0.86
        )

    def test_perfect_utilization(self):
        assert effective_power_utilization(220.0, 220.0) == 1.0

    def test_zero_supply_is_zero(self):
        assert effective_power_utilization(0.0, 0.0) == 0.0

    def test_bounded_at_one(self):
        # Floating-point slop must not push EPU above 1.
        assert effective_power_utilization(100.0 + 1e-10, 100.0) == 1.0

    def test_throughput_exceeding_supply_rejected(self):
        with pytest.raises(PowerError):
            effective_power_utilization(150.0, 100.0)

    def test_negative_rejected(self):
        with pytest.raises(PowerError):
            effective_power_utilization(-1.0, 100.0)

    def test_case_study_uniform_epu(self):
        # Section III-B: uniform allocation of a 220 W budget yields
        # ~86% EPU (A draws ~110 W, B capped at ~81 W).
        assert effective_power_utilization(110.0 + 81.0, 220.0) == pytest.approx(
            0.868, abs=0.01
        )

    def test_case_study_all_to_small_server(self):
        # PAR = 0: everything to the i5, which uses only ~81 W -> ~37%.
        assert effective_power_utilization(81.0, 220.0) == pytest.approx(0.368, abs=0.01)
