"""Profiling database and curve fitting (Fig. 7, Algorithm 1)."""

import numpy as np
import pytest

from repro.core.database import FitKind, PerfPowerFit, ProfilingDatabase
from repro.errors import ConfigurationError, DatabaseMissError

KEY = ("E5-2620", "SPECjbb")


def quad_samples(l=-2.0, m=600.0, n=-20000.0, powers=(100, 110, 120, 135, 150)):
    """Noise-free samples from a known quadratic."""
    return [(float(p), l * p * p + m * p + n) for p in powers]


class TestPerfPowerFit:
    def _fit(self, **overrides):
        base = dict(
            coefficients=(-2.0, 600.0, -20000.0),
            min_power_w=95.0,
            max_power_w=150.0,
        )
        base.update(overrides)
        return PerfPowerFit(**base)

    def test_paper_coefficients(self):
        fit = self._fit()
        assert fit.l == -2.0
        assert fit.m == 600.0
        assert fit.n == -20000.0

    def test_linear_fit_has_zero_l(self):
        fit = self._fit(coefficients=(10.0, 50.0), kind=FitKind.LINEAR)
        assert fit.l == 0.0
        assert fit.m == 10.0
        assert fit.n == 50.0

    def test_zero_below_min(self):
        assert self._fit().predict(90.0) == 0.0

    def test_plateau_above_max(self):
        fit = self._fit()
        assert fit.predict(200.0) == fit.predict(150.0)

    def test_quadratic_inside_range(self):
        fit = self._fit()
        p = 120.0
        assert fit.predict(p) == pytest.approx(-2 * p * p + 600 * p - 20000)

    def test_clamped_at_zero(self):
        fit = self._fit(coefficients=(0.0, 1.0, -1000.0))
        assert fit.predict(100.0) == 0.0

    def test_derivative(self):
        fit = self._fit()
        assert fit.derivative(100.0) == pytest.approx(-2 * 2 * 100 + 600)

    def test_efficiency(self):
        fit = self._fit()
        assert fit.efficiency() == pytest.approx(fit.predict(150.0) / 150.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            self._fit(min_power_w=150.0, max_power_w=150.0)

    def test_negative_min_rejected(self):
        with pytest.raises(ConfigurationError):
            self._fit(min_power_w=-1.0)


class TestTrainingRun:
    def test_ingest_creates_projection(self):
        db = ProfilingDatabase()
        assert not db.has(*KEY)
        db.ingest_training_run(KEY, idle_power_w=88.0, samples=quad_samples())
        assert db.has(*KEY)
        assert KEY in db

    def test_fit_recovers_known_quadratic(self):
        db = ProfilingDatabase()
        fit = db.ingest_training_run(KEY, 88.0, quad_samples())
        assert fit.l == pytest.approx(-2.0, rel=0.01)
        assert fit.m == pytest.approx(600.0, rel=0.01)
        assert fit.n == pytest.approx(-20000.0, rel=0.01)

    def test_min_power_from_lowest_active_sample(self):
        db = ProfilingDatabase()
        fit = db.ingest_training_run(KEY, 88.0, quad_samples())
        assert fit.min_power_w == pytest.approx(100.0)

    def test_max_power_from_highest_sample(self):
        db = ProfilingDatabase()
        fit = db.ingest_training_run(KEY, 88.0, quad_samples())
        assert fit.max_power_w == pytest.approx(150.0)

    def test_too_few_samples_rejected(self):
        db = ProfilingDatabase()
        with pytest.raises(ConfigurationError):
            db.ingest_training_run(KEY, 88.0, [(100.0, 5.0)])

    def test_projection_miss_raises(self):
        db = ProfilingDatabase()
        with pytest.raises(DatabaseMissError):
            db.projection(KEY)

    def test_degree_degrades_with_few_distinct_levels(self):
        db = ProfilingDatabase(fit_kind=FitKind.QUADRATIC)
        samples = [(100.0, 500.0), (100.0, 510.0), (120.0, 700.0)]
        fit = db.ingest_training_run(KEY, 88.0, samples)
        assert fit.kind is FitKind.LINEAR


class TestOnlineUpdate:
    """Algorithm 1 lines 8-10."""

    def test_feedback_sharpens_fit(self):
        rng = np.random.default_rng(0)
        true = lambda p: -2.0 * p * p + 600.0 * p - 20000.0  # noqa: E731
        db = ProfilingDatabase()
        # Noisy, clustered training run (top of the range only).
        train = [(p, true(p) * (1 + 0.05 * rng.standard_normal())) for p in (135, 140, 145, 148, 150)]
        db.ingest_training_run(KEY, 88.0, train)
        initial_err = abs(db.projection(KEY).predict(105.0) - true(105.0))
        # Online feedback at the low-power operating points.
        for p in np.linspace(100, 150, 40):
            db.add_sample(KEY, float(p), true(float(p)))
        db.refit(KEY)
        final_err = abs(db.projection(KEY).predict(105.0) - true(105.0))
        assert final_err < initial_err

    def test_max_power_widens_with_feedback(self):
        db = ProfilingDatabase()
        db.ingest_training_run(KEY, 88.0, quad_samples())
        db.add_sample(KEY, 160.0, 25000.0)
        fit = db.refit(KEY)
        assert fit.max_power_w == pytest.approx(160.0)

    def test_min_power_narrows_with_feedback(self):
        db = ProfilingDatabase()
        db.ingest_training_run(KEY, 88.0, quad_samples())
        db.add_sample(KEY, 96.0, 2000.0)
        fit = db.refit(KEY)
        assert fit.min_power_w == pytest.approx(96.0)

    def test_zero_perf_samples_do_not_move_boundaries(self):
        db = ProfilingDatabase()
        db.ingest_training_run(KEY, 88.0, quad_samples())
        db.add_sample(KEY, 50.0, 0.0)
        fit = db.refit(KEY)
        assert fit.min_power_w == pytest.approx(100.0)

    def test_ring_buffer_caps_history(self):
        db = ProfilingDatabase(max_samples=10)
        db.ingest_training_run(KEY, 88.0, quad_samples())
        for i in range(50):
            db.add_sample(KEY, 120.0 + i * 0.1, 15000.0)
        assert db.sample_count(KEY) == 10

    def test_sample_to_unknown_key_rejected(self):
        db = ProfilingDatabase()
        with pytest.raises(DatabaseMissError):
            db.add_sample(("x", "y"), 100.0, 10.0)

    def test_negative_sample_rejected(self):
        db = ProfilingDatabase()
        db.ingest_training_run(KEY, 88.0, quad_samples())
        with pytest.raises(ConfigurationError):
            db.add_sample(KEY, -1.0, 10.0)


class TestQueries:
    def test_keys_and_len(self):
        db = ProfilingDatabase()
        db.ingest_training_run(KEY, 88.0, quad_samples())
        db.ingest_training_run(("i5-4460", "SPECjbb"), 47.0, quad_samples(powers=(55, 60, 70, 75, 79)))
        assert len(db) == 2
        assert KEY in db.keys()

    def test_efficiency_query(self):
        db = ProfilingDatabase()
        db.ingest_training_run(KEY, 88.0, quad_samples())
        fit = db.projection(KEY)
        assert db.efficiency(KEY) == pytest.approx(fit.efficiency())

    def test_fit_kinds(self):
        for kind in FitKind:
            db = ProfilingDatabase(fit_kind=kind)
            fit = db.ingest_training_run(KEY, 88.0, quad_samples())
            assert len(fit.coefficients) == kind.value + 1

    def test_bad_max_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfilingDatabase(max_samples=2)

    def test_ensure_entry_validates_envelope(self):
        db = ProfilingDatabase()
        with pytest.raises(ConfigurationError):
            db.ensure_entry(KEY, idle_power_w=100.0, max_power_w=90.0)


class TestSnapshotApi:
    @pytest.fixture
    def db(self):
        out = ProfilingDatabase()
        out.ingest_training_run(KEY, 88.0, quad_samples())
        out.ingest_training_run(
            ("i5-4460", "SPECjbb"), 47.0,
            [(55.0, 7300.0), (67.0, 12800.0), (80.0, 16600.0)],
        )
        return out

    def test_entry_is_immutable_view(self, db):
        entry = db.entry(KEY)
        assert entry.key == KEY
        assert entry.idle_power_w == 88.0
        assert entry.powers == tuple(p for p, _ in quad_samples())
        with pytest.raises(AttributeError):
            entry.idle_power_w = 1.0

    def test_entry_miss_raises(self, db):
        with pytest.raises(DatabaseMissError):
            db.entry(("Xeon-Phi", "SPECjbb"))

    def test_snapshot_insertion_order(self, db):
        keys = [entry.key for entry in db.snapshot()]
        assert keys == [KEY, ("i5-4460", "SPECjbb")]

    def test_restore_entry_round_trip(self, db):
        entry = db.entry(KEY)
        fresh = ProfilingDatabase()
        fresh.restore_entry(entry)
        restored = fresh.entry(KEY)
        assert restored == entry
        # The fit is installed verbatim, not refitted.
        assert restored.fit.coefficients == entry.fit.coefficients

    def test_restore_entry_replaces_existing(self, db):
        entry = db.entry(KEY)
        db.ingest_training_run(KEY, 88.0, quad_samples(powers=(101, 111, 121)))
        assert db.entry(KEY) != entry
        db.restore_entry(entry)
        assert db.entry(KEY) == entry

    def test_restore_rejects_bad_envelope(self, db):
        import dataclasses

        bad = dataclasses.replace(db.entry(KEY), max_power_w=10.0)
        with pytest.raises(ConfigurationError):
            ProfilingDatabase().restore_entry(bad)

    def test_restore_rejects_mismatched_samples(self, db):
        import dataclasses

        bad = dataclasses.replace(db.entry(KEY), perfs=(1.0,))
        with pytest.raises(ConfigurationError):
            ProfilingDatabase().restore_entry(bad)

    def test_restored_entry_keeps_learning(self, db):
        fresh = ProfilingDatabase()
        fresh.restore_entry(db.entry(KEY))
        fresh.add_sample(KEY, 140.0, 23000.0)
        assert len(fresh.entry(KEY).powers) == len(db.entry(KEY).powers) + 1
