"""The PAR solver (Eq. 6-8)."""

import itertools

import numpy as np
import pytest

from repro.core.database import FitKind, PerfPowerFit
from repro.core.solver import GroupModel, PARSolver
from repro.errors import SolverError


def make_fit(l, m, n, lo, hi):
    return PerfPowerFit(coefficients=(l, m, n), min_power_w=lo, max_power_w=hi)


def concave_group(name="A", count=5, t_max=100.0, lo=95.0, hi=150.0):
    """A concave quadratic peaking exactly at hi."""
    # f(p) = t_max * (1 - ((hi - p)/(hi - lo))^2), scaled so f(hi) = t_max.
    span = hi - lo
    l = -t_max / span**2
    m = 2 * t_max * hi / span**2
    n = t_max - t_max * hi**2 / span**2
    return GroupModel(name=name, count=count, fit=make_fit(l, m, n, lo, hi))


@pytest.fixture
def solver():
    return PARSolver(safety_margin=0.0)


class TestBasics:
    def test_zero_budget(self, solver):
        sol = solver.solve([concave_group()], 0.0)
        assert sol.ratios == (0.0,)
        assert sol.expected_perf == 0.0

    def test_budget_below_power_on(self, solver):
        g = concave_group(count=5, lo=95.0)
        sol = solver.solve([g], 400.0)  # 5 * 95 = 475 needed
        assert sol.expected_perf == 0.0

    def test_abundant_budget_saturates(self, solver):
        g = concave_group(count=5, t_max=100.0, hi=150.0)
        sol = solver.solve([g], 10000.0)
        assert sol.expected_perf == pytest.approx(500.0, rel=0.01)
        assert sol.per_server_w[0] == pytest.approx(150.0)

    def test_never_over_allocates_beyond_plateau(self, solver):
        g = concave_group(count=5, hi=150.0)
        sol = solver.solve([g], 10000.0)
        # Surplus stays unallocated (flows to the battery per the paper).
        assert sum(sol.ratios) < 1.0

    def test_ratios_sum_at_most_one(self, solver):
        groups = [concave_group("A", 5), concave_group("B", 5, t_max=50.0, lo=50.0, hi=80.0)]
        for budget in (500.0, 800.0, 1200.0, 2000.0):
            sol = solver.solve(groups, budget)
            assert sum(sol.ratios) <= 1.0 + 1e-9

    def test_allocation_feasible(self, solver):
        groups = [concave_group("A", 5), concave_group("B", 5, t_max=50.0, lo=50.0, hi=80.0)]
        for budget in (500.0, 700.0, 900.0, 1150.0):
            sol = solver.solve(groups, budget)
            total = sum(g.count * p for g, p in zip(groups, sol.per_server_w))
            assert total <= budget + 1e-6

    def test_empty_groups_rejected(self, solver):
        with pytest.raises(SolverError):
            solver.solve([], 100.0)

    def test_negative_budget_rejected(self, solver):
        with pytest.raises(SolverError):
            solver.solve([concave_group()], -1.0)

    def test_too_many_groups_rejected(self):
        solver = PARSolver(max_groups=2)
        groups = [concave_group(str(i)) for i in range(3)]
        with pytest.raises(SolverError):
            solver.solve(groups, 1000.0)

    def test_bad_granularity_rejected(self):
        with pytest.raises(SolverError):
            PARSolver(granularity=0.0)
        with pytest.raises(SolverError):
            PARSolver(safety_margin=-0.1)


class TestOptimality:
    """KKT + grid must match brute force on quadratic instances."""

    def _brute_force(self, groups, budget, steps=400):
        best = 0.0
        if len(groups) == 2:
            g0, g1 = groups
            for eta in np.linspace(0, 1, steps + 1):
                p0 = eta * budget / g0.count
                p1 = (1 - eta) * budget / g1.count
                for q0 in (0.0, min(p0, g0.fit.max_power_w)):
                    for q1 in (0.0, min(p1, g1.fit.max_power_w)):
                        perf = g0.count * g0.fit.predict(q0) + g1.count * g1.fit.predict(q1)
                        best = max(best, perf)
        return best

    def test_matches_brute_force_two_groups(self, solver):
        groups = [
            concave_group("A", 5, t_max=100.0, lo=95.0, hi=150.0),
            concave_group("B", 5, t_max=60.0, lo=52.0, hi=80.0),
        ]
        for budget in (550.0, 700.0, 900.0, 1100.0, 1200.0):
            sol = solver.solve(groups, budget)
            brute = self._brute_force(groups, budget)
            assert sol.expected_perf >= brute * 0.995

    def test_water_filling_equalises_marginals(self, solver):
        # With both groups strictly interior, marginal perf/W must match.
        groups = [
            concave_group("A", 1, t_max=100.0, lo=50.0, hi=200.0),
            concave_group("B", 1, t_max=80.0, lo=50.0, hi=200.0),
        ]
        sol = solver.solve(groups, 250.0)
        pa, pb = sol.per_server_w
        if 50.0 < pa < 200.0 and 50.0 < pb < 200.0:
            da = groups[0].fit.derivative(pa)
            db = groups[1].fit.derivative(pb)
            assert da == pytest.approx(db, rel=0.05)

    def test_prefers_efficient_group(self, solver):
        fast = concave_group("fast", 5, t_max=200.0, lo=50.0, hi=80.0)
        slow = concave_group("slow", 5, t_max=20.0, lo=95.0, hi=150.0)
        sol = solver.solve([fast, slow], 400.0)
        # Budget fits the fast group exactly; powering slow instead or
        # splitting below fast's saturation would lose throughput.
        assert sol.per_server_w[0] == pytest.approx(80.0, rel=0.02)
        assert sol.expected_perf == pytest.approx(1000.0, rel=0.02)

    def test_powers_off_group_when_better(self, solver):
        # 500 W: either 5 "big" at their 95 W minimum (tiny perf) or
        # 5 "small" saturated (big perf).  The solver must switch the
        # big group off.
        big = concave_group("big", 5, t_max=10.0, lo=95.0, hi=150.0)
        small = concave_group("small", 5, t_max=100.0, lo=52.0, hi=80.0)
        sol = solver.solve([big, small], 450.0)
        assert sol.per_server_w[0] == 0.0
        assert sol.per_server_w[1] > 0.0

    def test_three_groups(self, solver):
        groups = [
            concave_group("A", 5, t_max=100.0, lo=95.0, hi=150.0),
            concave_group("B", 5, t_max=40.0, lo=58.0, hi=75.0),
            concave_group("C", 5, t_max=60.0, lo=52.0, hi=80.0),
        ]
        sol = solver.solve(groups, 1000.0)
        assert sol.expected_perf > 0.0
        total = sum(g.count * p for g, p in zip(groups, sol.per_server_w))
        assert total <= 1000.0 + 1e-6

    def test_non_concave_fit_handled_by_grid(self, solver):
        # A convex (bowl) fit from degenerate samples: optimum at a box
        # corner; the grid safety net must still find something sane.
        convex = GroupModel("X", 2, make_fit(0.5, -50.0, 2000.0, 60.0, 100.0))
        sol = solver.solve([convex], 200.0)
        assert sol.expected_perf == pytest.approx(2 * convex.fit.predict(100.0), rel=0.05)


class TestSafetyMargin:
    def test_margin_lifts_lower_bound(self):
        solver = PARSolver(safety_margin=0.10)
        g = concave_group("A", 1, lo=100.0, hi=200.0)
        sol = solver.solve([g], 105.0)
        # 105 < 100 * 1.10: the margin forbids powering this server.
        assert sol.expected_perf == 0.0

    def test_margin_respected_in_allocations(self):
        solver = PARSolver(safety_margin=0.05)
        g = concave_group("A", 1, lo=100.0, hi=200.0)
        sol = solver.solve([g], 500.0)
        assert sol.per_server_w[0] >= 100.0 * 1.05 - 1e-9


class TestCompositions:
    def test_ten_percent_grid_size(self):
        # Compositions of 10 steps into 2 groups: 11 vectors.
        assert len(PARSolver.compositions(2, 0.1)) == 11

    def test_three_groups_composition_count(self):
        # Stars and bars: C(10 + 2, 2) = 66.
        assert len(PARSolver.compositions(3, 0.1)) == 66

    def test_all_sum_to_one(self):
        for ratios in PARSolver.compositions(3, 0.1):
            assert sum(ratios) == pytest.approx(1.0)

    def test_bad_granularity_rejected(self):
        with pytest.raises(SolverError):
            PARSolver.compositions(2, 0.3)

    def test_bad_k_rejected(self):
        with pytest.raises(SolverError):
            PARSolver.compositions(0, 0.1)

    def test_exhaustive_finds_best(self):
        # Objective peaked at (0.6, 0.4).
        def objective(ratios):
            return -abs(ratios[0] - 0.6)

        best, value = PARSolver.exhaustive(2, objective, 0.1)
        assert best == pytest.approx((0.6, 0.4))
        assert value == pytest.approx(0.0)


class TestMemoization:
    def groups(self):
        return [
            concave_group("A", 5),
            concave_group("B", 5, t_max=50.0, lo=50.0, hi=80.0),
        ]

    def test_cached_solutions_match_cold_solves_over_budget_cycle(self):
        # The constrained-supply sweep re-poses the same programs every
        # time the budget cycle wraps; a warm solver must answer exactly
        # as a cache-disabled one.
        from repro.sim.experiment import ExperimentConfig

        warm = PARSolver(safety_margin=0.0)
        cold = PARSolver(safety_margin=0.0, cache_size=0)
        budgets = [f * 1370.0 for f in ExperimentConfig.INSUFFICIENT_SWEEP] * 3
        for budget in budgets:
            assert warm.solve(self.groups(), budget) == cold.solve(self.groups(), budget)
        sweep = len(ExperimentConfig.INSUFFICIENT_SWEEP)
        assert warm.cache_misses == sweep
        assert warm.cache_hits == len(budgets) - sweep
        assert cold.cache_hits == cold.cache_misses == 0

    def test_hit_returns_the_memoized_object(self):
        solver = PARSolver(safety_margin=0.0)
        first = solver.solve(self.groups(), 900.0)
        second = solver.solve(self.groups(), 900.0)
        assert second is first  # frozen, so sharing is safe

    def test_budget_change_misses(self):
        solver = PARSolver(safety_margin=0.0)
        solver.solve(self.groups(), 900.0)
        solver.solve(self.groups(), 901.0)
        assert solver.cache_misses == 2
        assert solver.cache_hits == 0

    def test_fit_change_misses(self):
        solver = PARSolver(safety_margin=0.0)
        solver.solve([concave_group("A", 5, t_max=100.0)], 900.0)
        solver.solve([concave_group("A", 5, t_max=101.0)], 900.0)
        assert solver.cache_misses == 2

    def test_cache_info_and_clear(self):
        solver = PARSolver(safety_margin=0.0)
        solver.solve(self.groups(), 900.0)
        solver.solve(self.groups(), 900.0)
        info = solver.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == pytest.approx(0.5)
        assert info["size"] == 1
        solver.clear_cache()
        assert solver.cache_info() == {
            "hits": 0, "misses": 0, "stale_hits": 0, "size": 0, "hit_rate": 0.0,
        }

    def test_fifo_eviction_bounds_the_cache(self):
        solver = PARSolver(safety_margin=0.0, cache_size=4)
        for budget in (600.0, 700.0, 800.0, 900.0, 1000.0):
            solver.solve(self.groups(), budget)
        assert solver.cache_info()["size"] == 4
        # The oldest entry (600 W) was evicted: solving it again misses.
        solver.solve(self.groups(), 600.0)
        assert solver.cache_misses == 6

    def test_disabled_cache_stores_nothing(self):
        solver = PARSolver(safety_margin=0.0, cache_size=0)
        a = solver.solve(self.groups(), 900.0)
        b = solver.solve(self.groups(), 900.0)
        assert a == b and a is not b
        assert solver.cache_info()["size"] == 0

    def test_negative_cache_size_rejected(self):
        with pytest.raises(SolverError):
            PARSolver(cache_size=-1)

    def test_validation_still_runs_on_would_be_hits(self):
        solver = PARSolver(safety_margin=0.0, max_groups=2)
        solver.solve(self.groups(), 900.0)
        with pytest.raises(SolverError):
            solver.solve(self.groups(), -1.0)

    def test_partial_group_solver_shares_the_cache_machinery(self):
        from repro.core.solver import PartialGroupSolver

        solver = PartialGroupSolver(safety_margin=0.0)
        first = solver.solve(self.groups(), 700.0)
        second = solver.solve(self.groups(), 700.0)
        assert second is first
        assert solver.cache_hits == 1
        assert first.powered_counts is not None


class TestStaleCacheHits:
    """Quantized budget keys may collide across distinct budgets; a hit
    must be revalidated against the *exact* budget before being replayed
    (the cache-infeasibility fix)."""

    class CoarseSolver(PARSolver):
        # Widen the quantum so budgets 740 W and 660 W share a key
        # (round(b / 100) == 7 for both) and the collision is testable.
        CACHE_BUDGET_QUANTUM_W = 100.0

    def groups(self):
        return [concave_group("A", 5, lo=95.0, hi=150.0)]

    def test_stale_hit_is_revalidated_and_resolved(self):
        solver = self.CoarseSolver(safety_margin=0.0)
        big = solver.solve(self.groups(), 740.0)
        assert sum(5 * p for p in big.per_server_w) > 660.0

        second = solver.solve(self.groups(), 660.0)
        total = sum(5 * p for p in second.per_server_w)
        assert total <= 660.0 + 1e-6  # feasible for the *new* budget
        assert solver.cache_stale_hits == 1
        assert solver.cache_hits == 0
        assert solver.cache_info()["stale_hits"] == 1

    def test_stale_entry_is_overwritten(self):
        solver = self.CoarseSolver(safety_margin=0.0)
        solver.solve(self.groups(), 740.0)
        second = solver.solve(self.groups(), 660.0)
        third = solver.solve(self.groups(), 660.0)
        assert third is second  # the re-solve replaced the entry
        assert solver.cache_hits == 1
        assert solver.cache_stale_hits == 1

    def test_reintroduced_bug_yields_an_overdraw_the_check_catches(self):
        # Re-introduce the pre-fix behavior (trust any key collision)
        # and show (a) it replays an over-budget allocation and (b) the
        # real feasibility check flags exactly that allocation.
        class BuggySolver(self.CoarseSolver):
            @staticmethod
            def _feasible_for(solution, groups, total_power_w):
                return True

        solver = BuggySolver(safety_margin=0.0)
        groups = self.groups()
        solver.solve(groups, 740.0)
        stale = solver.solve(groups, 660.0)
        total = sum(5 * p for p in stale.per_server_w)
        assert total > 660.0 + 1.0  # the bug: budget silently violated
        assert not PARSolver._feasible_for(stale, groups, 660.0)
        assert PARSolver._feasible_for(stale, groups, 740.0)


class TestSolveVia:
    def groups(self):
        return [
            concave_group("A", 5),
            concave_group("B", 5, t_max=50.0, lo=50.0, hi=80.0),
        ]

    def test_unknown_method_rejected(self, solver):
        with pytest.raises(SolverError):
            solver.solve_via(self.groups(), 900.0, "annealing")

    def test_methods_agree_on_a_simple_program(self, solver):
        sols = {
            m: solver.solve_via(self.groups(), 900.0, m)
            for m in PARSolver.METHODS
        }
        kkt = sols["kkt"].expected_perf
        assert sols["slsqp"].expected_perf == pytest.approx(kkt, rel=1e-3)
        assert sols["grid"].expected_perf <= kkt + 1e-6
        assert sols["grid"].expected_perf >= 0.75 * kkt

    def test_zero_budget_is_the_zero_solution(self, solver):
        for method in PARSolver.METHODS:
            sol = solver.solve_via(self.groups(), 0.0, method)
            assert sol.expected_perf == 0.0
            assert set(sol.per_server_w) == {0.0}

    def test_method_is_recorded(self, solver):
        for method in PARSolver.METHODS:
            sol = solver.solve_via(self.groups(), 900.0, method)
            assert sol.method == method

    def test_forced_methods_never_overdraw(self, solver):
        from repro.core.solver import FEASIBILITY_SLACK_W

        groups = self.groups()
        for budget in (500.0, 800.0, 1100.0, 2000.0):
            for method in PARSolver.METHODS:
                sol = solver.solve_via(groups, budget, method)
                total = sum(
                    g.count * p for g, p in zip(groups, sol.per_server_w)
                )
                assert total <= budget + FEASIBILITY_SLACK_W
