"""Profiling-database JSON persistence."""

import json

import pytest

from repro.core.database import FitKind, ProfilingDatabase
from repro.core.persistence import (
    FORMAT_VERSION,
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.errors import ConfigurationError

KEY = ("E5-2620", "SPECjbb")
SAMPLES = [(100.0, 11000.0), (112.0, 15500.0), (125.0, 19000.0), (150.0, 24000.0)]


@pytest.fixture
def db():
    out = ProfilingDatabase(fit_kind=FitKind.QUADRATIC, max_samples=64)
    out.ingest_training_run(KEY, 88.0, SAMPLES)
    out.ingest_training_run(
        ("i5-4460", "SPECjbb"), 47.0,
        [(55.0, 7300.0), (67.0, 12800.0), (80.0, 16600.0)],
    )
    return out


class TestRoundTrip:
    def test_dict_round_trip(self, db):
        restored = database_from_dict(database_to_dict(db))
        assert restored.keys() == db.keys()
        assert restored.fit_kind is db.fit_kind
        assert restored.max_samples == db.max_samples

    def test_fits_survive(self, db):
        restored = database_from_dict(database_to_dict(db))
        for key in db.keys():
            original = db.projection(key)
            loaded = restored.projection(key)
            assert loaded.coefficients == pytest.approx(original.coefficients)
            assert loaded.min_power_w == original.min_power_w
            assert loaded.max_power_w == original.max_power_w
            assert loaded.kind is original.kind

    def test_samples_survive_and_refit_matches(self, db):
        restored = database_from_dict(database_to_dict(db))
        assert restored.sample_count(KEY) == db.sample_count(KEY)
        a = restored.refit(KEY)
        b = db.refit(KEY)
        assert a.coefficients == pytest.approx(b.coefficients)

    def test_file_round_trip(self, db, tmp_path):
        path = tmp_path / "profiles.json"
        save_database(db, path)
        restored = load_database(path)
        assert restored.keys() == db.keys()
        # Document is human-readable JSON.
        doc = json.loads(path.read_text())
        assert doc["format_version"] == FORMAT_VERSION

    def test_restored_db_keeps_learning(self, db):
        restored = database_from_dict(database_to_dict(db))
        restored.add_sample(KEY, 140.0, 22000.0)
        fit = restored.refit(KEY)
        assert fit.n_samples >= 5

    def test_entry_without_fit_survives(self):
        db = ProfilingDatabase()
        db.ensure_entry(KEY, 88.0, 150.0)
        restored = database_from_dict(database_to_dict(db))
        assert not restored.has(*KEY)
        assert KEY in restored.keys()


class TestValidation:
    def test_version_mismatch_rejected(self, db):
        doc = database_to_dict(db)
        doc["format_version"] = 999
        with pytest.raises(ConfigurationError):
            database_from_dict(doc)

    def test_malformed_document_rejected(self):
        with pytest.raises(ConfigurationError):
            database_from_dict({"format_version": FORMAT_VERSION})

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(ConfigurationError):
            load_database(path)

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ConfigurationError):
            load_database(path)

    def test_non_dict_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            load_database(path)


class TestPredictorPersistence:
    def _primed(self):
        from repro.core.predictor import HoltPredictor

        p = HoltPredictor(alpha=0.6, beta=0.3)
        for v in (120.0, 150.0, 170.0, 160.0):
            p.observe(v)
        return p

    def test_round_trip_bit_identical(self):
        from repro.core.persistence import predictor_from_dict, predictor_to_dict

        p = self._primed()
        restored = predictor_from_dict(predictor_to_dict(p))
        assert restored.state_dict() == p.state_dict()
        assert restored.predict(4) == p.predict(4)

    def test_json_round_trip(self):
        from repro.core.persistence import predictor_from_dict, predictor_to_dict

        p = self._primed()
        document = json.loads(json.dumps(predictor_to_dict(p)))
        assert predictor_from_dict(document).state_dict() == p.state_dict()

    def test_version_mismatch_rejected(self):
        from repro.core.persistence import predictor_from_dict, predictor_to_dict

        document = predictor_to_dict(self._primed())
        document["format_version"] = 99
        with pytest.raises(ConfigurationError):
            predictor_from_dict(document)

    def test_malformed_rejected(self):
        from repro.core.persistence import predictor_from_dict

        with pytest.raises(ConfigurationError):
            predictor_from_dict({"format_version": FORMAT_VERSION})


class TestPublicSurfaceOnly:
    def test_database_to_dict_uses_snapshot_api(self, db):
        """Serialisation must survive a database exposing only its public API."""

        class Facade:
            fit_kind = db.fit_kind
            max_samples = db.max_samples

            def snapshot(self):
                return db.snapshot()

        assert database_to_dict(Facade()) == database_to_dict(db)
