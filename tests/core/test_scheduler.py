"""The Adaptive Scheduler (Fig. 5)."""

import pytest

from repro.core.database import ProfilingDatabase
from repro.core.monitor import ServerObservation
from repro.core.policies import GroupInfo, UniformPolicy, make_policy
from repro.core.scheduler import AdaptiveScheduler
from repro.core.sources import PowerCase
from repro.errors import ConfigurationError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource

E5_KEY = ("E5-2620", "SPECjbb")
I5_KEY = ("i5-4460", "SPECjbb")
GROUPS = (GroupInfo("E5-2620", 5, E5_KEY), GroupInfo("i5-4460", 5, I5_KEY))

TRAIN_E5 = [(100.0, 11000.0), (112.0, 15500.0), (125.0, 19000.0), (150.0, 24000.0)]
TRAIN_I5 = [(55.0, 7300.0), (61.0, 10300.0), (67.0, 12800.0), (80.0, 16600.0)]


def make_scheduler(policy_name="GreenHetero"):
    return AdaptiveScheduler(make_policy(policy_name))


class TestPrediction:
    def test_forecast_requires_history(self):
        with pytest.raises(ConfigurationError):
            make_scheduler().forecast()

    def test_observe_then_forecast(self):
        s = make_scheduler()
        s.observe(500.0, 1000.0)
        renewable, demand = s.forecast()
        assert renewable == pytest.approx(500.0)
        assert demand == pytest.approx(1000.0)

    def test_pretrain_fits_constants(self):
        s = make_scheduler()
        ramp = [float(i * 10) for i in range(40)]
        s.pretrain_predictors(ramp, [1000.0] * 40)
        renewable, demand = s.forecast()
        assert renewable == pytest.approx(400.0, abs=20.0)
        assert demand == pytest.approx(1000.0, abs=10.0)


class TestSourcePlanning:
    def test_plan_sources_uses_forecasts(self):
        s = make_scheduler()
        s.observe(2000.0, 1000.0)
        decision = s.plan_sources(BatteryBank(), GridSource(), 900.0)
        assert decision.case is PowerCase.A


class TestDatabaseFlow:
    def test_missing_pairs_before_training(self):
        s = make_scheduler()
        assert s.missing_pairs(GROUPS) == [E5_KEY, I5_KEY]

    def test_ingest_clears_missing(self):
        s = make_scheduler()
        s.ingest_training_run(E5_KEY, 88.0, TRAIN_E5)
        assert s.missing_pairs(GROUPS) == [I5_KEY]

    def test_feedback_updates_database_when_enabled(self):
        s = make_scheduler("GreenHetero")
        s.ingest_training_run(E5_KEY, 88.0, TRAIN_E5)
        before = s.database.sample_count(E5_KEY)
        obs = [ServerObservation(0, 120.0, 17000.0, 8, 0.0)]
        s.feed_back(obs, GROUPS)
        assert s.database.sample_count(E5_KEY) == before + 1

    def test_feedback_noop_for_static_policy(self):
        s = make_scheduler("GreenHetero-a")
        s.ingest_training_run(E5_KEY, 88.0, TRAIN_E5)
        before = s.database.sample_count(E5_KEY)
        s.feed_back([ServerObservation(0, 120.0, 17000.0, 8, 0.0)], GROUPS)
        assert s.database.sample_count(E5_KEY) == before

    def test_zero_throughput_feedback_skipped(self):
        s = make_scheduler("GreenHetero")
        s.ingest_training_run(E5_KEY, 88.0, TRAIN_E5)
        before = s.database.sample_count(E5_KEY)
        s.feed_back([ServerObservation(0, 3.0, 0.0, 1, 0.0)], GROUPS)
        assert s.database.sample_count(E5_KEY) == before


class TestAllocation:
    def test_allocate_delegates_to_policy(self):
        s = AdaptiveScheduler(UniformPolicy())
        ratios = s.allocate(1000.0, GROUPS)
        assert ratios == pytest.approx((0.5, 0.5))

    def test_allocate_with_solver_policy(self):
        s = make_scheduler("GreenHetero")
        s.ingest_training_run(E5_KEY, 88.0, TRAIN_E5)
        s.ingest_training_run(I5_KEY, 47.0, TRAIN_I5)
        ratios = s.allocate(1000.0, GROUPS)
        assert sum(ratios) <= 1.0 + 1e-9
        assert all(r >= 0 for r in ratios)

    def test_default_components_created(self):
        s = AdaptiveScheduler(UniformPolicy())
        assert isinstance(s.database, ProfilingDatabase)
        assert s.selector is not None
