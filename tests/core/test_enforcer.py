"""Enforcer: SPC state mapping and PSC flow execution."""

import pytest

from repro.core.enforcer import Enforcer, ServerPowerController
from repro.core.sources import PowerCase, SourceDecision
from repro.errors import PowerError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.traces.nrel import Weather, synthesize_irradiance


@pytest.fixture
def servers():
    rack = Rack([("E5-2620", 2), ("i5-4460", 3)], "SPECjbb")
    return rack.build_servers()


class TestSPC:
    def test_splits_group_budget_evenly(self, servers):
        enforced = ServerPowerController.apply(servers, (260.0, 210.0))
        assert enforced.per_server_budget_w == pytest.approx((130.0, 70.0))

    def test_all_servers_in_group_share_state(self, servers):
        ServerPowerController.apply(servers, (260.0, 210.0))
        for group in servers:
            states = {s.state.index for s in group}
            assert len(states) == 1

    def test_zero_budget_turns_group_off(self, servers):
        enforced = ServerPowerController.apply(servers, (0.0, 210.0))
        assert enforced.state_indices[0] == 0  # OFF
        assert servers[0][0].state.is_off

    def test_below_min_active_sleeps(self, servers):
        # 2 E5-2620 at 40 W each cannot run: SLEEP state.
        enforced = ServerPowerController.apply(servers, (80.0, 210.0))
        assert enforced.state_indices[0] == 1

    def test_negative_budget_rejected(self, servers):
        with pytest.raises(PowerError):
            ServerPowerController.apply(servers, (-10.0, 210.0))

    def test_length_mismatch_rejected(self, servers):
        with pytest.raises(PowerError):
            ServerPowerController.apply(servers, (100.0,))

    def test_enforced_draw_fits_budget(self, servers):
        budgets = (260.0, 210.0)
        ServerPowerController.apply(servers, budgets)
        for group, budget in zip(servers, budgets):
            total_draw = sum(s.run().power_w for s in group)
            assert total_draw <= budget + 1e-6


class TestPSC:
    def test_executes_decision_against_pdu(self):
        trace = synthesize_irradiance(days=1, seed=8)
        pdu = PDU(
            SolarFarm.sized_for(trace, 1500.0),
            BatteryBank(),
            GridSource(budget_w=1000.0),
        )
        enforcer = Enforcer(pdu)
        decision = SourceDecision(
            case=PowerCase.C,
            rack_budget_w=800.0,
            use_battery=True,
            grid_charges_battery=False,
            predicted_renewable_w=0.0,
            predicted_demand_w=800.0,
        )
        flows = enforcer.psc.apply(decision, actual_load_w=750.0, time_s=0.0, duration_s=900.0)
        assert flows.delivered_w == pytest.approx(750.0)
        assert flows.breakdown.battery_to_load_w == pytest.approx(750.0)

    def test_battery_disabled_routes_to_grid(self):
        trace = synthesize_irradiance(days=1, seed=8)
        pdu = PDU(
            SolarFarm.sized_for(trace, 1500.0),
            BatteryBank(),
            GridSource(budget_w=1000.0),
        )
        enforcer = Enforcer(pdu)
        decision = SourceDecision(
            case=PowerCase.C,
            rack_budget_w=800.0,
            use_battery=False,
            grid_charges_battery=True,
            predicted_renewable_w=0.0,
            predicted_demand_w=800.0,
        )
        flows = enforcer.psc.apply(decision, 750.0, 0.0, 900.0)
        assert flows.breakdown.battery_to_load_w == 0.0
        assert flows.breakdown.grid_to_load_w == pytest.approx(750.0)
