"""SLSQP polish stage of the PAR solver."""

import pytest

from repro.core.database import PerfPowerFit
from repro.core.solver import GroupModel, PARSolver


def concave(t_max, lo, hi):
    span = hi - lo
    l = -t_max / span**2
    m = 2 * t_max * hi / span**2
    n = t_max - t_max * hi**2 / span**2
    return PerfPowerFit(coefficients=(l, m, n), min_power_w=lo, max_power_w=hi)


THREE_GROUPS = [
    GroupModel("A", 5, concave(100.0, 95.0, 150.0)),
    GroupModel("B", 5, concave(40.0, 58.0, 75.0)),
    GroupModel("C", 5, concave(60.0, 52.0, 80.0)),
]


class TestPolish:
    def test_polish_never_hurts(self):
        plain = PARSolver(scipy_polish=False, safety_margin=0.0)
        polished = PARSolver(scipy_polish=True, safety_margin=0.0)
        for budget in (700.0, 900.0, 1100.0, 1300.0):
            a = plain.solve(THREE_GROUPS, budget).expected_perf
            b = polished.solve(THREE_GROUPS, budget).expected_perf
            assert b >= a - 1e-9

    def test_polish_beats_coarse_grid_alone(self):
        # Disable the KKT advantage by using a very coarse grid solver
        # vs the same with polish: polish must close the gap.
        coarse = PARSolver(
            coarse_granularity=0.25, granularity=0.25,
            scipy_polish=False, safety_margin=0.0,
        )
        refined = PARSolver(
            coarse_granularity=0.25, granularity=0.25,
            scipy_polish=True, safety_margin=0.0,
        )
        exact = PARSolver(safety_margin=0.0)
        budget = 1000.0
        best = exact.solve(THREE_GROUPS, budget).expected_perf
        with_polish = refined.solve(THREE_GROUPS, budget).expected_perf
        without = coarse.solve(THREE_GROUPS, budget).expected_perf
        assert with_polish >= without - 1e-9
        assert with_polish >= 0.98 * best

    def test_polish_respects_budget(self):
        solver = PARSolver(scipy_polish=True, safety_margin=0.0)
        for budget in (600.0, 850.0, 1200.0):
            sol = solver.solve(THREE_GROUPS, budget)
            total = sum(
                g.count * p for g, p in zip(THREE_GROUPS, sol.per_server_w)
            )
            assert total <= budget + 1e-4

    def test_polish_respects_boxes(self):
        solver = PARSolver(scipy_polish=True, safety_margin=0.05)
        sol = solver.solve(THREE_GROUPS, 1500.0)
        for group, p in zip(THREE_GROUPS, sol.per_server_w):
            if p > 0:
                assert p >= group.fit.min_power_w * 1.05 - 1e-6
                assert p <= group.fit.max_power_w + 1e-6

    def test_method_label(self):
        # With exact KKT available the polish rarely wins, but the label
        # must be one of the three mechanisms.
        solver = PARSolver(scipy_polish=True, safety_margin=0.0)
        sol = solver.solve(THREE_GROUPS, 1000.0)
        assert sol.method in ("kkt", "grid", "slsqp")
