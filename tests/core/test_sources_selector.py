"""Power-source selection: Cases A/B/C with grid-mode hysteresis (Fig. 6)."""

import pytest

from repro.core.sources import PowerCase, SourceSelector
from repro.errors import PowerError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource

EPOCH = 900.0


@pytest.fixture
def battery():
    return BatteryBank()


@pytest.fixture
def drained():
    bank = BatteryBank(initial_soc_fraction=0.6)  # exactly at the DoD floor
    assert bank.at_dod_floor
    return bank


@pytest.fixture
def grid():
    return GridSource(budget_w=1000.0)


class TestCaseA:
    def test_renewable_covers_demand(self, battery, grid):
        sel = SourceSelector()
        d = sel.decide(1500.0, 1100.0, battery, grid, EPOCH)
        assert d.case is PowerCase.A
        assert d.rack_budget_w == 1100.0
        assert not d.use_battery
        assert not d.grid_charges_battery
        assert d.sufficient

    def test_case_a_resets_grid_mode(self, drained, grid):
        sel = SourceSelector()
        sel.decide(0.0, 1100.0, drained, grid, EPOCH)  # enters grid mode
        assert sel.grid_mode
        sel.decide(1500.0, 1100.0, drained, grid, EPOCH)
        assert not sel.grid_mode


class TestCaseB:
    def test_battery_covers_gap(self, battery, grid):
        sel = SourceSelector()
        d = sel.decide(600.0, 1100.0, battery, grid, EPOCH)
        assert d.case is PowerCase.B
        assert d.rack_budget_w == 1100.0
        assert d.use_battery
        assert not d.grid_charges_battery

    def test_drained_battery_brings_grid(self, drained, grid):
        sel = SourceSelector()
        d = sel.decide(600.0, 2000.0, drained, grid, EPOCH)
        assert d.case is PowerCase.B
        assert d.rack_budget_w == pytest.approx(1600.0)  # renewable + grid cap
        assert not d.use_battery
        assert d.grid_charges_battery
        assert not d.sufficient


class TestCaseC:
    def test_battery_alone_at_night(self, battery, grid):
        sel = SourceSelector()
        d = sel.decide(0.0, 1100.0, battery, grid, EPOCH)
        assert d.case is PowerCase.C
        assert d.rack_budget_w == 1100.0
        assert d.use_battery

    def test_renewable_floor_counts_as_night(self, battery, grid):
        sel = SourceSelector(renewable_floor_w=5.0)
        d = sel.decide(4.0, 1100.0, battery, grid, EPOCH)
        assert d.case is PowerCase.C

    def test_grid_takes_over_when_battery_cannot_sustain(self, drained, grid):
        sel = SourceSelector()
        d = sel.decide(0.0, 1100.0, drained, grid, EPOCH)
        assert d.case is PowerCase.C
        assert d.rack_budget_w == pytest.approx(1000.0)  # the grid cap
        assert not d.use_battery
        assert d.grid_charges_battery
        assert not d.sufficient

    def test_budget_capped_at_demand_on_grid(self, drained, grid):
        sel = SourceSelector()
        d = sel.decide(0.0, 800.0, drained, grid, EPOCH)
        assert d.rack_budget_w == pytest.approx(800.0)


class TestHysteresis:
    """Grid mode is sticky until Case A or a full battery."""

    def test_stays_on_grid_after_takeover(self, grid):
        bank = BatteryBank(initial_soc_fraction=0.6)
        sel = SourceSelector()
        sel.decide(0.0, 1100.0, bank, grid, EPOCH)
        assert sel.grid_mode
        # Trickle-charge the battery a little: must NOT flip back.
        bank.charge(1200.0, 3600.0)
        d = sel.decide(0.0, 1100.0, bank, grid, EPOCH)
        assert sel.grid_mode
        assert not d.use_battery

    def test_full_battery_exits_grid_mode(self, grid):
        bank = BatteryBank(initial_soc_fraction=0.6)
        sel = SourceSelector()
        sel.decide(0.0, 1100.0, bank, grid, EPOCH)
        bank.soc_wh = bank.capacity_wh  # fully recharged
        d = sel.decide(0.0, 1100.0, bank, grid, EPOCH)
        assert not sel.grid_mode
        assert d.use_battery

    def test_case_b_sticky_too(self, grid):
        bank = BatteryBank(initial_soc_fraction=0.6)
        sel = SourceSelector()
        sel.decide(400.0, 1100.0, bank, grid, EPOCH)
        assert sel.grid_mode
        bank.charge(1200.0, 1800.0)
        d = sel.decide(400.0, 1100.0, bank, grid, EPOCH)
        assert not d.use_battery


class TestValidation:
    def test_negative_forecasts_rejected(self, battery, grid):
        sel = SourceSelector()
        with pytest.raises(PowerError):
            sel.decide(-1.0, 100.0, battery, grid, EPOCH)
        with pytest.raises(PowerError):
            sel.decide(100.0, -1.0, battery, grid, EPOCH)

    def test_negative_floor_rejected(self):
        with pytest.raises(PowerError):
            SourceSelector(renewable_floor_w=-1.0)


class TestRationedSelector:
    """The beyond-the-paper night-rationing extension."""

    def _make(self, night_h=12.0):
        from repro.core.sources import RationedSourceSelector

        return RationedSourceSelector(night_length_s=night_h * 3600.0)

    def test_rations_battery_at_night(self, battery, grid):
        sel = self._make()
        d = sel.decide(0.0, 2000.0, battery, grid, EPOCH)
        assert d.case is PowerCase.C
        # 4800 Wh usable over ~12 h of night -> ~400 W ration.
        assert d.battery_cap_w == pytest.approx(
            battery.usable_wh * 3600.0 / (12 * 3600.0 - EPOCH), rel=0.05
        )
        # Budget = ration + grid base, below full demand.
        assert d.rack_budget_w == pytest.approx(d.battery_cap_w + 1000.0, rel=0.01)
        assert d.rack_budget_w < 2000.0

    def test_budget_capped_at_demand(self, battery, grid):
        sel = self._make()
        d = sel.decide(0.0, 900.0, battery, grid, EPOCH)
        assert d.rack_budget_w == pytest.approx(900.0)

    def test_ration_grows_as_night_ends(self, battery, grid):
        sel = self._make(night_h=2.0)
        first = sel.decide(0.0, 1300.0, battery, grid, EPOCH)
        for _ in range(6):
            last = sel.decide(0.0, 1300.0, battery, grid, EPOCH)
        # Same energy over less remaining time -> a larger ration.
        assert last.battery_cap_w > first.battery_cap_w

    def test_daylight_resets_dark_clock(self, battery, grid):
        sel = self._make()
        sel.decide(0.0, 1300.0, battery, grid, EPOCH)
        sel.decide(2000.0, 1300.0, battery, grid, EPOCH)  # Case A day epoch
        fresh = sel.decide(0.0, 1300.0, battery, grid, EPOCH)
        assert fresh.battery_cap_w == pytest.approx(
            battery.usable_wh * 3600.0 / (12 * 3600.0 - EPOCH), rel=0.05
        )

    def test_case_a_and_b_defer_to_base(self, battery, grid):
        sel = self._make()
        a = sel.decide(2000.0, 1100.0, battery, grid, EPOCH)
        assert a.case is PowerCase.A and a.battery_cap_w is None
        b = sel.decide(600.0, 1100.0, battery, grid, EPOCH)
        assert b.case is PowerCase.B and b.battery_cap_w is None

    def test_bad_night_length_rejected(self):
        from repro.core.sources import RationedSourceSelector
        from repro.errors import PowerError

        with pytest.raises(PowerError):
            RationedSourceSelector(night_length_s=0.0)


class TestCarbonAwareSelector:
    """The carbon-first extension: shed performance, not carbon."""

    def _make(self, cap=0.3):
        from repro.core.sources import CarbonAwareSelector

        return CarbonAwareSelector(grid_cap_fraction=cap)

    def test_night_grid_capped(self, drained, grid):
        sel = self._make(cap=0.3)
        d = sel.decide(0.0, 1100.0, drained, grid, EPOCH)
        assert d.rack_budget_w == pytest.approx(0.3 * 1000.0)
        assert not d.grid_charges_battery

    def test_zero_cap_is_pure_green(self, drained, grid):
        sel = self._make(cap=0.0)
        d = sel.decide(0.0, 1100.0, drained, grid, EPOCH)
        assert d.rack_budget_w == 0.0

    def test_battery_phase_unchanged(self, battery, grid):
        from repro.core.sources import SourceSelector

        carbon = self._make()
        base = SourceSelector()
        a = carbon.decide(0.0, 1100.0, battery, grid, EPOCH)
        b = base.decide(0.0, 1100.0, battery, grid, EPOCH)
        assert a.rack_budget_w == b.rack_budget_w
        assert a.use_battery and b.use_battery

    def test_case_a_unchanged(self, battery, grid):
        sel = self._make()
        d = sel.decide(2000.0, 1100.0, battery, grid, EPOCH)
        assert d.case is PowerCase.A
        assert d.rack_budget_w == 1100.0

    def test_case_b_grid_mode_capped(self, drained, grid):
        sel = self._make(cap=0.5)
        d = sel.decide(400.0, 1500.0, drained, grid, EPOCH)
        assert d.case is PowerCase.B
        assert d.rack_budget_w == pytest.approx(400.0 + 500.0)

    def test_bad_cap_rejected(self):
        from repro.core.sources import CarbonAwareSelector

        with pytest.raises(PowerError):
            CarbonAwareSelector(grid_cap_fraction=1.5)
