"""Property-style invariants of the PAR solver.

Randomized (but seeded) racks of two or three server types with concave
quadratic perf/power fits, solved across a sweep of budgets.  Whatever
the instance, the solver must respect its contract:

* allocated ratios sum to at most 1 (never over-allocates the budget),
* every per-server operating point is either exactly 0 (powered off) or
  inside the fit's validity interval ``[min_power_w, max_power_w]``,
* expected performance is non-negative and monotone-safe at the
  extremes (zero budget -> zero perf; saturating budget -> every server
  at its peak).
"""

import random

import pytest

from repro.core.database import PerfPowerFit
from repro.core.solver import GroupModel, PARSolver


def concave_fit(rng):
    """A random concave quadratic peaking exactly at ``max_power_w``."""
    lo = rng.uniform(40.0, 120.0)
    hi = lo * rng.uniform(1.3, 2.2)
    t_max = rng.uniform(50.0, 5000.0)
    span = hi - lo
    return PerfPowerFit(
        coefficients=(
            -t_max / span**2,
            2 * t_max * hi / span**2,
            t_max - t_max * hi**2 / span**2,
        ),
        min_power_w=lo,
        max_power_w=hi,
    )


def random_rack(rng):
    n_groups = rng.choice([2, 3])
    return [
        GroupModel(
            name=f"G{i}",
            count=rng.randint(1, 8),
            fit=concave_fit(rng),
        )
        for i in range(n_groups)
    ]


def budget_sweep(groups, rng):
    """Budgets spanning hopeless to saturating for this instance."""
    saturate = sum(g.count * g.fit.max_power_w for g in groups)
    fractions = [0.0, 0.05, 0.2, 0.5, 0.8, 1.0, 1.3]
    return [f * saturate for f in fractions] + [rng.uniform(0.0, saturate)]


@pytest.mark.parametrize("seed", range(12))
def test_solver_invariants_hold_on_random_racks(seed):
    rng = random.Random(2021 + seed)
    solver = PARSolver(safety_margin=0.0)
    groups = random_rack(rng)
    for budget in budget_sweep(groups, rng):
        sol = solver.solve(groups, budget)

        assert sum(sol.ratios) <= 1.0 + 1e-9
        assert all(r >= 0.0 for r in sol.ratios)
        assert sol.expected_perf >= 0.0

        for g, per_server in zip(groups, sol.per_server_w):
            if per_server == 0.0:
                continue  # powered off is always legal
            assert g.fit.min_power_w - 1e-6 <= per_server, (seed, budget)
            assert per_server <= g.fit.max_power_w + 1e-6, (seed, budget)

        # The allocation must actually fit in the budget.
        spent = sum(
            g.count * p for g, p in zip(groups, sol.per_server_w)
        )
        assert spent <= budget + 1e-6


@pytest.mark.parametrize("seed", range(4))
def test_extreme_budgets(seed):
    rng = random.Random(7 + seed)
    solver = PARSolver(safety_margin=0.0)
    groups = random_rack(rng)

    assert solver.solve(groups, 0.0).expected_perf == 0.0

    saturate = sum(g.count * g.fit.max_power_w for g in groups)
    peak = sum(g.count * g.fit.predict(g.fit.max_power_w) for g in groups)
    sol = solver.solve(groups, 2.0 * saturate)
    assert sol.expected_perf == pytest.approx(peak, rel=0.01)


@pytest.mark.parametrize("seed", range(4))
def test_safety_margin_raises_power_on_floor(seed):
    """With a margin, active servers sit at or above the padded floor."""
    rng = random.Random(100 + seed)
    solver = PARSolver(safety_margin=0.05)
    groups = random_rack(rng)
    for budget in budget_sweep(groups, rng):
        sol = solver.solve(groups, budget)
        for g, per_server in zip(groups, sol.per_server_w):
            if per_server == 0.0:
                continue
            floor = min(g.fit.min_power_w * 1.05, g.fit.max_power_w)
            assert per_server >= floor - 1e-6
