"""The five Table III allocation policies."""

import pytest

from repro.core.database import ProfilingDatabase
from repro.core.policies import (
    POLICY_NAMES,
    AllocationContext,
    GreenHeteroPolicy,
    GreenHeteroPriorityPolicy,
    GreenHeteroStaticPolicy,
    GroupInfo,
    ManualPolicy,
    UniformPolicy,
    all_policies,
    make_policy,
)
from repro.errors import ConfigurationError

E5_KEY = ("E5-2620", "SPECjbb")
I5_KEY = ("i5-4460", "SPECjbb")


def make_db():
    """A database with plausible SPECjbb projections for both groups."""
    db = ProfilingDatabase()
    # E5-2620: active 100..150 W, big but power-hungry.
    db.ingest_training_run(
        E5_KEY, 88.0,
        [(100.0, 11000.0), (112.0, 15500.0), (125.0, 19000.0), (137.0, 21800.0), (150.0, 24000.0)],
    )
    # i5-4460: active 55..80 W, small and efficient.
    db.ingest_training_run(
        I5_KEY, 47.0,
        [(55.0, 7300.0), (61.0, 10300.0), (67.0, 12800.0), (73.0, 15000.0), (80.0, 16600.0)],
    )
    return db


def make_ctx(budget=1000.0, oracle=None, db=None):
    return AllocationContext(
        budget_w=budget,
        groups=(
            GroupInfo("E5-2620", 5, E5_KEY),
            GroupInfo("i5-4460", 5, I5_KEY),
        ),
        database=db or make_db(),
        oracle=oracle,
    )


class TestRegistry:
    def test_table_iii_names(self):
        assert POLICY_NAMES == (
            "Uniform",
            "Manual",
            "GreenHetero-p",
            "GreenHetero-a",
            "GreenHetero",
        )

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_factory(self, name):
        assert make_policy(name).name == name

    def test_factory_case_insensitive(self):
        assert make_policy("greenhetero").name == "GreenHetero"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("RoundRobin")

    def test_all_policies(self):
        assert [p.name for p in all_policies()] == list(POLICY_NAMES)

    def test_flags(self):
        assert not make_policy("Uniform").uses_database
        assert make_policy("Manual").requires_oracle
        assert make_policy("GreenHetero-p").uses_database
        assert not make_policy("GreenHetero-a").updates_database
        assert make_policy("GreenHetero").updates_database

    def test_repr(self):
        assert "GreenHetero" in repr(GreenHeteroPolicy())


class TestUniform:
    def test_equal_per_server(self):
        ratios = UniformPolicy().allocate(make_ctx())
        assert ratios == pytest.approx((0.5, 0.5))

    def test_weighted_by_count(self):
        ctx = AllocationContext(
            budget_w=900.0,
            groups=(GroupInfo("E5-2620", 6, E5_KEY), GroupInfo("i5-4460", 3, I5_KEY)),
            database=make_db(),
        )
        assert UniformPolicy().allocate(ctx) == pytest.approx((2 / 3, 1 / 3))

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformPolicy().allocate(make_ctx(budget=-1.0))

    def test_empty_groups_rejected(self):
        ctx = AllocationContext(budget_w=100.0, groups=(), database=make_db())
        with pytest.raises(ConfigurationError):
            UniformPolicy().allocate(ctx)


class TestManual:
    def test_picks_measured_best(self):
        def oracle(ratios):
            return -abs(ratios[0] - 0.7)  # best trial at 70/30

        ratios = ManualPolicy().allocate(make_ctx(oracle=oracle))
        assert ratios == pytest.approx((0.7, 0.3))

    def test_requires_oracle(self):
        with pytest.raises(ConfigurationError):
            ManualPolicy().allocate(make_ctx(oracle=None))

    def test_granularity_is_ten_percent(self):
        seen = []

        def oracle(ratios):
            seen.append(ratios)
            return 0.0

        ManualPolicy().allocate(make_ctx(oracle=oracle))
        assert len(seen) == 11  # compositions of 10 steps into 2 groups

    def test_bad_granularity_rejected(self):
        with pytest.raises(ConfigurationError):
            ManualPolicy(granularity=0.0)


class TestPriority:
    def test_feeds_most_efficient_first(self):
        # The i5 projection is the efficiency leader: at 1000 W it gets
        # its full saturation power (5 * 80 = 400 W) before the E5s.
        ratios = GreenHeteroPriorityPolicy().allocate(make_ctx(budget=1000.0))
        assert ratios[1] == pytest.approx(400.0 / 1000.0)
        assert ratios[0] == pytest.approx(600.0 / 1000.0)

    def test_dumps_remainder_even_when_unusable(self):
        # 600 W: i5s take 400, the remaining 200 spills onto the E5s
        # even though 40 W/server cannot power them on (the waste mode
        # the paper demonstrates with Streamcluster).
        ratios = GreenHeteroPriorityPolicy().allocate(make_ctx(budget=600.0))
        assert ratios[1] == pytest.approx(400.0 / 600.0)
        assert ratios[0] == pytest.approx(200.0 / 600.0)

    def test_zero_budget(self):
        ratios = GreenHeteroPriorityPolicy().allocate(make_ctx(budget=0.0))
        assert ratios == (0.0, 0.0)

    def test_never_exceeds_budget(self):
        for budget in (200.0, 500.0, 900.0, 5000.0):
            ratios = GreenHeteroPriorityPolicy().allocate(make_ctx(budget=budget))
            assert sum(ratios) <= 1.0 + 1e-9


class TestSolverPolicies:
    def test_greenhetero_beats_uniform_projection(self):
        db = make_db()
        ctx = make_ctx(budget=1000.0, db=db)
        gh = GreenHeteroPolicy().allocate(ctx)
        uni = UniformPolicy().allocate(ctx)

        def projected(ratios):
            total = 0.0
            for g, r in zip(ctx.groups, ratios):
                total += g.count * db.projection(g.key).predict(r * 1000.0 / g.count)
            return total

        assert projected(gh) >= projected(uni)

    def test_static_and_adaptive_same_decision_same_db(self):
        ctx = make_ctx()
        assert GreenHeteroStaticPolicy().allocate(ctx) == GreenHeteroPolicy().allocate(ctx)

    def test_solver_failure_falls_back_to_uniform(self):
        # A context whose group count exceeds the solver's bound should
        # degrade to Uniform rather than crash the controller.
        from repro.core.solver import PARSolver

        policy = GreenHeteroPolicy(solver=PARSolver(max_groups=1))
        ratios = policy.allocate(make_ctx())
        assert ratios == pytest.approx((0.5, 0.5))


class TestOnOff:
    """The GreenGear-style on-off baseline from the Section VI discussion."""

    def test_powers_exactly_one_group(self):
        from repro.core.policies import OnOffPolicy

        ratios = OnOffPolicy().allocate(make_ctx(budget=1000.0))
        assert sum(1 for r in ratios if r > 0) == 1

    def test_prefers_most_efficient_group_it_can_power(self):
        from repro.core.policies import OnOffPolicy

        # At 1000 W either group fits; the i5 projection leads efficiency.
        ratios = OnOffPolicy().allocate(make_ctx(budget=1000.0))
        assert ratios[1] > 0.0
        assert ratios[0] == 0.0

    def test_never_exceeds_saturation(self):
        from repro.core.policies import OnOffPolicy

        ratios = OnOffPolicy().allocate(make_ctx(budget=5000.0))
        granted = [r * 5000.0 for r in ratios]
        # i5 group saturates at 5 * 80 W.
        assert max(granted) <= 5 * 80.0 + 1e-6

    def test_zero_budget(self):
        from repro.core.policies import OnOffPolicy

        assert OnOffPolicy().allocate(make_ctx(budget=0.0)) == (0.0, 0.0)

    def test_registered_in_factory(self):
        assert make_policy("OnOff").name == "OnOff"
