"""Rack structure and power envelopes."""

import pytest

from repro.errors import ConfigurationError, IncompatibleWorkloadError
from repro.servers.rack import Rack


@pytest.fixture
def fig8_rack():
    """The paper's standard 10-server rack (Comb1)."""
    return Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb")


class TestConstruction:
    def test_groups(self, fig8_rack):
        assert len(fig8_rack) == 2
        assert fig8_rack.n_servers == 10
        assert fig8_rack.platform_names == ("E5-2620", "i5-4460")

    def test_empty_rack_rejected(self):
        with pytest.raises(ConfigurationError):
            Rack([], "SPECjbb")

    def test_duplicate_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            Rack([("E5-2620", 2), ("E5-2620", 3)], "SPECjbb")

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Rack([("E5-2620", 0)], "SPECjbb")

    def test_incompatible_workload_rejected(self):
        with pytest.raises(IncompatibleWorkloadError):
            Rack([("TitanXp", 5)], "SPECjbb")

    def test_per_group_workloads(self):
        rack = Rack(
            [("E5-2620", 5), ("TitanXp", 5)], ["Srad_v1", "Srad_v1"]
        )
        assert all(g.workload.name == "Srad_v1" for g in rack.groups)

    def test_per_group_workload_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Rack([("E5-2620", 5)], ["SPECjbb", "Mcf"])

    def test_group_key(self, fig8_rack):
        assert fig8_rack.groups[0].key == ("E5-2620", "SPECjbb")


class TestEnvelope:
    def test_envelope_is_platform_peaks(self, fig8_rack):
        assert fig8_rack.envelope_w == pytest.approx(5 * 178 + 5 * 96)

    def test_max_draw_below_envelope(self, fig8_rack):
        assert fig8_rack.max_draw_w < fig8_rack.envelope_w

    def test_idle_power(self, fig8_rack):
        assert fig8_rack.idle_power_w == pytest.approx(5 * 88 + 5 * 47)

    def test_min_active_power_is_cheapest_server(self, fig8_rack):
        i5 = fig8_rack.curve(1)
        assert fig8_rack.min_active_power_w == pytest.approx(i5.min_active_power_w)

    def test_demand_scales_with_load(self, fig8_rack):
        low = fig8_rack.demand_at_load(0.2)
        high = fig8_rack.demand_at_load(1.0)
        assert low < high
        # The SLO headroom keeps utilisation epsilon below 1 at full
        # offered load, so full-load demand sits just under max draw.
        assert high == pytest.approx(fig8_rack.max_draw_w, rel=0.01)

    def test_max_throughput_positive(self, fig8_rack):
        assert fig8_rack.max_throughput > 0


class TestServers:
    def test_build_servers_counts(self, fig8_rack):
        servers = fig8_rack.build_servers()
        assert [len(g) for g in servers] == [5, 5]

    def test_describe_mentions_platforms(self, fig8_rack):
        text = fig8_rack.describe()
        assert "E5-2620" in text and "i5-4460" in text and "SPECjbb" in text
