"""Ground-truth power-performance response surfaces."""

import math

import pytest

from repro.errors import IncompatibleWorkloadError, PowerError
from repro.servers.platform import get_platform
from repro.servers.power_model import ResponseCurve, ServerPowerModel


@pytest.fixture
def e5_jbb():
    return ResponseCurve(get_platform("E5-2620"), "SPECjbb")


@pytest.fixture
def i5_jbb():
    return ResponseCurve(get_platform("i5-4460"), "SPECjbb")


class TestEnvelope:
    def test_case_study_max_draws(self, e5_jbb, i5_jbb):
        # Section III-B: SPECjbb maxima of ~147 W (dual E5-2620) and
        # ~81 W (Core i5).
        assert e5_jbb.max_draw_w == pytest.approx(147.4, abs=1.0)
        assert i5_jbb.max_draw_w == pytest.approx(79.3, abs=2.0)

    def test_max_draw_below_platform_peak(self, e5_jbb):
        assert e5_jbb.max_draw_w <= e5_jbb.spec.peak_power_w

    def test_min_active_above_idle(self, e5_jbb):
        assert e5_jbb.min_active_power_w > e5_jbb.idle_power_w

    def test_max_throughput_positive(self, e5_jbb):
        assert e5_jbb.max_throughput > 0

    def test_peak_efficiency(self, i5_jbb, e5_jbb):
        # The i5 leads SPECjbb energy efficiency, which is why
        # GreenHetero-p feeds it first (Section V-B.2).
        assert i5_jbb.peak_efficiency > e5_jbb.peak_efficiency


class TestShape:
    """The three response-boundary behaviours of Section IV-B.3."""

    def test_zero_below_idle(self, e5_jbb):
        sample = e5_jbb.perf_at_power(e5_jbb.idle_power_w - 1.0)
        assert sample.throughput == 0.0

    def test_zero_below_min_active(self, e5_jbb):
        sample = e5_jbb.perf_at_power(e5_jbb.min_active_power_w - 0.5)
        assert sample.throughput == 0.0

    def test_plateau_beyond_max_draw(self, e5_jbb):
        at_max = e5_jbb.perf_at_power(e5_jbb.max_draw_w).throughput
        beyond = e5_jbb.perf_at_power(e5_jbb.max_draw_w * 2).throughput
        assert beyond == pytest.approx(at_max)

    def test_monotone_nondecreasing(self, e5_jbb):
        budgets = [float(b) for b in range(0, 250, 5)]
        perfs = [e5_jbb.perf_at_power(b).throughput for b in budgets]
        for lo, hi in zip(perfs, perfs[1:]):
            assert hi >= lo - 1e-9

    def test_draw_never_exceeds_budget(self, e5_jbb):
        for b in range(0, 250, 7):
            sample = e5_jbb.perf_at_power(float(b))
            assert sample.power_w <= b + 1e-9 or sample.throughput == 0.0

    def test_concave_in_operating_range(self, e5_jbb):
        # Marginal throughput per watt must not increase with power —
        # the property the paper's quadratic fit relies on.  Evaluate at
        # the state ladder points to avoid quantisation artefacts.
        points = [
            (s.power_cap_w, e5_jbb.sample_at_state(s).throughput)
            for s in e5_jbb.states.active_states
        ]
        marginals = [
            (p2[1] - p1[1]) / (p2[0] - p1[0]) for p1, p2 in zip(points, points[1:])
        ]
        for m1, m2 in zip(marginals, marginals[1:]):
            assert m2 <= m1 * 1.01  # small tolerance for the SLO knee

    def test_curve_helper_returns_arrays(self, e5_jbb):
        budgets, perfs = e5_jbb.curve(n_points=50)
        assert len(budgets) == len(perfs) == 50
        assert perfs.max() == pytest.approx(e5_jbb.max_throughput, rel=0.01)


class TestServing:
    def test_serve_inf_saturates(self, e5_jbb):
        top = e5_jbb.states.active_states[-1]
        sample = e5_jbb.serve(top, math.inf)
        assert sample.utilization == pytest.approx(
            sample.throughput / e5_jbb.max_throughput, rel=0.05
        )

    def test_serve_zero_load_draws_near_idle(self, e5_jbb):
        top = e5_jbb.states.active_states[-1]
        sample = e5_jbb.serve(top, 0.0)
        assert sample.throughput == 0.0
        assert sample.power_w < e5_jbb.max_draw_w
        assert sample.power_w >= e5_jbb.idle_power_w

    def test_partial_load_draws_less(self, e5_jbb):
        top = e5_jbb.states.active_states[-1]
        full = e5_jbb.serve(top, math.inf)
        half = e5_jbb.serve(top, full.throughput / 2)
        assert half.power_w < full.power_w
        assert half.throughput == pytest.approx(full.throughput / 2, rel=0.01)

    def test_negative_offered_rejected(self, e5_jbb):
        with pytest.raises(PowerError):
            e5_jbb.serve(e5_jbb.states.active_states[-1], -1.0)

    def test_bad_load_fraction_rejected(self, e5_jbb):
        with pytest.raises(PowerError):
            e5_jbb.sample_at_state(e5_jbb.states.active_states[-1], 1.5)

    def test_off_state_sample(self, e5_jbb):
        sample = e5_jbb.sample_at_state(e5_jbb.states[0])
        assert sample.power_w == 0.0
        assert sample.throughput == 0.0
        assert sample.utilization == 0.0

    def test_deliverable_capacity_zero_when_off(self, e5_jbb):
        assert e5_jbb.deliverable_capacity(e5_jbb.states[0]) == 0.0

    def test_slo_reduces_deliverable_capacity(self):
        curve = ResponseCurve(get_platform("i5-4460"), "Memcached")
        top = curve.states.active_states[-1]
        raw = curve._capacity(top)
        assert curve.deliverable_capacity(top) < raw


class TestCompatibility:
    def test_cpu_workload_rejected_on_gpu(self):
        with pytest.raises(IncompatibleWorkloadError):
            ResponseCurve(get_platform("TitanXp"), "SPECjbb")

    def test_rodinia_runs_on_gpu(self):
        curve = ResponseCurve(get_platform("TitanXp"), "Srad_v1")
        assert curve.max_throughput > 0

    def test_gpu_beats_cpu_on_srad(self):
        gpu = ResponseCurve(get_platform("TitanXp"), "Srad_v1")
        cpu = ResponseCurve(get_platform("E5-2620"), "Srad_v1")
        assert gpu.max_throughput > 5 * cpu.max_throughput

    def test_gpu_similar_to_cpu_on_cfd(self):
        # Fig. 14: Cfd performs about the same on CPU and GPU.
        gpu = ResponseCurve(get_platform("TitanXp"), "Cfd")
        cpu = ResponseCurve(get_platform("E5-2620"), "Cfd")
        assert gpu.max_throughput < 2 * cpu.max_throughput


class TestStateSelection:
    """The SPC's workload-aware power-to-state mapping."""

    def test_budget_at_max_draw_selects_top(self, e5_jbb):
        state = e5_jbb.state_for_budget(e5_jbb.max_draw_w + 0.1)
        assert state == e5_jbb.states.active_states[-1]

    def test_workload_aware_vs_platform_caps(self):
        # For a light workload the top state fits a budget well below
        # the platform's peak power: Memcached's full-load draw on an
        # i5 is ~68 W, far under its 96 W platform peak.
        curve = ResponseCurve(get_platform("i5-4460"), "Memcached")
        state = curve.state_for_budget(70.0)
        assert state == curve.states.active_states[-1]

    def test_negative_budget_rejected(self, e5_jbb):
        with pytest.raises(PowerError):
            e5_jbb.state_for_budget(-0.1)


class TestServerPowerModel:
    def test_starts_at_top_state(self):
        server = ServerPowerModel(get_platform("i5-4460"), "SPECjbb")
        assert server.state == server.curve.states.active_states[-1]

    def test_enforce_budget_changes_state(self):
        server = ServerPowerModel(get_platform("i5-4460"), "SPECjbb")
        state = server.enforce_budget(0.0)
        assert state.is_off
        assert server.state.is_off

    def test_run_uses_enforced_state(self):
        server = ServerPowerModel(get_platform("i5-4460"), "SPECjbb")
        server.enforce_budget(0.0)
        assert server.run().throughput == 0.0

    def test_accessors(self):
        server = ServerPowerModel(get_platform("i5-4460"), "SPECjbb")
        assert server.spec.name == "i5-4460"
        assert server.workload.name == "SPECjbb"
