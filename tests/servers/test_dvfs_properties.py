"""Property-based tests on DVFS ladders over randomized platforms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.servers.dvfs import PowerStateSet
from repro.servers.platform import DeviceClass, ServerSpec


@st.composite
def specs(draw):
    idle = draw(st.floats(min_value=5.0, max_value=200.0))
    dynamic = draw(st.floats(min_value=10.0, max_value=400.0))
    base_ghz = draw(st.floats(min_value=1.0, max_value=4.0))
    return ServerSpec(
        name="prop-box",
        device_class=DeviceClass.CPU,
        base_frequency_hz=base_ghz * 1e9,
        sockets=1,
        cores=draw(st.integers(min_value=1, max_value=64)),
        peak_power_w=idle + dynamic,
        idle_power_w=idle,
        dvfs_levels=draw(st.integers(min_value=2, max_value=24)),
    )


@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_ladder_monotone_and_anchored(spec):
    ladder = PowerStateSet(spec)
    caps = [s.power_cap_w for s in ladder]
    assert caps == sorted(caps)
    active = ladder.active_states
    assert len(active) == spec.dvfs_levels
    assert active[-1].power_cap_w <= spec.peak_power_w + 1e-9
    assert abs(active[-1].power_cap_w - spec.peak_power_w) < 1e-6
    assert active[0].power_cap_w > spec.idle_power_w


@given(spec=specs(), budget=st.floats(min_value=0.0, max_value=800.0))
@settings(max_examples=100, deadline=None)
def test_budget_mapping_safe_and_maximal(spec, budget):
    ladder = PowerStateSet(spec)
    state = ladder.state_for_budget(budget)
    # Safe: the chosen state never exceeds the budget.
    assert state.power_cap_w <= budget + 1e-9
    # Maximal: no higher state would also have fit.
    higher = [s for s in ladder if s.index > state.index]
    for s in higher:
        assert s.power_cap_w > budget - 1e-9


@given(spec=specs())
@settings(max_examples=40, deadline=None)
def test_frequencies_strictly_increase(spec):
    ladder = PowerStateSet(spec)
    freqs = [s.frequency_hz for s in ladder.active_states]
    assert all(b > a for a, b in zip(freqs, freqs[1:]))
    assert freqs[0] == spec.min_frequency_hz
    assert abs(freqs[-1] - spec.base_frequency_hz) < 1.0
