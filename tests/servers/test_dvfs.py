"""DVFS power-state ladders and the power-to-state mapping."""

import pytest

from repro.errors import ConfigurationError, PowerError
from repro.servers.dvfs import (
    MIN_STATE_DYNAMIC_FRACTION,
    SLEEP_POWER_W,
    PowerStateSet,
)
from repro.servers.platform import get_platform


@pytest.fixture
def ladder():
    return PowerStateSet(get_platform("E5-2620"))


class TestLadderStructure:
    def test_off_and_sleep_first(self, ladder):
        assert ladder[0].label == "off"
        assert ladder[0].power_cap_w == 0.0
        assert ladder[1].label == "sleep"
        assert ladder[1].power_cap_w == SLEEP_POWER_W

    def test_off_and_sleep_not_active(self, ladder):
        assert not ladder[0].active
        assert not ladder[1].active

    def test_active_count_matches_spec(self, ladder):
        assert len(ladder.active_states) == get_platform("E5-2620").dvfs_levels

    def test_states_ordered_by_power(self, ladder):
        caps = [s.power_cap_w for s in ladder]
        assert caps == sorted(caps)

    def test_states_ordered_by_frequency(self, ladder):
        freqs = [s.frequency_hz for s in ladder.active_states]
        assert freqs == sorted(freqs)
        assert len(set(freqs)) == len(freqs)

    def test_top_state_draws_peak(self, ladder):
        assert ladder.active_states[-1].power_cap_w == pytest.approx(178.0)

    def test_top_state_runs_base_frequency(self, ladder):
        assert ladder.active_states[-1].frequency_hz == pytest.approx(2.0e9)

    def test_bottom_state_runs_min_frequency(self, ladder):
        spec = get_platform("E5-2620")
        assert ladder.active_states[0].frequency_hz == pytest.approx(
            spec.min_frequency_hz
        )

    def test_bottom_active_state_above_idle(self, ladder):
        spec = get_platform("E5-2620")
        expected = spec.idle_power_w + MIN_STATE_DYNAMIC_FRACTION * spec.dynamic_range_w
        assert ladder.min_active_power_w == pytest.approx(expected)

    def test_len_and_iter(self, ladder):
        assert len(ladder) == len(list(ladder))

    def test_custom_level_count(self):
        ladder = PowerStateSet(get_platform("i5-4460"), levels=4)
        assert len(ladder.active_states) == 4

    def test_too_few_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerStateSet(get_platform("i5-4460"), levels=1)


class TestBudgetMapping:
    """Section IV-B.4: budget -> highest state whose cap fits."""

    def test_zero_budget_is_off(self, ladder):
        assert ladder.state_for_budget(0.0).is_off

    def test_tiny_budget_is_off(self, ladder):
        assert ladder.state_for_budget(SLEEP_POWER_W - 0.1).is_off

    def test_sleep_budget_is_sleep(self, ladder):
        assert ladder.state_for_budget(SLEEP_POWER_W).label == "sleep"

    def test_below_min_active_sleeps(self, ladder):
        budget = ladder.min_active_power_w - 1.0
        state = ladder.state_for_budget(budget)
        assert not state.active

    def test_exact_min_active_runs(self, ladder):
        state = ladder.state_for_budget(ladder.min_active_power_w)
        assert state.active
        assert state.index == ladder.active_states[0].index

    def test_huge_budget_selects_top(self, ladder):
        assert ladder.state_for_budget(1e6) == ladder.states[-1]

    def test_mapping_monotone_in_budget(self, ladder):
        prev = -1
        for budget in range(0, 200, 5):
            idx = ladder.state_for_budget(float(budget)).index
            assert idx >= prev
            prev = idx

    def test_selected_state_never_exceeds_budget(self, ladder):
        for budget in (0.0, 3.0, 50.0, 99.0, 120.0, 178.0, 500.0):
            state = ladder.state_for_budget(budget)
            assert state.power_cap_w <= budget + 1e-9

    def test_negative_budget_rejected(self, ladder):
        with pytest.raises(PowerError):
            ladder.state_for_budget(-1.0)

    def test_frequency_for_budget(self, ladder):
        assert ladder.frequency_for_budget(1e6) == pytest.approx(2.0e9)
        assert ladder.frequency_for_budget(0.0) == 0.0


class TestAcrossPlatforms:
    @pytest.mark.parametrize("name", ["E5-2650", "E5-2603", "i7-8700K", "i5-4460", "TitanXp"])
    def test_ladder_anchored_to_envelope(self, name):
        spec = get_platform(name)
        ladder = PowerStateSet(spec)
        assert ladder.active_states[-1].power_cap_w == pytest.approx(spec.peak_power_w)
        assert ladder.active_states[0].power_cap_w > spec.idle_power_w
