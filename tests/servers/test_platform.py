"""Server platform registry (paper Table II)."""

import pytest

from repro.errors import ConfigurationError, UnknownPlatformError
from repro.servers.platform import (
    GOOGLE_DC_CONFIG_COUNTS,
    PLATFORMS,
    DeviceClass,
    ServerSpec,
    get_platform,
    platform_names,
    register_platform,
)


class TestTableII:
    """The six rows of Table II must be encoded exactly."""

    def test_six_platforms(self):
        assert len(platform_names()) >= 6

    @pytest.mark.parametrize(
        "name,freq_ghz,sockets,cores,peak,idle",
        [
            ("E5-2620", 2.0, 2, 12, 178.0, 88.0),
            ("E5-2650", 2.0, 1, 8, 112.0, 66.0),
            ("E5-2603", 1.8, 1, 4, 79.0, 58.0),
            ("i7-8700K", 3.7, 1, 6, 88.0, 39.0),
            ("i5-4460", 3.2, 1, 4, 96.0, 47.0),
            ("TitanXp", 1.582, 1, 3840, 411.0, 149.0),
        ],
    )
    def test_spec_values(self, name, freq_ghz, sockets, cores, peak, idle):
        spec = get_platform(name)
        assert spec.base_frequency_hz == pytest.approx(freq_ghz * 1e9)
        assert spec.sockets == sockets
        assert spec.cores == cores
        assert spec.peak_power_w == peak
        assert spec.idle_power_w == idle

    def test_only_titan_is_gpu(self):
        gpus = [s for s in PLATFORMS.values() if s.device_class is DeviceClass.GPU]
        assert [g.name for g in gpus] == ["TitanXp"]

    def test_dynamic_range(self):
        assert get_platform("E5-2620").dynamic_range_w == pytest.approx(90.0)

    def test_is_gpu_flag(self):
        assert get_platform("TitanXp").is_gpu
        assert not get_platform("i5-4460").is_gpu


class TestLookup:
    def test_case_insensitive(self):
        assert get_platform("e5-2620").name == "E5-2620"

    def test_aliases(self):
        assert get_platform("i5").name == "i5-4460"
        assert get_platform("Titan Xp").name == "TitanXp"
        assert get_platform("Xeon E5-2650").name == "E5-2650"

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(UnknownPlatformError) as info:
            get_platform("Epyc-7742")
        assert "Epyc-7742" in str(info.value)
        assert "E5-2620" in str(info.value)


class TestSpecValidation:
    def _spec(self, **overrides):
        base = dict(
            name="test-box",
            device_class=DeviceClass.CPU,
            base_frequency_hz=2.0e9,
            sockets=1,
            cores=4,
            peak_power_w=100.0,
            idle_power_w=40.0,
        )
        base.update(overrides)
        return ServerSpec(**base)

    def test_valid_spec(self):
        spec = self._spec()
        assert spec.dynamic_range_w == 60.0

    def test_peak_must_exceed_idle(self):
        with pytest.raises(ConfigurationError):
            self._spec(peak_power_w=40.0, idle_power_w=40.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(idle_power_w=-1.0, peak_power_w=100.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(cores=0)

    def test_too_few_dvfs_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(dvfs_levels=1)

    def test_min_frequency_defaults_to_40_percent(self):
        spec = self._spec()
        assert spec.min_frequency_hz == pytest.approx(0.8e9)

    def test_min_frequency_must_be_below_base(self):
        with pytest.raises(ConfigurationError):
            self._spec(min_frequency_hz=3.0e9)


class TestGoogleData:
    """Fig. 1 motivation data."""

    def test_ten_datacenters(self):
        assert len(GOOGLE_DC_CONFIG_COUNTS) == 10

    def test_counts_range_two_to_five(self):
        assert min(GOOGLE_DC_CONFIG_COUNTS) == 2
        assert max(GOOGLE_DC_CONFIG_COUNTS) == 5

    def test_eighty_percent_run_two_or_three(self):
        # Section IV-B.3: "80% of datacenters consist of two and three
        # types of server configurations".
        small = sum(1 for c in GOOGLE_DC_CONFIG_COUNTS if c in (2, 3))
        assert small / len(GOOGLE_DC_CONFIG_COUNTS) == pytest.approx(0.8)


class TestRegistration:
    def test_register_and_lookup(self):
        spec = ServerSpec(
            name="test-reg-box",
            device_class=DeviceClass.CPU,
            base_frequency_hz=2.4e9,
            sockets=1,
            cores=8,
            peak_power_w=150.0,
            idle_power_w=60.0,
        )
        register_platform(spec, aliases=("my box",))
        try:
            assert get_platform("test-reg-box") is spec
            assert get_platform("My Box") is spec
        finally:
            del PLATFORMS["test-reg-box"]

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_platform(get_platform("E5-2620"))
