"""Analysis metric helpers."""

import pytest

from repro.analysis.metrics import (
    geometric_mean,
    normalize_to_baseline,
    summarize_gains,
)
from repro.errors import ConfigurationError


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_below_arithmetic_mean(self):
        values = [1.0, 2.0, 10.0]
        assert geometric_mean(values) < sum(values) / 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestNormalize:
    def test_normalizes(self):
        out = normalize_to_baseline({"a": 10.0, "b": 20.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_to_baseline({"a": 1.0}, "z")

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_to_baseline({"a": 0.0}, "a")


class TestSummarize:
    def test_summary(self):
        gains = {"Memcached": 1.2, "Streamcluster": 2.2, "Mcf": 1.3}
        out = summarize_gains(gains)
        assert out["min"] == 1.2
        assert out["max"] == 2.2
        assert out["best_workload"] == "Streamcluster"
        assert out["worst_workload"] == "Memcached"
        assert 1.2 < out["mean"] < 2.2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_gains({})
