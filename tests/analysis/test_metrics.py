"""Analysis metric helpers."""

import pytest

from repro.analysis.metrics import (
    geometric_mean,
    normalize_to_baseline,
    summarize_gains,
)
from repro.errors import ConfigurationError


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_below_arithmetic_mean(self):
        values = [1.0, 2.0, 10.0]
        assert geometric_mean(values) < sum(values) / 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestNormalize:
    def test_normalizes(self):
        out = normalize_to_baseline({"a": 10.0, "b": 20.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_to_baseline({"a": 1.0}, "z")

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_to_baseline({"a": 0.0}, "a")


class TestSummarize:
    def test_summary(self):
        gains = {"Memcached": 1.2, "Streamcluster": 2.2, "Mcf": 1.3}
        out = summarize_gains(gains)
        assert out["min"] == 1.2
        assert out["max"] == 2.2
        assert out["best_workload"] == "Streamcluster"
        assert out["worst_workload"] == "Memcached"
        assert 1.2 < out["mean"] < 2.2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_gains({})


def epoch_record(t=0.0, g2l=0.0):
    from repro.core.controller import EpochRecord
    from repro.core.sources import PowerCase
    from repro.power.sources import ChargeSource

    return EpochRecord(
        time_s=t, case=PowerCase.A, budget_w=1000.0, demand_w=1000.0,
        renewable_w=500.0, load_fraction=1.0, ratios=(0.6, 0.4),
        group_budgets_w=(600.0, 400.0), state_indices=(5, 5),
        throughput=100.0, epu=0.9, useful_power_w=900.0,
        renewable_to_load_w=1000.0 - g2l, battery_to_load_w=0.0,
        grid_to_load_w=g2l, charge_w=0.0, charge_source=ChargeSource.NONE,
        battery_soc_wh=12000.0, curtailed_w=0.0, trained_pairs=(),
        brownout=False,
    )


class TestShiftComparisonEdgeCases:
    """Zero-grid baselines must not divide by zero (all-renewable runs)."""

    def make_log(self, g2l):
        from repro.sim.telemetry import TelemetryLog

        log = TelemetryLog()
        log.append(epoch_record(t=0.0, g2l=g2l))
        log.append(epoch_record(t=900.0, g2l=g2l))
        return log

    def test_zero_baseline_grid_energy(self):
        from repro.analysis.metrics import shift_comparison

        out = shift_comparison(
            self.make_log(0.0), self.make_log(0.0), epoch_s=900.0,
            shift_jobs={}, no_shift_jobs={},
        )
        assert out["grid_kwh"]["no_shift"] == 0.0
        assert out["grid_kwh"]["saved_fraction"] == 0.0

    def test_zero_jobs_miss_rate(self):
        from repro.analysis.metrics import shift_comparison

        out = shift_comparison(
            self.make_log(100.0), self.make_log(200.0), epoch_s=900.0,
            shift_jobs={}, no_shift_jobs={},
        )
        assert out["miss_rate"] == {"shift": 0.0, "no_shift": 0.0}
        assert out["grid_kwh"]["saved_fraction"] == pytest.approx(0.5)

    def test_mismatched_timelines_rejected(self):
        from repro.analysis.metrics import shift_comparison
        from repro.sim.telemetry import TelemetryLog

        short = TelemetryLog()
        short.append(epoch_record(t=0.0))
        with pytest.raises(ConfigurationError, match="identical timelines"):
            shift_comparison(
                self.make_log(0.0), short, epoch_s=900.0,
                shift_jobs={}, no_shift_jobs={},
            )


class TestProjectionErrorEdgeCases:
    def test_too_few_points_rejected(self):
        from repro.analysis.metrics import projection_error

        with pytest.raises(ConfigurationError, match="at least 2"):
            projection_error(None, None, n_points=1)
