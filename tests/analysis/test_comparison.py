"""Multi-seed gain statistics."""

import pytest

from repro.analysis.comparison import GainStatistics, gain_statistics, seed_sweep
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig


class TestGainStatistics:
    def test_basic_interval(self):
        stats = gain_statistics([1.5, 1.6, 1.7])
        assert stats.mean == pytest.approx(1.6)
        assert stats.ci_low < 1.6 < stats.ci_high
        assert stats.n == 3

    def test_interval_narrows_with_samples(self):
        few = gain_statistics([1.5, 1.7])
        many = gain_statistics([1.5, 1.7, 1.5, 1.7, 1.5, 1.7, 1.6, 1.6])
        assert (many.ci_high - many.ci_low) < (few.ci_high - few.ci_low)

    def test_zero_variance(self):
        stats = gain_statistics([1.6, 1.6, 1.6])
        assert stats.ci_low == pytest.approx(1.6)
        assert stats.ci_high == pytest.approx(1.6)

    def test_confidence_level(self):
        wide = gain_statistics([1.4, 1.8], confidence=0.99)
        narrow = gain_statistics([1.4, 1.8], confidence=0.80)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_describe(self):
        text = gain_statistics([1.5, 1.7]).describe()
        assert "1.60x" in text and "n=2" in text

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            gain_statistics([1.6])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            gain_statistics([1.5, 1.6], confidence=1.0)


class TestSeedSweep:
    def test_sweep_over_three_seeds(self):
        cfg = ExperimentConfig.insufficient_supply(
            "Streamcluster", days=0.25, policies=("Uniform", "GreenHetero")
        )
        stats = seed_sweep(cfg, seeds=(1, 2, 3))
        assert stats.n == 3
        # The headline result must be robust across draws.
        assert stats.ci_low > 1.3
        assert all(g > 1.0 for g in stats.samples)

    def test_seeds_actually_vary(self):
        cfg = ExperimentConfig.insufficient_supply(
            "SPECjbb", days=0.25, policies=("Uniform", "GreenHetero")
        )
        stats = seed_sweep(cfg, seeds=(1, 2))
        assert stats.samples[0] != stats.samples[1]

    def test_unknown_policy_rejected(self):
        cfg = ExperimentConfig(days=0.1, policies=("Uniform", "GreenHetero"))
        with pytest.raises(ConfigurationError):
            seed_sweep(cfg, seeds=(1, 2), policy="Manual")

    def test_too_few_seeds_rejected(self):
        cfg = ExperimentConfig(days=0.1, policies=("Uniform", "GreenHetero"))
        with pytest.raises(ConfigurationError):
            seed_sweep(cfg, seeds=(1,))
