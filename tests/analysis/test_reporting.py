"""ASCII report rendering."""

import pytest

from repro.analysis.reporting import format_gains, format_series, format_table
from repro.errors import ConfigurationError


class TestTable:
    def test_alignment(self):
        text = format_table(["name", "gain"], [["GreenHetero", 1.55], ["Uniform", 1.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.550" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="Figure 9")
        assert text.splitlines()[0] == "Figure 9"

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestSeries:
    def test_wraps(self):
        text = format_series("pars", [0.1] * 30, per_line=10)
        assert text.count("\n") == 3  # header + 3 lines

    def test_header_includes_count(self):
        assert "(n=3)" in format_series("x", [1.0, 2.0, 3.0])

    def test_custom_format(self):
        assert "1.5x" in format_series("g", [1.5], fmt="{:.1f}x")


class TestGains:
    def test_one_line(self):
        text = format_gains({"GreenHetero": 1.55, "Manual": 1.4})
        assert "GreenHetero: 1.55x" in text
        assert "Uniform" in text
