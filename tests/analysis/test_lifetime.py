"""Battery lifetime projection."""

import pytest

from repro.analysis.lifetime import (
    CALENDAR_LIFE_YEARS,
    LifetimeProjection,
    project_lifetime,
)
from repro.errors import ConfigurationError
from repro.power.battery import BatteryBank


def cycled_bank(full_cycles: float) -> BatteryBank:
    bank = BatteryBank()
    per_cycle_wh = bank.depth_of_discharge * bank.capacity_wh
    bank._discharged_wh_total = full_cycles * per_cycle_wh
    return bank


class TestProjection:
    def test_paper_pace_is_calendar_limited(self):
        # Two full-DoD cycles/day (the Low-trace pace): 1300 cycles last
        # ~1.8 years -> cycle limited, not calendar limited.
        projection = project_lifetime(cycled_bank(2.0), observed_days=1.0)
        assert projection.cycles_per_day == pytest.approx(2.0)
        assert projection.cycle_limited_years == pytest.approx(1300 / 2 / 365, rel=0.01)
        assert not projection.calendar_limited

    def test_gentle_cycling_hits_calendar_life(self):
        projection = project_lifetime(cycled_bank(0.2), observed_days=1.0)
        assert projection.calendar_limited
        assert projection.projected_years == CALENDAR_LIFE_YEARS

    def test_never_cycled(self):
        projection = project_lifetime(BatteryBank(), observed_days=1.0)
        assert projection.cycles_per_day == 0.0
        assert projection.cycle_limited_years == float("inf")
        assert projection.projected_years == CALENDAR_LIFE_YEARS

    def test_cost_amortisation(self):
        projection = project_lifetime(
            cycled_bank(2.0), observed_days=1.0, unit_price_usd=100.0, units=10
        )
        assert projection.replacement_cost_per_year_usd == pytest.approx(
            1000.0 / projection.projected_years
        )

    def test_faster_cycling_costs_more(self):
        slow = project_lifetime(cycled_bank(1.0), 1.0)
        fast = project_lifetime(cycled_bank(4.0), 1.0)
        assert fast.replacement_cost_per_year_usd > slow.replacement_cost_per_year_usd

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            project_lifetime(BatteryBank(), observed_days=0.0)
        with pytest.raises(ConfigurationError):
            project_lifetime(BatteryBank(), 1.0, unit_price_usd=0.0)


class TestEndToEnd:
    def test_from_a_real_run(self):
        from repro.core.policies import make_policy
        from repro.sim.engine import Simulation
        from repro.sim.experiment import ExperimentConfig

        cfg = ExperimentConfig(days=1.0, policies=("GreenHetero",))
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"),
            rack=cfg.build_rack(),
            clock=cfg.build_clock(),
            grid_budget_w=cfg.grid_budget_w,
            seed=cfg.seed,
        )
        sim.run()
        projection = project_lifetime(sim.controller.pdu.battery, observed_days=1.0)
        # Paper: "relatively very small impact on the lifetime".
        assert projection.projected_years > 1.0
        assert projection.cycles_per_day < 3.0


class TestUnlimitedSupplyExclusion:
    def test_sentinel_has_no_lifetime(self):
        from repro.power.battery import UnlimitedSupply

        with pytest.raises(ConfigurationError):
            project_lifetime(UnlimitedSupply(), observed_days=1.0)
