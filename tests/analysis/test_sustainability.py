"""Carbon and cost accounting."""

import pytest

from repro.analysis.sustainability import (
    SustainabilityReport,
    sustainability_report,
)
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig, run_experiment


@pytest.fixture(scope="module")
def logs():
    result = run_experiment(
        ExperimentConfig(days=0.5, policies=("Uniform", "GreenHetero"))
    )
    return result


class TestReport:
    def test_fields_consistent(self, logs):
        report = sustainability_report(logs.log("GreenHetero"), 900.0)
        assert report.delivered_kwh == pytest.approx(
            report.renewable_kwh + report.battery_kwh + report.grid_kwh
        )
        assert 0.0 <= report.renewable_fraction <= 1.0
        assert 0.0 <= report.curtailment_fraction <= 1.0
        assert report.co2_kg >= 0.0
        assert report.grid_cost_usd >= 0.0

    def test_green_rack_is_mostly_renewable(self, logs):
        report = sustainability_report(logs.log("GreenHetero"), 900.0)
        assert report.renewable_fraction > 0.3

    def test_grid_energy_matches_telemetry(self, logs):
        log = logs.log("GreenHetero")
        report = sustainability_report(log, 900.0)
        assert report.grid_kwh * 1000.0 == pytest.approx(
            log.grid_energy_wh(900.0), rel=1e-6
        )

    def test_zero_carbon_intensities(self, logs):
        report = sustainability_report(
            logs.log("GreenHetero"), 900.0,
            grid_co2_kg_per_kwh=0.0, solar_co2_kg_per_kwh=0.0,
        )
        assert report.co2_kg == 0.0

    def test_carbon_scales_with_grid_intensity(self, logs):
        log = logs.log("GreenHetero")
        low = sustainability_report(log, 900.0, grid_co2_kg_per_kwh=0.1)
        high = sustainability_report(log, 900.0, grid_co2_kg_per_kwh=0.9)
        if low.grid_kwh > 0:
            assert high.co2_kg > low.co2_kg

    def test_bad_epoch_rejected(self, logs):
        with pytest.raises(ConfigurationError):
            sustainability_report(logs.log("GreenHetero"), 0.0)

    def test_bad_intensity_rejected(self, logs):
        with pytest.raises(ConfigurationError):
            sustainability_report(logs.log("GreenHetero"), 900.0, grid_co2_kg_per_kwh=-1.0)


class TestEmptyish:
    def test_report_dataclass_properties(self):
        report = SustainabilityReport(
            renewable_kwh=0.0, battery_kwh=0.0, grid_kwh=0.0,
            curtailed_kwh=0.0, peak_grid_w=0.0, co2_kg=0.0, grid_cost_usd=0.0,
        )
        assert report.delivered_kwh == 0.0
        assert report.renewable_fraction == 0.0
        assert report.curtailment_fraction == 0.0
