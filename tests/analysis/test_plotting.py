"""ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import bar_chart, hbar, sparkline, timeline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_levels(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line == "".join(sorted(line))

    def test_flat_series_mid_level(self):
        assert sparkline([5.0, 5.0]) == "▄▄"

    def test_fixed_bounds_clamp(self):
        line = sparkline([-10.0, 100.0], lo=0.0, hi=1.0)
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([1.0], lo=2.0, hi=1.0)


class TestHbar:
    def test_full_and_empty(self):
        assert hbar(1.0, 1.0, width=5) == "#####"
        assert hbar(0.0, 1.0, width=5) == "....."

    def test_half(self):
        assert hbar(0.5, 1.0, width=4) == "##.."

    def test_overflow_clamped(self):
        assert hbar(10.0, 1.0, width=3) == "###"

    def test_zero_scale(self):
        assert hbar(1.0, 0.0, width=3) == "..."

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            hbar(1.0, 1.0, width=0)


class TestBarChart:
    def test_renders_all_rows(self):
        chart = bar_chart({"Uniform": 1.0, "GreenHetero": 1.6})
        assert "Uniform" in chart and "GreenHetero" in chart
        assert "1.60" in chart

    def test_longest_bar_is_max(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_title(self):
        chart = bar_chart({"a": 1.0}, title="Fig 9")
        assert chart.splitlines()[0] == "Fig 9"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})


class TestTimeline:
    def test_stacked_series(self):
        text = timeline({"solar": [0, 1, 2], "soc": [2, 1, 0]})
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("solar")

    def test_stride(self):
        text = timeline({"x": list(range(8))}, stride=2)
        assert "x2" in text          # stride annotated on the axis
        assert "0 .. 3" in text      # 8 samples downsampled to 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline({"a": [1], "b": [1, 2]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline({})

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline({"a": [1.0]}, stride=0)
