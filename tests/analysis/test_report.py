"""Markdown experiment reports."""

import pytest

from repro.analysis.report import experiment_report, save_experiment_report
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        ExperimentConfig(days=0.25, policies=("Uniform", "GreenHetero"))
    )


class TestReport:
    def test_contains_all_sections(self, result):
        text = experiment_report(result)
        for heading in ("# GreenHetero", "## Configuration", "## Policies",
                        "## Energy and carbon", "## Timeline"):
            assert heading in text

    def test_policy_rows_present(self, result):
        text = experiment_report(result)
        assert "| Uniform |" in text
        assert "| GreenHetero |" in text

    def test_baseline_gain_is_one(self, result):
        text = experiment_report(result)
        uniform_row = next(l for l in text.splitlines() if l.startswith("| Uniform"))
        assert "1.00x" in uniform_row

    def test_custom_title_and_baseline(self, result):
        text = experiment_report(result, title="My study", baseline="GreenHetero")
        assert text.startswith("# My study")

    def test_unknown_baseline_rejected(self, result):
        with pytest.raises(ConfigurationError):
            experiment_report(result, baseline="Manual")

    def test_empty_result_rejected(self):
        empty = ExperimentResult(config=ExperimentConfig())
        with pytest.raises(ConfigurationError):
            experiment_report(empty)

    def test_save_to_file(self, result, tmp_path):
        path = tmp_path / "report.md"
        save_experiment_report(result, path)
        assert path.read_text().startswith("# GreenHetero")

    def test_constrained_sweep_noted(self):
        res = run_experiment(
            ExperimentConfig.insufficient_supply(
                "Streamcluster", days=0.1, policies=("Uniform", "GreenHetero")
            )
        )
        assert "constrained supply sweep" in experiment_report(res)


class TestCliIntegration:
    def test_run_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "report.md"
        code = main(
            [
                "run", "--days", "0.125",
                "--policies", "Uniform", "GreenHetero",
                "--report", str(path),
            ]
        )
        assert code == 0
        assert "## Policies" in path.read_text()
