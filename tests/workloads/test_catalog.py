"""Workload catalog (paper Table I)."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.catalog import (
    FIG9_WORKLOADS,
    GPU_WORKLOADS,
    INTERACTIVE_WORKLOADS,
    WORKLOADS,
    WorkloadKind,
    get_workload,
    workload_names,
)


class TestTableI:
    def test_interactive_services(self):
        assert set(INTERACTIVE_WORKLOADS) == {"SPECjbb", "Web-search", "Memcached"}

    @pytest.mark.parametrize(
        "name,suite,metric",
        [
            ("SPECjbb", "SPEC", "jops"),
            ("Web-search", "Cloudsuite", "ops"),
            ("Memcached", "Cloudsuite", "rps"),
            ("Mcf", "SPECCPU", "ips"),
            ("Srad_v1", "Rodinia", "ips"),
        ],
    )
    def test_suite_and_metric(self, name, suite, metric):
        w = get_workload(name)
        assert w.suite == suite
        assert w.metric == metric

    def test_eight_parsec_workloads(self):
        parsec = [w for w in WORKLOADS.values() if w.suite == "PARSEC"]
        assert len(parsec) == 8

    @pytest.mark.parametrize(
        "name,pct,bound_ms",
        [
            ("SPECjbb", 0.99, 500),
            ("Web-search", 0.90, 500),
            ("Memcached", 0.95, 10),
        ],
    )
    def test_slo_constraints(self, name, pct, bound_ms):
        slo = get_workload(name).slo
        assert slo is not None
        assert slo.percentile == pct
        assert slo.bound_s == pytest.approx(bound_ms / 1000)

    def test_batch_workloads_have_no_slo(self):
        assert get_workload("Streamcluster").slo is None
        assert get_workload("Mcf").slo is None

    def test_gpu_workloads_are_rodinia_plus_streamcluster(self):
        assert set(GPU_WORKLOADS) == {
            "Streamcluster",
            "Srad_v1",
            "Particlefilter",
            "Cfd",
        }

    def test_fig9_has_thirteen_workloads(self):
        assert len(FIG9_WORKLOADS) == 13
        assert set(FIG9_WORKLOADS) <= set(workload_names())

    def test_is_interactive_flag(self):
        assert get_workload("SPECjbb").is_interactive
        assert not get_workload("Vips").is_interactive

    def test_kinds(self):
        assert get_workload("Memcached").kind is WorkloadKind.INTERACTIVE
        assert get_workload("X264").kind is WorkloadKind.BATCH
        assert get_workload("Cfd").kind is WorkloadKind.HPC


class TestLookup:
    def test_case_insensitive(self):
        assert get_workload("specjbb").name == "SPECjbb"

    def test_unknown_raises(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("Redis")
