"""Ground-truth workload response parameters."""

import pytest

from repro.errors import IncompatibleWorkloadError, UnknownWorkloadError
from repro.servers.platform import get_platform
from repro.workloads.catalog import WORKLOADS, Workload, WorkloadKind, get_workload
from repro.workloads.models import (
    WorkloadResponse,
    register_workload,
    response_for,
)


class TestTableSync:
    def test_every_catalog_entry_has_a_response(self):
        for name in WORKLOADS:
            assert response_for(name).workload == name

    def test_unknown_workload_raises(self):
        with pytest.raises(UnknownWorkloadError):
            response_for("CrysisBenchmark")

    def test_lookup_by_workload_object(self):
        wl = get_workload("SPECjbb")
        assert response_for(wl).workload == "SPECjbb"


class TestCalibration:
    """The qualitative behaviours the paper's evaluation depends on."""

    def test_streamcluster_most_frequency_sensitive(self):
        sc = response_for("Streamcluster").frequency_sensitivity
        for name in WORKLOADS:
            assert response_for(name).frequency_sensitivity <= sc

    def test_memcached_least_frequency_sensitive(self):
        mc = response_for("Memcached").frequency_sensitivity
        for name in WORKLOADS:
            assert response_for(name).frequency_sensitivity >= mc

    def test_interactive_run_below_saturation(self):
        # Section III-C: production interactive clusters run at low
        # utilisation.
        assert response_for("Memcached").utilization_scale <= 0.5
        assert response_for("Web-search").utilization_scale <= 0.8

    def test_batch_workloads_saturate(self):
        for name in ("Streamcluster", "Canneal", "X264"):
            assert response_for(name).utilization_scale == 1.0

    def test_mcf_is_single_threaded(self):
        assert response_for("Mcf").single_threaded

    def test_srad_is_most_gpu_friendly(self):
        srad = response_for("Srad_v1").gpu_speedup
        for name in ("Streamcluster", "Particlefilter", "Cfd"):
            assert response_for(name).gpu_speedup <= srad

    def test_cfd_gpu_speedup_near_one(self):
        # Fig. 14: Cfd performs about the same on CPU and GPU.
        assert response_for("Cfd").gpu_speedup == pytest.approx(1.0, abs=0.5)

    def test_non_gpu_workloads_have_no_speedup(self):
        assert response_for("SPECjbb").gpu_speedup is None


class TestCapability:
    def test_single_threaded_ignores_cores(self):
        mcf = response_for("Mcf")
        e5 = get_platform("E5-2620")   # 12 cores, 2.0 GHz
        i5 = get_platform("i5-4460")   # 4 cores, 3.2 GHz
        # Single-threaded: the high-clocked i5 wins despite fewer cores.
        assert mcf.capability(i5) > mcf.capability(e5)

    def test_parallel_scales_with_cores(self):
        sc = response_for("Freqmine")
        e5 = get_platform("E5-2620")
        e5_small = get_platform("E5-2603")
        assert sc.capability(e5) > sc.capability(e5_small)

    def test_affinity_multiplier_applies(self):
        jbb = response_for("SPECjbb")
        i5 = get_platform("i5-4460")
        base = i5.cores * 3.2 * 1.1  # cores * GHz * IPC factor
        assert jbb.capability(i5) == pytest.approx(base * 1.18)

    def test_max_throughput_on_gpu_uses_speedup(self):
        srad = response_for("Srad_v1")
        gpu = get_platform("TitanXp")
        ref = get_platform("E5-2620")
        assert srad.max_throughput(gpu) == pytest.approx(
            srad.gpu_speedup * srad.max_throughput(ref)
        )

    def test_gpu_rejects_cpu_only_workload(self):
        with pytest.raises(IncompatibleWorkloadError):
            response_for("SPECjbb").max_throughput(get_platform("TitanXp"))

    def test_runs_on(self):
        assert response_for("Srad_v1").runs_on(get_platform("TitanXp"))
        assert not response_for("SPECjbb").runs_on(get_platform("TitanXp"))
        assert response_for("SPECjbb").runs_on(get_platform("i5-4460"))


class TestRegistration:
    def _new_pair(self, name="TestService"):
        wl = Workload(name, "Custom", WorkloadKind.BATCH, "ops")
        resp = WorkloadResponse(
            workload=name,
            base_rate=100.0,
            frequency_sensitivity=0.7,
            power_intensity=0.8,
        )
        return wl, resp

    def test_register_and_use(self):
        wl, resp = self._new_pair()
        register_workload(wl, resp)
        try:
            assert get_workload("TestService").suite == "Custom"
            assert response_for("TestService").base_rate == 100.0
        finally:
            from repro.workloads.catalog import WORKLOADS
            from repro.workloads import models
            del WORKLOADS["TestService"]
            del models._RESPONSES["TestService"]

    def test_duplicate_rejected(self):
        wl, resp = self._new_pair("SPECjbb")
        with pytest.raises(UnknownWorkloadError):
            register_workload(wl, resp)

    def test_mismatched_names_rejected(self):
        wl, _ = self._new_pair("NameA")
        _, resp = self._new_pair("NameB")
        with pytest.raises(UnknownWorkloadError):
            register_workload(wl, resp)
