"""Offered-load generation."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.catalog import get_workload
from repro.workloads.generator import LoadGenerator


def half_sine(t):
    # A simple valid pattern in [0, 1].
    return 0.5


class TestBatch:
    def test_batch_always_full_load(self):
        gen = LoadGenerator(get_workload("Streamcluster"), pattern=half_sine)
        for t in (0.0, 3600.0, 86400.0):
            assert gen.at(t).fraction == 1.0

    def test_no_pattern_means_full_load(self):
        gen = LoadGenerator(get_workload("SPECjbb"), pattern=None)
        assert gen.at(100.0).fraction == 1.0


class TestInteractive:
    def test_follows_pattern(self):
        gen = LoadGenerator(get_workload("SPECjbb"), pattern=half_sine, jitter=0.0)
        assert gen.at(0.0).fraction == pytest.approx(0.5)

    def test_jitter_is_seeded(self):
        g1 = LoadGenerator(get_workload("SPECjbb"), pattern=half_sine, seed=7)
        g2 = LoadGenerator(get_workload("SPECjbb"), pattern=half_sine, seed=7)
        assert [g1.at(t).fraction for t in range(5)] == [
            g2.at(t).fraction for t in range(5)
        ]

    def test_different_seeds_differ(self):
        g1 = LoadGenerator(get_workload("SPECjbb"), pattern=half_sine, seed=1)
        g2 = LoadGenerator(get_workload("SPECjbb"), pattern=half_sine, seed=2)
        assert g1.at(0.0).fraction != g2.at(0.0).fraction

    def test_clamped_to_unit_interval(self):
        gen = LoadGenerator(
            get_workload("SPECjbb"), pattern=lambda t: 1.0, jitter=0.5, seed=3
        )
        for t in range(50):
            assert 0.0 <= gen.at(float(t)).fraction <= 1.0

    def test_bad_pattern_value_rejected(self):
        gen = LoadGenerator(get_workload("SPECjbb"), pattern=lambda t: 1.5)
        with pytest.raises(ConfigurationError):
            gen.at(0.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadGenerator(get_workload("SPECjbb"), jitter=-0.1)

    def test_series(self):
        gen = LoadGenerator(get_workload("SPECjbb"), pattern=half_sine, jitter=0.0)
        loads = gen.series([0.0, 60.0, 120.0])
        assert len(loads) == 3
        assert [l.time_s for l in loads] == [0.0, 60.0, 120.0]
