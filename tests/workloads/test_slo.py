"""Latency-SLO constrained throughput model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads.slo import (
    LatencySLO,
    percentile_latency,
    slo_constrained_throughput,
)


class TestLatencySLO:
    def test_headroom_formula(self):
        slo = LatencySLO(percentile=0.99, bound_s=0.5)
        assert slo.headroom_ops == pytest.approx(math.log(100) / 0.5)

    def test_tighter_bound_more_headroom(self):
        loose = LatencySLO(0.95, 0.5)
        tight = LatencySLO(0.95, 0.01)
        assert tight.headroom_ops > loose.headroom_ops

    def test_higher_percentile_more_headroom(self):
        p90 = LatencySLO(0.90, 0.5)
        p99 = LatencySLO(0.99, 0.5)
        assert p99.headroom_ops > p90.headroom_ops

    def test_describe(self):
        assert LatencySLO(0.99, 0.5).describe() == "99%-ile 500ms"

    @pytest.mark.parametrize("pct", [0.0, 1.0, -0.1, 1.5])
    def test_bad_percentile_rejected(self, pct):
        with pytest.raises(ConfigurationError):
            LatencySLO(pct, 0.5)

    def test_bad_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencySLO(0.99, 0.0)


class TestConstrainedThroughput:
    def test_none_slo_passes_capacity_through(self):
        assert slo_constrained_throughput(1234.0, None) == 1234.0

    def test_subtracts_headroom(self):
        slo = LatencySLO(0.99, 0.5)
        assert slo_constrained_throughput(1000.0, slo) == pytest.approx(
            1000.0 - slo.headroom_ops
        )

    def test_floors_at_zero(self):
        slo = LatencySLO(0.99, 0.001)  # enormous headroom
        assert slo_constrained_throughput(10.0, slo) == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            slo_constrained_throughput(-1.0, None)


class TestPercentileLatency:
    def test_latency_at_headroom_equals_bound(self):
        slo = LatencySLO(0.95, 0.2)
        mu = 1000.0
        lam = slo_constrained_throughput(mu, slo)
        assert percentile_latency(mu, lam, slo) == pytest.approx(0.2)

    def test_unstable_queue_is_infinite(self):
        slo = LatencySLO(0.95, 0.2)
        assert percentile_latency(100.0, 100.0, slo) == math.inf
        assert percentile_latency(100.0, 150.0, slo) == math.inf

    def test_latency_increases_with_load(self):
        slo = LatencySLO(0.95, 0.2)
        l1 = percentile_latency(1000.0, 100.0, slo)
        l2 = percentile_latency(1000.0, 900.0, slo)
        assert l2 > l1
