"""Edge-case and error-path coverage across modules."""

import numpy as np
import pytest

from repro.analysis.reporting import format_gains
from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.traces.nrel import synthesize_irradiance


class TestExperimentResultEdges:
    def test_gain_with_zero_baseline_is_inf(self):
        import dataclasses

        from repro.sim.telemetry import TelemetryLog

        result = run_experiment(
            ExperimentConfig(days=0.1, policies=("Uniform", "GreenHetero"))
        )
        # Rebuild the baseline log with zeroed throughput: a positive
        # numerator over a zero baseline reports an infinite gain.
        zero = TelemetryLog()
        for record in result.log("Uniform"):
            zero.append(dataclasses.replace(record, throughput=0.0))
        result.logs["Uniform"] = zero
        assert result.gain("GreenHetero") == float("inf")

    def test_insufficient_mask_without_uniform(self):
        result = run_experiment(ExperimentConfig(days=0.1, policies=("GreenHetero",)))
        mask = result.insufficient_mask()
        assert mask.shape == (len(result.log("GreenHetero")),)

    def test_policy_summary_fields(self):
        result = run_experiment(ExperimentConfig(days=0.1, policies=("GreenHetero",)))
        summary = result.summary("GreenHetero")
        assert summary.policy == "GreenHetero"
        assert summary.battery_discharge_hours >= 0.0
        assert summary.mean_throughput_insufficient >= 0.0


class TestControllerEdges:
    def _controller(self, grid_w=0.0, soc=0.6):
        rack = Rack([("E5-2620", 2), ("i5-4460", 2)], "Streamcluster")
        trace = synthesize_irradiance(days=1, seed=3)
        pdu = PDU(
            SolarFarm.sized_for(trace, 1.0),  # effectively no solar
            BatteryBank(initial_soc_fraction=soc),
            GridSource(budget_w=grid_w),
        )
        return GreenHeteroController(
            rack, pdu, make_policy("GreenHetero"), monitor=Monitor(seed=3)
        )

    def test_everything_dead_yields_zero_throughput_not_crash(self):
        controller = self._controller(grid_w=0.0, soc=0.6)
        record = controller.run_epoch(0.0)
        assert record.throughput == 0.0
        assert record.epu == 0.0

    def test_brownout_flag_when_sources_underdeliver(self):
        # Grid mode plans a 50 W budget, but sleeping servers still draw
        # sleep power the sources cannot fully deliver once the grid is
        # cut below it mid-plan.
        controller = self._controller(grid_w=5.0, soc=0.6)
        record = controller.run_epoch(0.0)
        # Whatever happened, accounting stayed consistent.
        assert 0.0 <= record.epu <= 1.0
        assert record.throughput >= 0.0

    def test_epoch_with_zero_budget_keeps_predictors_updating(self):
        controller = self._controller(grid_w=0.0, soc=0.6)
        controller.run_epoch(0.0)
        controller.run_epoch(900.0)
        assert controller.scheduler.renewable_predictor.ready


class TestMonitorDemand:
    def test_observe_demand_jitters(self):
        readings = {Monitor(seed=s).observe_demand(1000.0) for s in range(5)}
        assert len(readings) > 1
        for value in readings:
            assert 900.0 < value < 1100.0


class TestReportingEdges:
    def test_format_gains_line(self):
        line = format_gains({"GreenHetero": 1.55})
        assert "1.55x" in line


class TestRackDemandEdges:
    def test_zero_load_demand_is_above_idle(self):
        rack = Rack([("E5-2620", 2), ("i5-4460", 2)], "SPECjbb")
        demand = rack.demand_at_load(0.0)
        # Powered-on servers at zero offered load still burn idle plus
        # the activity floor.
        assert demand >= rack.idle_power_w

    def test_gpu_rack_demand(self):
        rack = Rack([("TitanXp", 2)], "Srad_v1")
        assert rack.demand_at_load(1.0) > 2 * 149.0  # above GPU idle


class TestSolverExhaustiveEdges:
    def test_single_group_composition(self):
        from repro.core.solver import PARSolver

        assert PARSolver.compositions(1, 0.1) == [(1.0,)]

    def test_exhaustive_single_group(self):
        from repro.core.solver import PARSolver

        ratios, value = PARSolver.exhaustive(1, lambda r: 42.0, 0.1)
        assert ratios == (1.0,)
        assert value == 42.0
