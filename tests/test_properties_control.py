"""Property-based tests on the control plane (policies, selector, enforcer).

Complements ``test_properties.py`` (substrate invariants) with laws on
the decision layer: every policy's PAR vector is a valid sub-simplex
point for arbitrary databases and budgets; the source selector's budget
never exceeds what its chosen sources can deliver; the partial-group
solver dominates the group-granular one everywhere.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.database import PerfPowerFit, ProfilingDatabase
from repro.core.policies import (
    AllocationContext,
    GroupInfo,
    make_policy,
)
from repro.core.solver import GroupModel, PARSolver, PartialGroupSolver
from repro.core.sources import PowerCase, SourceSelector
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource

# ----------------------------------------------------------------------
# Random databases and contexts
# ----------------------------------------------------------------------


def _concave_fit(t_max: float, lo: float, hi: float) -> PerfPowerFit:
    span = hi - lo
    return PerfPowerFit(
        coefficients=(
            -t_max / span**2,
            2 * t_max * hi / span**2,
            t_max - t_max * hi**2 / span**2,
        ),
        min_power_w=lo,
        max_power_w=hi,
    )


group_params = st.tuples(
    st.floats(min_value=10.0, max_value=500.0),   # t_max
    st.floats(min_value=30.0, max_value=120.0),   # lo
    st.floats(min_value=15.0, max_value=120.0),   # span
    st.integers(min_value=1, max_value=6),        # count
)


@st.composite
def contexts(draw):
    n_groups = draw(st.integers(min_value=1, max_value=3))
    db = ProfilingDatabase()
    groups = []
    for i in range(n_groups):
        t_max, lo, span, count = draw(group_params)
        key = (f"plat{i}", "wl")
        fit = _concave_fit(t_max, lo, lo + span)
        db.ensure_entry(key, idle_power_w=lo * 0.8, max_power_w=lo + span)
        entry = db._entries[key]
        entry.min_active_power_w = lo
        entry.fit = fit
        groups.append(GroupInfo(f"plat{i}", count, key))
    budget = draw(st.floats(min_value=0.0, max_value=3000.0))
    return AllocationContext(budget_w=budget, groups=tuple(groups), database=db)


@given(ctx=contexts(), policy_name=st.sampled_from(
    ["Uniform", "GreenHetero-p", "GreenHetero-a", "GreenHetero", "OnOff", "GreenHetero+"]
))
@settings(max_examples=80, deadline=None)
def test_policies_emit_valid_par_vectors(ctx, policy_name):
    policy = make_policy(policy_name)
    plan = policy.allocate_plan(ctx)
    assert len(plan.ratios) == len(ctx.groups)
    assert all(r >= -1e-12 for r in plan.ratios)
    assert sum(plan.ratios) <= 1.0 + 1e-6
    if plan.powered_counts is not None:
        assert len(plan.powered_counts) == len(ctx.groups)
        for k, g in zip(plan.powered_counts, ctx.groups):
            assert 0 <= k <= g.count


@given(ctx=contexts())
@settings(max_examples=50, deadline=None)
def test_partial_solver_dominates_group_granular(ctx):
    groups = ctx.group_models()
    base = PARSolver(safety_margin=0.0).solve(groups, ctx.budget_w)
    partial = PartialGroupSolver(safety_margin=0.0).solve(groups, ctx.budget_w)
    assert partial.expected_perf >= base.expected_perf - 1e-6


@given(ctx=contexts())
@settings(max_examples=50, deadline=None)
def test_partial_solver_feasible(ctx):
    groups = ctx.group_models()
    sol = PartialGroupSolver(safety_margin=0.0).solve(groups, ctx.budget_w)
    total = sum(k * p for k, p in zip(sol.powered_counts, sol.per_server_w))
    assert total <= ctx.budget_w + 1e-4
    assert sum(sol.ratios) <= 1.0 + 1e-6


# ----------------------------------------------------------------------
# Source selector
# ----------------------------------------------------------------------


@given(
    renewable=st.floats(min_value=0.0, max_value=3000.0),
    demand=st.floats(min_value=0.0, max_value=3000.0),
    soc=st.floats(min_value=0.6, max_value=1.0),
    grid_budget=st.floats(min_value=0.0, max_value=2000.0),
)
@settings(max_examples=100, deadline=None)
def test_selector_budget_is_deliverable(renewable, demand, soc, grid_budget):
    battery = BatteryBank(initial_soc_fraction=soc)
    grid = GridSource(budget_w=grid_budget)
    selector = SourceSelector()
    decision = selector.decide(renewable, demand, battery, grid, 900.0)
    deliverable = (
        renewable
        + (battery.max_discharge_power_w(900.0) if decision.use_battery else 0.0)
        + grid.budget_w
    )
    assert decision.rack_budget_w <= deliverable + 1e-6
    assert decision.rack_budget_w <= demand + 1e-6
    assert decision.rack_budget_w >= 0.0


@given(
    demand=st.floats(min_value=1.0, max_value=3000.0),
    soc=st.floats(min_value=0.6, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_selector_night_is_never_case_a(demand, soc):
    battery = BatteryBank(initial_soc_fraction=soc)
    selector = SourceSelector()
    decision = selector.decide(0.0, demand, battery, GridSource(), 900.0)
    assert decision.case is PowerCase.C


@given(
    renewable=st.floats(min_value=10.0, max_value=5000.0),
    demand=st.floats(min_value=1.0, max_value=3000.0),
)
@settings(max_examples=60, deadline=None)
def test_selector_case_a_iff_renewable_covers(renewable, demand):
    assume(abs(renewable - demand) > 1.0)  # avoid boundary ties
    selector = SourceSelector()
    decision = selector.decide(
        renewable, demand, BatteryBank(), GridSource(), 900.0
    )
    if renewable > demand:
        assert decision.case is PowerCase.A
        assert decision.sufficient
    else:
        assert decision.case is not PowerCase.A
