"""API-contract tests: the documented public surface must exist.

Guards against accidental breakage of the names README, the tutorial,
and the examples rely on.
"""

import importlib

import pytest

import repro

TOP_LEVEL = [
    "ExperimentConfig",
    "ExperimentResult",
    "GreenHeteroController",
    "HoltPredictor",
    "PARSolver",
    "Policy",
    "ProfilingDatabase",
    "Simulation",
    "UniformPolicy",
    "effective_power_utilization",
    "make_policy",
    "run_experiment",
    "run_experiments",
]

SUBPACKAGE_SURFACE = {
    "repro.core": [
        "ClusterCoordinator", "Enforcer", "FitKind", "GridSplit",
        "HoltPredictor", "Monitor", "PARSolver", "PerfPowerFit",
        "PowerCase", "ProfilingDatabase", "SourceSelector",
        "load_database", "save_database",
    ],
    "repro.power": [
        "BatteryBank", "GridSource", "HybridRenewable", "PDU",
        "SolarFarm", "WindFarm",
    ],
    "repro.servers": [
        "PLATFORMS", "PowerStateSet", "Rack", "ResponseCurve",
        "ServerSpec", "get_platform", "register_platform",
    ],
    "repro.workloads": [
        "WORKLOADS", "LatencySLO", "Workload", "get_workload",
        "response_for",
    ],
    "repro.sim": [
        "ExperimentConfig", "FaultInjector", "SimClock", "Simulation",
        "TelemetryLog", "WorkloadSchedule", "run_experiment",
        "run_experiments",
    ],
    "repro.analysis": [
        "GainStatistics", "SustainabilityReport", "bar_chart",
        "format_table", "gain_statistics", "geometric_mean",
        "projection_error", "seed_sweep", "sparkline",
        "sustainability_report",
    ],
    "repro.traces": [
        "DiurnalLoadPattern", "IrradianceTrace", "Weather",
        "synthesize_irradiance",
    ],
}


class TestTopLevel:
    @pytest.mark.parametrize("name", TOP_LEVEL)
    def test_exported(self, name):
        assert hasattr(repro, name), name
        assert name in repro.__all__

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestSubpackages:
    @pytest.mark.parametrize(
        "module,name",
        [(m, n) for m, names in SUBPACKAGE_SURFACE.items() for n in names],
    )
    def test_surface(self, module, name):
        mod = importlib.import_module(module)
        assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize("module", list(SUBPACKAGE_SURFACE))
    def test_all_is_sorted_and_valid(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"


class TestDocstrings:
    @pytest.mark.parametrize(
        "module",
        [
            "repro", "repro.core.controller", "repro.core.solver",
            "repro.core.database", "repro.core.predictor",
            "repro.core.policies", "repro.core.sources",
            "repro.power.battery", "repro.power.pdu",
            "repro.servers.power_model", "repro.sim.engine",
        ],
    )
    def test_module_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 80

    def test_public_classes_documented(self):
        from repro.core.controller import GreenHeteroController
        from repro.core.solver import PARSolver, PartialGroupSolver

        for cls in (GreenHeteroController, PARSolver, PartialGroupSolver):
            assert cls.__doc__ and len(cls.__doc__) > 80
            for name, member in vars(cls).items():
                if callable(member) and not name.startswith("_"):
                    assert member.__doc__, f"{cls.__name__}.{name} undocumented"
