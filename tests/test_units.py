"""Unit-convention helpers."""

import pytest

from repro import units


def test_epoch_is_fifteen_minutes():
    assert units.EPOCH_SECONDS == 15 * 60


def test_substep_is_two_minutes():
    assert units.SUBSTEP_SECONDS == 2 * 60


def test_training_run_is_ten_minutes():
    assert units.TRAINING_RUN_SECONDS == 10 * 60


def test_training_run_shorter_than_epoch():
    # Section IV-B.2: the training run fits inside one scheduling epoch.
    assert units.TRAINING_RUN_SECONDS < units.EPOCH_SECONDS


def test_epochs_per_day():
    assert units.EPOCHS_PER_DAY == 96


def test_minutes():
    assert units.minutes(2) == 120


def test_hours():
    assert units.hours(1.5) == 5400


def test_days():
    assert units.days(2) == 2 * 86400


def test_watt_hours():
    # 1000 W for half an hour is 500 Wh.
    assert units.watt_hours(1000.0, 1800.0) == pytest.approx(500.0)


def test_watt_hours_zero_duration():
    assert units.watt_hours(500.0, 0.0) == 0.0


def test_wh_to_joules():
    assert units.wh_to_joules(1.0) == 3600.0


def test_ghz():
    assert units.ghz(2.0) == 2.0e9


def test_mhz():
    assert units.mhz(1582) == pytest.approx(1.582e9)


def test_seconds_per_day_consistency():
    assert units.SECONDS_PER_DAY == units.HOURS_PER_DAY * units.SECONDS_PER_HOUR
