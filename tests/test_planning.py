"""Capacity-planning sizing searches."""

import pytest

from repro.errors import ConfigurationError
from repro.planning import SizingResult, size_battery, size_grid, size_solar
from repro.sim.experiment import ExperimentConfig


@pytest.fixture(scope="module")
def quick_config():
    """A short, deterministic sizing scenario."""
    return ExperimentConfig(days=0.5, policies=("GreenHetero",), seed=3)


class TestSizeSolar:
    def test_finds_minimal_scale(self, quick_config):
        result = size_solar(
            quick_config, target_renewable_fraction=0.5, lo=0.2, hi=3.0,
            tolerance=0.2,
        )
        assert result.met
        assert 0.2 <= result.value <= 3.0
        # Minimality: meaningfully below the scale would miss the target.
        smaller = size_solar(
            quick_config, target_renewable_fraction=0.5,
            lo=max(0.2, result.value - 0.5), hi=max(0.21, result.value - 0.5),
            tolerance=0.2,
        )
        if result.value - 0.5 > 0.2:
            assert not smaller.met

    def test_unreachable_target_reports_miss(self, quick_config):
        result = size_solar(
            quick_config, target_renewable_fraction=1.0, lo=0.2, hi=0.3,
            tolerance=0.1,
        )
        assert not result.met
        assert result.value == 0.3

    def test_bigger_target_needs_bigger_array(self, quick_config):
        small = size_solar(quick_config, 0.4, tolerance=0.2)
        large = size_solar(quick_config, 0.7, tolerance=0.2)
        assert large.value >= small.value - 0.21

    def test_bad_target_rejected(self, quick_config):
        with pytest.raises(ConfigurationError):
            size_solar(quick_config, target_renewable_fraction=0.0)


class TestSizeBattery:
    def test_finds_minimal_count(self, quick_config):
        result = size_battery(
            quick_config, target_renewable_fraction=0.6, solar_scale=1.4,
            lo=1, hi=24,
        )
        assert result.met
        assert result.value == int(result.value)
        assert 1 <= result.value <= 24

    def test_bad_bounds_rejected(self, quick_config):
        with pytest.raises(ConfigurationError):
            size_battery(quick_config, lo=0)
        with pytest.raises(ConfigurationError):
            size_battery(quick_config, lo=5, hi=2)


class TestSizeGrid:
    def test_underprovisioning(self, quick_config):
        result = size_grid(
            quick_config, target_performance_fraction=0.85,
            lo=0.0, hi=1600.0, tolerance=200.0,
        )
        assert result.met
        # GreenHetero sustains 85% of unconstrained perf well below the
        # full feed — the Fig. 12 argument.
        assert result.value < 1600.0

    def test_bad_target_rejected(self, quick_config):
        with pytest.raises(ConfigurationError):
            size_grid(quick_config, target_performance_fraction=1.5)


class TestSizingResult:
    def test_met_property(self):
        assert SizingResult(1.0, 0.8, 0.75, 3).met
        assert not SizingResult(1.0, 0.7, 0.75, 3).met
