"""SupplyBreakdown accounting record."""

import pytest

from repro.errors import PowerError
from repro.power.sources import ChargeSource, SupplyBreakdown


class TestSupplyBreakdown:
    def test_totals(self):
        b = SupplyBreakdown(
            renewable_to_load_w=100.0,
            battery_to_load_w=50.0,
            grid_to_load_w=25.0,
            charge_w=10.0,
            charge_source=ChargeSource.GRID,
        )
        assert b.total_to_load_w == 175.0
        assert b.green_to_load_w == 150.0
        assert b.grid_total_w == 35.0

    def test_renewable_charging_not_counted_as_grid(self):
        b = SupplyBreakdown(
            renewable_to_load_w=100.0,
            charge_w=20.0,
            charge_source=ChargeSource.RENEWABLE,
        )
        assert b.grid_total_w == 0.0

    def test_negative_flow_rejected(self):
        with pytest.raises(PowerError):
            SupplyBreakdown(renewable_to_load_w=-1.0)

    def test_charge_without_source_rejected(self):
        with pytest.raises(PowerError):
            SupplyBreakdown(charge_w=5.0, charge_source=ChargeSource.NONE)

    def test_empty_breakdown(self):
        b = SupplyBreakdown()
        assert b.total_to_load_w == 0.0
        assert b.grid_total_w == 0.0
