"""Budget-capped grid source."""

import pytest

from repro.errors import PowerError
from repro.power.grid import GridSource


class TestBudget:
    def test_draw_within_budget(self):
        grid = GridSource(budget_w=1000.0)
        assert grid.draw(800.0, 3600.0) == 800.0

    def test_draw_capped_at_budget(self):
        grid = GridSource(budget_w=1000.0)
        assert grid.draw(1500.0, 3600.0) == 1000.0

    def test_zero_budget(self):
        grid = GridSource(budget_w=0.0)
        assert grid.draw(500.0, 60.0) == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(PowerError):
            GridSource(budget_w=-1.0)

    def test_negative_draw_rejected(self):
        with pytest.raises(PowerError):
            GridSource().draw(-1.0, 60.0)

    def test_bad_duration_rejected(self):
        with pytest.raises(PowerError):
            GridSource().draw(100.0, 0.0)


class TestMetering:
    def test_energy_accumulates(self):
        grid = GridSource(budget_w=1000.0)
        grid.draw(500.0, 3600.0)
        grid.draw(250.0, 7200.0)
        assert grid.energy_wh == pytest.approx(500.0 + 500.0)

    def test_peak_draw_tracked(self):
        grid = GridSource(budget_w=1000.0)
        grid.draw(300.0, 60.0)
        grid.draw(900.0, 60.0)
        grid.draw(100.0, 60.0)
        assert grid.peak_draw_w == 900.0

    def test_cost_model(self):
        grid = GridSource(
            budget_w=2000.0, peak_price_per_kw=13.61, energy_price_per_kwh=0.10
        )
        grid.draw(1000.0, 3600.0)  # 1 kWh at a 1 kW peak
        assert grid.cost_usd() == pytest.approx(13.61 + 0.10)

    def test_unused_grid_costs_nothing(self):
        assert GridSource().cost_usd() == 0.0

    def test_repr(self):
        assert "budget" in repr(GridSource())
