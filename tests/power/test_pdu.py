"""PDU flow execution: the source priority chain."""

import pytest

from repro.errors import PowerError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.power.sources import ChargeSource
from repro.traces.nrel import Weather, synthesize_irradiance

NOON = 12 * 3600.0
MIDNIGHT = 0.0


def make_pdu(solar_peak_w=1500.0, grid_budget_w=1000.0, soc=1.0, seed=5):
    trace = synthesize_irradiance(days=1, weather=Weather.HIGH, seed=seed)
    solar = SolarFarm.sized_for(trace, peak_power_w=solar_peak_w)
    battery = BatteryBank(initial_soc_fraction=soc)
    grid = GridSource(budget_w=grid_budget_w)
    return PDU(solar, battery, grid)


class TestPriorityChain:
    def test_renewable_first(self):
        pdu = make_pdu()
        renewable = pdu.solar.power_at(NOON)
        assert renewable > 500.0
        flows = pdu.supply(load_w=400.0, time_s=NOON, duration_s=900.0)
        assert flows.breakdown.renewable_to_load_w == pytest.approx(400.0)
        assert flows.breakdown.battery_to_load_w == 0.0
        assert flows.breakdown.grid_to_load_w == 0.0

    def test_battery_supplements_shortfall(self):
        pdu = make_pdu()
        flows = pdu.supply(load_w=800.0, time_s=MIDNIGHT, duration_s=900.0)
        assert flows.breakdown.renewable_to_load_w == 0.0
        assert flows.breakdown.battery_to_load_w == pytest.approx(800.0)
        assert flows.delivered_w == pytest.approx(800.0)

    def test_grid_last_resort(self):
        pdu = make_pdu(soc=0.6)  # battery at its DoD floor
        flows = pdu.supply(load_w=800.0, time_s=MIDNIGHT, duration_s=900.0)
        assert flows.breakdown.battery_to_load_w == 0.0
        assert flows.breakdown.grid_to_load_w == pytest.approx(800.0)

    def test_battery_disabled_by_controller(self):
        pdu = make_pdu()
        flows = pdu.supply(
            load_w=800.0, time_s=MIDNIGHT, duration_s=900.0, use_battery=False
        )
        assert flows.breakdown.battery_to_load_w == 0.0
        assert flows.breakdown.grid_to_load_w == pytest.approx(800.0)

    def test_underdelivery_when_everything_exhausted(self):
        pdu = make_pdu(soc=0.6, grid_budget_w=300.0)
        flows = pdu.supply(load_w=900.0, time_s=MIDNIGHT, duration_s=900.0)
        assert flows.delivered_w == pytest.approx(300.0)


class TestCharging:
    def test_surplus_renewable_charges_battery(self):
        pdu = make_pdu(soc=0.6)
        flows = pdu.supply(load_w=200.0, time_s=NOON, duration_s=900.0)
        assert flows.breakdown.charge_source is ChargeSource.RENEWABLE
        assert flows.breakdown.charge_w > 0.0

    def test_grid_charging_when_enabled(self):
        pdu = make_pdu(soc=0.6)
        flows = pdu.supply(
            load_w=400.0,
            time_s=MIDNIGHT,
            duration_s=900.0,
            use_battery=False,
            grid_charges_battery=True,
        )
        assert flows.breakdown.charge_source is ChargeSource.GRID
        assert flows.breakdown.charge_w > 0.0

    def test_grid_charging_respects_budget(self):
        pdu = make_pdu(soc=0.6, grid_budget_w=1000.0)
        flows = pdu.supply(
            load_w=900.0,
            time_s=MIDNIGHT,
            duration_s=900.0,
            use_battery=False,
            grid_charges_battery=True,
        )
        assert flows.breakdown.grid_total_w <= 1000.0 + 1e-9
        assert flows.breakdown.charge_w <= 100.0 + 1e-9

    def test_single_charging_source(self):
        # Renewable surplus present: grid must not charge even if allowed.
        pdu = make_pdu(soc=0.6)
        flows = pdu.supply(
            load_w=100.0, time_s=NOON, duration_s=900.0, grid_charges_battery=True
        )
        assert flows.breakdown.charge_source is ChargeSource.RENEWABLE

    def test_full_battery_curtails_surplus(self):
        pdu = make_pdu(soc=1.0)
        flows = pdu.supply(load_w=100.0, time_s=NOON, duration_s=900.0)
        assert flows.curtailed_w > 0.0
        assert flows.breakdown.charge_w == pytest.approx(0.0)


class TestAccounting:
    def test_energy_conservation(self):
        pdu = make_pdu()
        load = 700.0
        flows = pdu.supply(load_w=load, time_s=NOON, duration_s=900.0)
        b = flows.breakdown
        assert b.total_to_load_w == pytest.approx(
            b.renewable_to_load_w + b.battery_to_load_w + b.grid_to_load_w
        )
        assert flows.renewable_available_w == pytest.approx(
            b.renewable_to_load_w
            + (b.charge_w if b.charge_source is ChargeSource.RENEWABLE else 0.0)
            + flows.curtailed_w
        )

    def test_soc_reported(self):
        pdu = make_pdu()
        before = pdu.battery.soc_wh
        flows = pdu.supply(load_w=500.0, time_s=MIDNIGHT, duration_s=3600.0)
        assert flows.battery_soc_wh == pytest.approx(before - 500.0)

    def test_available_upper_bound(self):
        pdu = make_pdu()
        avail = pdu.available_w(NOON, 900.0)
        assert avail >= pdu.solar.power_at(NOON) + 1000.0

    def test_negative_load_rejected(self):
        with pytest.raises(PowerError):
            make_pdu().supply(load_w=-1.0, time_s=0.0, duration_s=60.0)

    def test_bad_duration_rejected(self):
        with pytest.raises(PowerError):
            make_pdu().supply(load_w=10.0, time_s=0.0, duration_s=0.0)


class TestBatteryCap:
    """Per-epoch battery discharge cap (the rationing extension)."""

    def test_cap_limits_discharge_grid_covers_rest(self):
        pdu = make_pdu()
        flows = pdu.supply(
            load_w=900.0, time_s=MIDNIGHT, duration_s=900.0, battery_cap_w=300.0
        )
        assert flows.breakdown.battery_to_load_w == pytest.approx(300.0)
        assert flows.breakdown.grid_to_load_w == pytest.approx(600.0)
        assert flows.delivered_w == pytest.approx(900.0)

    def test_none_cap_is_greedy(self):
        pdu = make_pdu()
        flows = pdu.supply(
            load_w=900.0, time_s=MIDNIGHT, duration_s=900.0, battery_cap_w=None
        )
        assert flows.breakdown.battery_to_load_w == pytest.approx(900.0)

    def test_zero_cap_disables_battery(self):
        pdu = make_pdu()
        flows = pdu.supply(
            load_w=500.0, time_s=MIDNIGHT, duration_s=900.0, battery_cap_w=0.0
        )
        assert flows.breakdown.battery_to_load_w == 0.0
        assert flows.breakdown.grid_to_load_w == pytest.approx(500.0)
