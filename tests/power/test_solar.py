"""Solar farm model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.solar import DEFAULT_SYSTEM_EFFICIENCY, SolarFarm
from repro.traces.nrel import Weather, synthesize_irradiance


@pytest.fixture(scope="module")
def high_trace():
    return synthesize_irradiance(days=2, weather=Weather.HIGH, seed=1)


class TestConversion:
    def test_power_proportional_to_irradiance(self, high_trace):
        farm = SolarFarm(high_trace, panel_area_m2=10.0, efficiency=0.2)
        t = 12 * 3600.0  # noon
        assert farm.power_at(t) == pytest.approx(high_trace.at(t) * 10.0 * 0.2)

    def test_night_is_zero(self, high_trace):
        farm = SolarFarm(high_trace, panel_area_m2=10.0)
        assert farm.power_at(0.0) == 0.0  # midnight

    def test_mean_power(self, high_trace):
        farm = SolarFarm(high_trace, panel_area_m2=10.0, efficiency=0.2)
        assert farm.mean_power_w() == pytest.approx(high_trace.mean_w_m2() * 2.0)


class TestSizing:
    def test_sized_for_peak(self, high_trace):
        farm = SolarFarm.sized_for(high_trace, peak_power_w=1500.0)
        assert farm.rated_peak_w == pytest.approx(1500.0)

    def test_sizing_independent_of_weather(self, high_trace):
        low_trace = synthesize_irradiance(days=2, weather=Weather.LOW, seed=1)
        high = SolarFarm.sized_for(high_trace, peak_power_w=1500.0)
        low = SolarFarm.sized_for(low_trace, peak_power_w=1500.0)
        # Same installed capacity; only the weather differs.
        assert high.panel_area_m2 == pytest.approx(low.panel_area_m2)

    def test_high_trace_outproduces_low(self, high_trace):
        low_trace = synthesize_irradiance(days=2, weather=Weather.LOW, seed=1)
        high = SolarFarm.sized_for(high_trace, peak_power_w=1500.0)
        low = SolarFarm.sized_for(low_trace, peak_power_w=1500.0)
        assert high.mean_power_w() > low.mean_power_w()


class TestValidation:
    def test_bad_area(self, high_trace):
        with pytest.raises(ConfigurationError):
            SolarFarm(high_trace, panel_area_m2=0.0)

    def test_bad_efficiency(self, high_trace):
        with pytest.raises(ConfigurationError):
            SolarFarm(high_trace, panel_area_m2=1.0, efficiency=1.5)

    def test_bad_peak(self, high_trace):
        with pytest.raises(ConfigurationError):
            SolarFarm.sized_for(high_trace, peak_power_w=-10.0)

    def test_default_efficiency_reasonable(self):
        assert 0.1 <= DEFAULT_SYSTEM_EFFICIENCY <= 0.25
