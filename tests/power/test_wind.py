"""Wind farm and hybrid renewable models."""

import pytest

from repro.errors import ConfigurationError, TraceError
from repro.power.solar import SolarFarm
from repro.power.wind import (
    CUT_IN_MS,
    CUT_OUT_MS,
    RATED_MS,
    HybridRenewable,
    WindFarm,
    WindSpeedTrace,
    turbine_power_fraction,
)
from repro.traces.nrel import synthesize_irradiance


class TestPowerCurve:
    def test_zero_below_cut_in(self):
        assert turbine_power_fraction(0.0) == 0.0
        assert turbine_power_fraction(CUT_IN_MS - 0.1) == 0.0

    def test_rated_between_rated_and_cut_out(self):
        assert turbine_power_fraction(RATED_MS) == 1.0
        assert turbine_power_fraction(CUT_OUT_MS - 0.1) == 1.0

    def test_storm_cut_out(self):
        assert turbine_power_fraction(CUT_OUT_MS) == 0.0
        assert turbine_power_fraction(40.0) == 0.0

    def test_cubic_ramp(self):
        mid = (CUT_IN_MS + RATED_MS) / 2
        assert 0.0 < turbine_power_fraction(mid) < 1.0
        # Cubic: halfway up the ramp gives 1/8 of rated.
        assert turbine_power_fraction(mid) == pytest.approx(0.125)

    def test_monotone_on_ramp(self):
        speeds = [CUT_IN_MS + i * 0.5 for i in range(16)]
        fractions = [turbine_power_fraction(s) for s in speeds]
        assert fractions == sorted(fractions)

    def test_negative_speed_rejected(self):
        with pytest.raises(TraceError):
            turbine_power_fraction(-1.0)


class TestWindSpeedTrace:
    def test_deterministic(self):
        a = WindSpeedTrace(days=1, seed=5)
        b = WindSpeedTrace(days=1, seed=5)
        assert list(a.speeds_ms) == list(b.speeds_ms)

    def test_positive_speeds(self):
        trace = WindSpeedTrace(days=2, seed=5)
        assert (trace.speeds_ms > 0).all()

    def test_mean_near_target(self):
        trace = WindSpeedTrace(days=7, mean_speed_ms=7.0, seed=5)
        assert trace.speeds_ms.mean() == pytest.approx(7.0, rel=0.25)

    def test_wraps(self):
        trace = WindSpeedTrace(days=1, seed=5)
        assert trace.at(trace.duration_s + 100.0) == trace.at(100.0)

    def test_validation(self):
        with pytest.raises(TraceError):
            WindSpeedTrace(days=0)
        with pytest.raises(TraceError):
            WindSpeedTrace(mean_speed_ms=0)
        with pytest.raises(TraceError):
            WindSpeedTrace(gustiness=-0.1)


class TestWindFarm:
    def test_power_bounded_by_rated(self):
        farm = WindFarm(WindSpeedTrace(days=1, seed=6), rated_power_w=500.0)
        for t in range(0, 86400, 3600):
            assert 0.0 <= farm.power_at(float(t)) <= 500.0

    def test_mean_power(self):
        farm = WindFarm(WindSpeedTrace(days=2, mean_speed_ms=8.0, seed=6), 1000.0)
        assert 0.0 < farm.mean_power_w() < 1000.0

    def test_bad_rating_rejected(self):
        with pytest.raises(ConfigurationError):
            WindFarm(WindSpeedTrace(days=1), rated_power_w=0.0)


class TestHybrid:
    def test_sums_sources(self):
        solar = SolarFarm.sized_for(synthesize_irradiance(days=1, seed=4), 1000.0)
        wind = WindFarm(WindSpeedTrace(days=1, seed=4), 500.0)
        hybrid = HybridRenewable(solar, wind)
        t = 12 * 3600.0
        assert hybrid.power_at(t) == pytest.approx(
            solar.power_at(t) + wind.power_at(t)
        )

    def test_wind_fills_the_night(self):
        solar = SolarFarm.sized_for(synthesize_irradiance(days=1, seed=4), 1000.0)
        wind = WindFarm(WindSpeedTrace(days=1, mean_speed_ms=9.0, seed=4), 500.0)
        hybrid = HybridRenewable(solar, wind)
        midnight = hybrid.power_at(0.0)
        assert midnight == pytest.approx(wind.power_at(0.0))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridRenewable()

    def test_non_source_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridRenewable(object())

    def test_pdu_accepts_hybrid(self):
        from repro.power.battery import BatteryBank
        from repro.power.grid import GridSource
        from repro.power.pdu import PDU

        solar = SolarFarm.sized_for(synthesize_irradiance(days=1, seed=4), 1000.0)
        wind = WindFarm(WindSpeedTrace(days=1, seed=4), 500.0)
        pdu = PDU(HybridRenewable(solar, wind), BatteryBank(), GridSource())
        flows = pdu.supply(300.0, 12 * 3600.0, 900.0)
        assert flows.delivered_w == pytest.approx(300.0)
