"""Lead-acid battery bank model (Section V-A.2's assumptions)."""

import pytest

from repro.errors import BatteryError
from repro.power.battery import BatteryBank, UnlimitedSupply


@pytest.fixture
def bank():
    """The paper's bank: 10 x 12 V x 100 Ah, DoD 40%, 80% efficient."""
    return BatteryBank()


class TestPaperDefaults:
    def test_capacity_is_12_kwh(self, bank):
        assert bank.capacity_wh == pytest.approx(12000.0)

    def test_dod_floor_at_60_percent(self, bank):
        assert bank.floor_wh == pytest.approx(7200.0)

    def test_usable_energy(self, bank):
        assert bank.usable_wh == pytest.approx(4800.0)

    def test_starts_full(self, bank):
        assert bank.is_full
        assert bank.soc_fraction == 1.0

    def test_rate_limits(self, bank):
        assert bank.max_discharge_w == pytest.approx(2400.0)  # C/5
        assert bank.max_charge_w == pytest.approx(1200.0)     # C/10


class TestDischarge:
    def test_basic_discharge(self, bank):
        delivered = bank.discharge(1000.0, 3600.0)
        assert delivered == 1000.0
        assert bank.soc_wh == pytest.approx(11000.0)

    def test_rate_limited(self, bank):
        delivered = bank.discharge(5000.0, 3600.0)
        assert delivered == pytest.approx(2400.0)

    def test_stops_at_dod_floor(self, bank):
        # Ask for everything repeatedly: SoC must never cross the floor.
        for _ in range(20):
            bank.discharge(2400.0, 3600.0)
        assert bank.soc_wh >= bank.floor_wh - 1e-9
        assert bank.at_dod_floor

    def test_energy_limited_power(self, bank):
        bank.soc_wh = bank.floor_wh + 100.0  # 100 Wh usable
        delivered = bank.discharge(2400.0, 3600.0)
        assert delivered == pytest.approx(100.0)

    def test_negative_power_rejected(self, bank):
        with pytest.raises(BatteryError):
            bank.discharge(-1.0, 60.0)

    def test_bad_duration_rejected(self, bank):
        with pytest.raises(BatteryError):
            bank.discharge(100.0, 0.0)


class TestCharge:
    def test_charging_applies_efficiency(self, bank):
        bank.soc_wh = bank.floor_wh
        accepted = bank.charge(1000.0, 3600.0)
        assert accepted == 1000.0
        # 1000 Wh in, 800 Wh stored (80% efficiency).
        assert bank.soc_wh == pytest.approx(bank.floor_wh + 800.0)

    def test_rate_limited(self, bank):
        bank.soc_wh = bank.floor_wh
        accepted = bank.charge(5000.0, 3600.0)
        assert accepted == pytest.approx(1200.0)

    def test_never_overfills(self, bank):
        bank.soc_wh = bank.capacity_wh - 10.0
        for _ in range(10):
            bank.charge(1200.0, 3600.0)
        assert bank.soc_wh <= bank.capacity_wh + 1e-9

    def test_full_bank_accepts_nothing(self, bank):
        assert bank.charge(1000.0, 3600.0) == pytest.approx(0.0)

    def test_negative_power_rejected(self, bank):
        with pytest.raises(BatteryError):
            bank.charge(-5.0, 60.0)


class TestLifetime:
    def test_equivalent_cycles(self, bank):
        # One full DoD-depth discharge = one equivalent cycle.
        bank.discharge(2400.0, 3600.0)
        bank.discharge(2400.0, 3600.0)
        assert bank.equivalent_cycles == pytest.approx(1.0)

    def test_lifetime_fraction(self, bank):
        bank.discharge(2400.0, 3600.0)
        assert bank.lifetime_consumed_fraction == pytest.approx(0.5 / 1300.0)

    def test_repr_mentions_soc(self, bank):
        assert "soc" in repr(bank).lower()


class TestValidation:
    def test_bad_count(self):
        with pytest.raises(BatteryError):
            BatteryBank(count=0)

    def test_bad_dod(self):
        with pytest.raises(BatteryError):
            BatteryBank(depth_of_discharge=0.0)
        with pytest.raises(BatteryError):
            BatteryBank(depth_of_discharge=1.5)

    def test_bad_efficiency(self):
        with pytest.raises(BatteryError):
            BatteryBank(efficiency=0.0)

    def test_bad_initial_soc(self):
        with pytest.raises(BatteryError):
            BatteryBank(initial_soc_fraction=1.2)

    def test_initial_soc_below_floor_rejected(self):
        # A bank can never *reach* a SoC below the DoD floor, so starting
        # there is a configuration error, not something to silently clamp.
        with pytest.raises(BatteryError):
            BatteryBank(initial_soc_fraction=0.0)

    def test_initial_soc_at_floor_accepted(self):
        bank = BatteryBank(initial_soc_fraction=0.6, depth_of_discharge=0.4)
        assert bank.soc_wh == pytest.approx(bank.floor_wh)

    def test_bad_rate(self):
        with pytest.raises(BatteryError):
            BatteryBank(max_discharge_w=0.0)


class TestPeukert:
    def test_ideal_battery_by_default(self):
        bank = BatteryBank()
        assert bank.peukert_exponent == 1.0
        assert bank._peukert_factor(2400.0) == 1.0

    def test_factor_one_at_or_below_c20(self):
        bank = BatteryBank(peukert_exponent=1.2)
        c20 = bank.capacity_wh / 20.0
        assert bank._peukert_factor(c20) == 1.0
        assert bank._peukert_factor(c20 / 2) == 1.0

    def test_factor_grows_above_c20(self):
        bank = BatteryBank(peukert_exponent=1.2)
        c20 = bank.capacity_wh / 20.0
        assert bank._peukert_factor(2 * c20) == pytest.approx(2 ** 0.2)
        assert bank._peukert_factor(4 * c20) > bank._peukert_factor(2 * c20)

    def test_fast_discharge_costs_more_soc(self):
        slow = BatteryBank(peukert_exponent=1.2)
        fast = BatteryBank(peukert_exponent=1.2)
        # Same 500 Wh delivered, at C/20 vs near C/5.
        slow.discharge(600.0, 3000.0)
        fast.discharge(2400.0, 750.0)
        assert fast.soc_wh < slow.soc_wh

    def test_ideal_exponent_is_identity(self):
        ideal = BatteryBank(peukert_exponent=1.0)
        ideal.discharge(2400.0, 3600.0)
        assert ideal.soc_wh == pytest.approx(12000.0 - 2400.0)

    def test_debit_never_crosses_floor(self):
        bank = BatteryBank(peukert_exponent=1.3)
        for _ in range(30):
            bank.discharge(2400.0, 3600.0)
        assert bank.soc_wh >= bank.floor_wh - 1e-9

    def test_exponent_below_one_rejected(self):
        with pytest.raises(BatteryError):
            BatteryBank(peukert_exponent=0.9)


class TestUnlimitedSupply:
    def test_is_flagged(self):
        assert UnlimitedSupply().is_unlimited is True
        assert BatteryBank().is_unlimited is False

    def test_discharge_delivers_without_state_change(self):
        supply = UnlimitedSupply()
        soc = supply.soc_wh
        for _ in range(100):
            assert supply.discharge(5000.0, 3600.0) == 5000.0
        assert supply.soc_wh == soc
        assert supply.equivalent_cycles == 0.0
        assert supply._discharged_wh_total == 0.0

    def test_discharge_caps_at_the_power_limit(self):
        supply = UnlimitedSupply(power_limit_w=300.0)
        assert supply.discharge(5000.0, 900.0) == 300.0
        assert supply.max_discharge_power_w(900.0) == 300.0

    def test_reports_full_and_refuses_charge(self):
        supply = UnlimitedSupply()
        assert supply.charge(1000.0, 3600.0) == 0.0
        assert supply.max_charge_power_w(3600.0) == 0.0
        assert supply.soc_wh == supply.capacity_wh

    def test_bad_arguments_still_rejected(self):
        supply = UnlimitedSupply()
        with pytest.raises(BatteryError):
            supply.discharge(-1.0, 3600.0)
        with pytest.raises(BatteryError):
            supply.discharge(100.0, 0.0)
        with pytest.raises(BatteryError):
            supply.charge(-1.0, 3600.0)
        with pytest.raises(BatteryError):
            UnlimitedSupply(power_limit_w=0.0)

    def test_repr_names_the_sentinel(self):
        assert "UnlimitedSupply" in repr(UnlimitedSupply())
