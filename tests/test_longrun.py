"""Long-horizon integration: week-long runs and database convergence.

The paper replays one-week traces; these tests verify the stack holds up
over that horizon — energy invariants never break, the battery cycles
within its DoD envelope day after day, and the profiling database's
projections *improve* with runtime feedback (the point of Algorithm 1).
"""

import numpy as np
import pytest

from repro.analysis.metrics import projection_error
from repro.core.policies import make_policy
from repro.core.sources import PowerCase
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig, run_experiment
from repro.traces.nrel import Weather
from repro.units import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def week_result():
    """A 6-day GreenHetero run on the Low (choppy) trace."""
    cfg = ExperimentConfig(
        days=6.0, weather=Weather.LOW, policies=("GreenHetero",), seed=5
    )
    return run_experiment(cfg)


class TestWeekLongRun:
    def test_completes_all_epochs(self, week_result):
        assert len(week_result.log("GreenHetero")) == 6 * 96

    def test_battery_stays_in_envelope_all_week(self, week_result):
        soc = week_result.log("GreenHetero").battery_soc_wh
        assert soc.min() >= 7200.0 - 1e-6
        assert soc.max() <= 12000.0 + 1e-6

    def test_battery_cycles_daily(self, week_result):
        # Every simulated day must see both discharge and charge activity.
        log = week_result.log("GreenHetero")
        days = ((log.times_s - log.times_s[0]) // SECONDS_PER_DAY).astype(int)
        discharge = log.series("battery_to_load_w")
        charge = log.series("charge_w")
        for day in range(6):
            mask = days == day
            assert discharge[mask].max() > 0.0, f"no discharge on day {day}"
            assert charge[mask].max() > 0.0, f"no charging on day {day}"

    def test_all_cases_recur(self, week_result):
        cases = week_result.log("GreenHetero").cases
        assert {c.value for c in cases} == {"A", "B", "C"}

    def test_epu_bounded_all_week(self, week_result):
        epus = week_result.log("GreenHetero").epus
        assert (epus >= 0.0).all() and (epus <= 1.0).all()

    def test_no_brownouts_with_healthy_sources(self, week_result):
        # The scheduler's budget should keep delivery feasible.
        brownouts = sum(1 for r in week_result.log("GreenHetero") if r.brownout)
        assert brownouts <= 0.05 * 6 * 96

    def test_battery_lifetime_consumption_sane(self):
        cfg = ExperimentConfig(
            days=6.0, weather=Weather.LOW, policies=("GreenHetero",), seed=5
        )
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"),
            rack=cfg.build_rack(),
            weather=cfg.weather,
            clock=cfg.build_clock(),
            grid_budget_w=cfg.grid_budget_w,
            seed=cfg.seed,
        )
        sim.run()
        bank = sim.controller.pdu.battery
        # Paper: ~2 full-DoD cycles/day has "relatively very small impact"
        # on a 1300-cycle lifetime.
        assert bank.equivalent_cycles < 3.0 * 6
        assert bank.lifetime_consumed_fraction < 0.02


class TestDatabaseConvergence:
    def test_online_updates_reduce_projection_error(self):
        """Algorithm 1's optimisation must measurably sharpen the fits.

        Measured on a batch workload: its feedback samples reflect true
        capacity (interactive samples reflect *served* load, so their
        fits converge to the operating regime instead of the capacity
        curve — correct behaviour, but a different yardstick).
        """
        cfg = ExperimentConfig(
            days=1.0, workload="Streamcluster", policies=("GreenHetero",), seed=9
        )
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"),
            rack=cfg.build_rack(),
            clock=cfg.build_clock(),
            grid_budget_w=cfg.grid_budget_w,
            seed=cfg.seed,
        )
        controller = sim.controller
        key = ("E5-2620", "Streamcluster")
        curve = controller.rack.curve(0)

        sim.step()  # epoch 0: training run seeds the fit
        early = projection_error(controller.scheduler.database.projection(key), curve)
        while len(sim.log) < 96:
            sim.step()
        late = projection_error(controller.scheduler.database.projection(key), curve)
        # The training fit extrapolates below the sampled range; a day of
        # feedback at real operating points must not make it worse, and
        # should leave the projection accurate.
        assert late <= early * 1.05
        assert late < 0.12

    def test_static_database_does_not_improve(self):
        cfg = ExperimentConfig(days=0.5, policies=("GreenHetero-a",), seed=9)
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero-a"),
            rack=cfg.build_rack(),
            clock=cfg.build_clock(),
            grid_budget_w=cfg.grid_budget_w,
            seed=cfg.seed,
        )
        sim.step()
        key = ("E5-2620", "SPECjbb")
        db = sim.controller.scheduler.database
        first = db.projection(key)
        while len(sim.log) < 48:
            sim.step()
        assert db.projection(key) is first  # never re-fit


class TestProjectionInstrumentation:
    def test_projected_perf_tracks_actual_for_batch(self):
        """The DB projection of the chosen allocation must track reality
        once the updates have converged (batch workload: capacity-based
        projections are the right yardstick)."""
        import numpy as np

        cfg = ExperimentConfig(
            days=1.0, workload="Streamcluster", policies=("GreenHetero",), seed=11
        )
        result = run_experiment(cfg)
        log = result.log("GreenHetero")
        rows = [
            (r.projected_perf, r.throughput)
            for r in log
            if r.projected_perf is not None and r.throughput > 0
        ]
        assert len(rows) > 40
        # Skip the first quarter (pre-convergence), then demand accuracy.
        rows = rows[len(rows) // 4:]
        errors = [abs(p - a) / a for p, a in rows]
        assert float(np.median(errors)) < 0.15

    def test_non_solver_policies_project_nothing(self):
        cfg = ExperimentConfig(days=0.1, policies=("Uniform",), seed=11)
        result = run_experiment(cfg)
        assert all(r.projected_perf is None for r in result.log("Uniform"))
