"""Span tracing: nesting, the decorator form, and the JSONL sink."""

import json

import pytest

from repro.obs.metrics import REGISTRY, obs_enabled, set_enabled
from repro.obs.tracing import (
    TRACER,
    current_span,
    get_tracer,
    set_trace_sink,
    trace,
)


@pytest.fixture
def enabled():
    before = obs_enabled()
    set_enabled(True)
    yield
    set_enabled(before)


@pytest.fixture
def sink(tmp_path):
    """A temporary JSONL sink, detached afterwards."""
    path = tmp_path / "trace.jsonl"
    set_trace_sink(path)
    yield path
    set_trace_sink(None)


def read_spans(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSpans:
    def test_context_manager_yields_span(self, enabled):
        with trace("unit.outer") as span:
            assert span is not None
            assert span.name == "unit.outer"
            assert current_span() is span
        assert current_span() is None

    def test_nesting_links_parent_and_trace(self, enabled):
        with trace("unit.parent") as parent:
            with trace("unit.child") as child:
                assert child.parent_id == parent.span_id
                assert child.trace_id == parent.trace_id
        assert parent.parent_id is None
        assert parent.trace_id == parent.span_id

    def test_duration_recorded_into_histogram(self, enabled):
        fam = REGISTRY.get("repro_span_seconds")
        before = fam.labels("unit.timed").count
        with trace("unit.timed"):
            pass
        assert fam.labels("unit.timed").count == before + 1

    def test_disabled_yields_none_and_records_nothing(self, enabled, sink):
        set_enabled(False)
        with trace("unit.off") as span:
            assert span is None
        assert not sink.exists()

    def test_attrs_carried(self, enabled):
        with trace("unit.attrs", rack="rack0") as span:
            assert span.attrs == {"rack": "rack0"}

    def test_decorator_form(self, enabled):
        @trace("unit.decorated")
        def work(x):
            return x + 1

        fam = REGISTRY.get("repro_span_seconds")
        before = fam.labels("unit.decorated").count
        assert work(1) == 2
        assert work(2) == 3  # the handle is reusable across calls
        assert fam.labels("unit.decorated").count == before + 2

    def test_default_tracer_is_shared(self):
        assert get_tracer() is TRACER


class TestSink:
    def test_records_written_as_jsonl(self, enabled, sink):
        with trace("unit.parent"):
            with trace("unit.child"):
                pass
        records = read_spans(sink)
        # Children close first: child line precedes parent line.
        assert [r["name"] for r in records] == ["unit.child", "unit.parent"]
        child, parent = records
        assert child["parent_id"] == parent["span_id"]
        assert child["trace_id"] == parent["trace_id"]
        assert child["duration_s"] >= 0.0

    def test_error_flag_set_on_exception(self, enabled, sink):
        with pytest.raises(ValueError):
            with trace("unit.fails"):
                raise ValueError("boom")
        (record,) = read_spans(sink)
        assert record["error"] is True

    def test_attrs_serialized(self, enabled, sink):
        with trace("unit.attrs", rack="rack0"):
            pass
        (record,) = read_spans(sink)
        assert record["attrs"] == {"rack": "rack0"}

    def test_sink_detached_stops_writes(self, enabled, tmp_path):
        path = tmp_path / "trace.jsonl"
        set_trace_sink(path)
        with trace("unit.on"):
            pass
        set_trace_sink(None)
        with trace("unit.off"):
            pass
        assert [r["name"] for r in read_spans(path)] == ["unit.on"]
