"""Metric primitives, the registry, and Prometheus exposition."""

import math
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    POWER_OF_TWO_BUCKETS,
    Histogram,
    MetricsRegistry,
    obs_enabled,
    parse_exposition,
    set_enabled,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def enabled():
    """Instrumentation on for the test, restored afterwards."""
    before = obs_enabled()
    set_enabled(True)
    yield
    set_enabled(before)


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry, enabled):
        c = registry.counter("c_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self, registry, enabled):
        c = registry.counter("c_total")
        with pytest.raises(ConfigurationError, match="only go up"):
            c.inc(-1.0)

    def test_reset(self, registry, enabled):
        c = registry.counter("c_total")
        c.inc(4.0)
        registry.reset()
        assert c.value == 0.0

    def test_disabled_is_a_noop(self, registry, enabled):
        c = registry.counter("c_total")
        set_enabled(False)
        c.inc(100.0)
        assert c.value == 0.0

    def test_labelled_children_are_independent(self, registry, enabled):
        fam = registry.counter("hits_total", labelnames=("result",))
        fam.labels("hit").inc(3)
        fam.labels("miss").inc()
        assert fam.labels("hit").value == 3.0
        assert fam.labels("miss").value == 1.0
        assert fam.labels(result="hit") is fam.labels("hit")

    def test_wrong_label_count_rejected(self, registry, enabled):
        fam = registry.counter("hits_total", labelnames=("result",))
        with pytest.raises(ConfigurationError, match="takes labels"):
            fam.labels("a", "b")
        with pytest.raises(ConfigurationError, match="missing label"):
            fam.labels(other="x")


class TestGauge:
    def test_set_inc_dec(self, registry, enabled):
        g = registry.gauge("depth")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0

    def test_disabled_is_a_noop(self, registry, enabled):
        g = registry.gauge("depth")
        set_enabled(False)
        g.set(42.0)
        assert g.value == 0.0


class TestHistogram:
    def test_default_buckets_are_powers_of_two(self):
        assert POWER_OF_TWO_BUCKETS[0] == 2.0**-20
        assert POWER_OF_TWO_BUCKETS[-1] == 64.0
        assert all(
            b2 == 2 * b1
            for b1, b2 in zip(POWER_OF_TWO_BUCKETS, POWER_OF_TWO_BUCKETS[1:])
        )

    def test_count_sum_mean(self, registry, enabled):
        h = registry.histogram("h_seconds")
        for v in (0.5, 1.5, 4.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 3
        assert child.sum == 6.0
        assert child.mean == 2.0

    def test_small_sample_percentiles_are_exact(self, registry, enabled):
        h = registry.histogram("h_seconds").labels()
        for v in (0.1, 0.2, 0.3, 0.4, 0.5):
            h.observe(v)
        assert h.percentile(0.5) == 0.3
        assert h.percentile(1.0) == 0.5

    def test_past_cap_percentiles_use_bucket_bounds(self, enabled):
        h = Histogram(sample_cap=4)
        for _ in range(10):
            h.observe(0.3)  # falls in the (0.25, 0.5] bucket
        assert h.count == 10
        # Exact sample is gone; the answer degrades to the bucket bound.
        assert h.percentile(0.5) == 0.5

    def test_bucket_counts_cumulative_with_inf(self, registry, enabled):
        h = registry.histogram("h_seconds", buckets=(1.0, 2.0)).labels()
        for v in (0.5, 1.5, 100.0):
            h.observe(v)
        assert h.bucket_counts() == ((1.0, 1), (2.0, 2), (math.inf, 3))

    def test_timer_records_elapsed(self, registry, enabled):
        h = registry.histogram("h_seconds")
        with h.time():
            pass
        child = h.labels()
        assert child.count == 1
        assert 0.0 <= child.sum < 1.0

    def test_empty_percentile_is_zero(self, registry, enabled):
        assert registry.histogram("h_seconds").labels().percentile(0.99) == 0.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="finite"):
            Histogram(buckets=(1.0, math.inf))
        with pytest.raises(ConfigurationError, match="at least one"):
            Histogram(buckets=())

    def test_disabled_is_a_noop(self, registry, enabled):
        h = registry.histogram("h_seconds").labels()
        set_enabled(False)
        h.observe(1.0)
        assert h.count == 0

    def test_concurrent_observes_all_land(self, registry, enabled):
        h = registry.histogram("h_seconds").labels()

        def hammer():
            for _ in range(500):
                h.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000


class TestRegistry:
    def test_redeclare_same_schema_returns_existing(self, registry):
        a = registry.counter("x_total", "help", labelnames=("k",))
        b = registry.counter("x_total", "other help", labelnames=("k",))
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("x_total")

    def test_labelnames_mismatch_raises(self, registry):
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="invalid metric name"):
            registry.counter("2bad")
        with pytest.raises(ConfigurationError, match="invalid label name"):
            registry.counter("ok_total", labelnames=("le-gal",))

    def test_families_sorted(self, registry):
        registry.gauge("b")
        registry.counter("a_total")
        assert registry.families() == ("a_total", "b")

    def test_snapshot_and_reset(self, registry, enabled):
        registry.counter("c_total", labelnames=("k",)).labels("v").inc(2)
        snap = registry.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["values"]["v"] == 2.0
        registry.reset()
        assert registry.snapshot()["c_total"]["values"]["v"] == 0.0


class TestExposition:
    def test_counter_and_gauge_lines(self, registry, enabled):
        registry.counter("c_total", "requests").inc(3)
        registry.gauge("g", "depth").set(1.5)
        text = registry.expose()
        assert "# HELP c_total requests" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 3" in text
        assert "g 1.5" in text
        assert text.endswith("\n")

    def test_histogram_series(self, registry, enabled):
        registry.histogram("h_seconds", buckets=(1.0, 2.0)).observe(1.5)
        text = registry.expose()
        assert 'h_seconds_bucket{le="1"} 0' in text
        assert 'h_seconds_bucket{le="2"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 1.5" in text
        assert "h_seconds_count 1" in text

    def test_label_values_escaped(self, registry, enabled):
        registry.counter("c_total", labelnames=("k",)).labels('a"b\\c\nd').inc()
        text = registry.expose()
        assert r'k="a\"b\\c\nd"' in text

    def test_round_trip_through_parser(self, registry, enabled):
        registry.counter("c_total", "requests", labelnames=("op",)).labels("get").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        families = parse_exposition(registry.expose())
        assert families["c_total"]["kind"] == "counter"
        assert ("c_total", '{op="get"}', 2.0) in families["c_total"]["samples"]
        assert families["h_seconds"]["kind"] == "histogram"
        names = {name for name, _, _ in families["h_seconds"]["samples"]}
        assert names == {"h_seconds_bucket", "h_seconds_sum", "h_seconds_count"}

    def test_parser_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_exposition("this is not exposition text\n")

    def test_empty_registry_exposes_empty(self, registry):
        assert registry.expose() == ""
