"""The built-in instrumentation on solver/scheduler/sim/shift hot paths.

These tests read *deltas* of the process-wide default registry, so they
stay correct regardless of what other tests already recorded.
"""

import pytest

from repro.core.database import PerfPowerFit
from repro.core.policies import make_policy
from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel, PARSolver
from repro.obs.metrics import REGISTRY, obs_enabled, set_enabled
from repro.servers.rack import Rack
from repro.shift.planner import PlanInputs, ShiftPlanner
from repro.shift.queue import JobQueue, ShiftJob
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.traces.nrel import Weather
from repro.units import SECONDS_PER_DAY


@pytest.fixture
def enabled():
    before = obs_enabled()
    set_enabled(True)
    yield
    set_enabled(before)


def counter_value(name, *labels):
    return REGISTRY.get(name).labels(*labels).value


def hist_count(name, *labels):
    return REGISTRY.get(name).labels(*labels).count


def concave_group(name="A"):
    fit = PerfPowerFit(coefficients=(-0.033, 9.9, -642.5), min_power_w=95.0,
                       max_power_w=150.0)
    return GroupModel(name=name, count=5, fit=fit)


class TestSolverInstrumentation:
    def test_solve_times_and_counts(self, enabled):
        before = hist_count("repro_solver_solve_seconds")
        PARSolver(safety_margin=0.0).solve([concave_group()], 600.0)
        assert hist_count("repro_solver_solve_seconds") == before + 1

    def test_cache_hit_and_miss_counters(self, enabled):
        solver = PARSolver(safety_margin=0.0)
        hits0 = counter_value("repro_solver_cache_lookups_total", "hit")
        miss0 = counter_value("repro_solver_cache_lookups_total", "miss")
        solver.solve([concave_group()], 600.0)
        solver.solve([concave_group()], 600.0)  # identical program: hit
        assert counter_value("repro_solver_cache_lookups_total", "miss") == miss0 + 1
        assert counter_value("repro_solver_cache_lookups_total", "hit") == hits0 + 1

    def test_per_instance_cache_info_unchanged(self, enabled):
        # The obs counters are additive; the per-solver ints the tests
        # and the daemon's cache-stats op rely on keep exact semantics.
        solver = PARSolver(safety_margin=0.0)
        solver.solve([concave_group()], 600.0)
        solver.solve([concave_group()], 600.0)
        info = solver.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_disabled_does_not_count(self, enabled):
        set_enabled(False)
        before = hist_count("repro_solver_solve_seconds")
        PARSolver(safety_margin=0.0).solve([concave_group()], 600.0)
        assert hist_count("repro_solver_solve_seconds") == before


class TestPredictorInstrumentation:
    def test_fit_counted_and_timed(self, enabled):
        fits0 = counter_value("repro_predictor_fits_total")
        secs0 = hist_count("repro_predictor_fit_seconds")
        HoltPredictor.fit([10.0, 12.0, 14.0, 17.0, 19.0])
        assert counter_value("repro_predictor_fits_total") == fits0 + 1
        assert hist_count("repro_predictor_fit_seconds") == secs0 + 1


class TestSimulationInstrumentation:
    def test_epochs_spans_and_histograms(self, enabled):
        sim = Simulation.assemble(
            policy=make_policy("GreenHetero"),
            rack=Rack([("E5-2620", 2), ("i5-4460", 2)], "SPECjbb"),
            weather=Weather.HIGH,
            clock=SimClock(start_s=SECONDS_PER_DAY, duration_s=3 * 900.0),
            seed=7,
        )
        epoch0 = hist_count("repro_sim_epoch_seconds")
        phase0 = {
            phase: hist_count("repro_span_seconds", phase)
            for phase in ("controller.epoch", "scheduler.forecast",
                          "scheduler.select", "scheduler.solve")
        }
        log = sim.run()
        assert len(log) == 3
        assert hist_count("repro_sim_epoch_seconds") == epoch0 + 3
        for phase, before in phase0.items():
            assert hist_count("repro_span_seconds", phase) == before + 3, phase


class TestShiftInstrumentation:
    def test_plan_counts_candidates_and_placements(self, enabled):
        queue = JobQueue()
        queue.submit(ShiftJob(
            job_id="j0", energy_wh=75.0, power_w=300.0,
            earliest_start_s=0.0, deadline_s=8 * 900.0, value=1.0,
        ))
        inputs = PlanInputs(
            time_s=0.0,
            epoch_s=900.0,
            renewable_w=(400.0,) * 8,
            interactive_w=(0.0,) * 8,
            committed_w=(),
            batch_capacity_w=1000.0,
            battery_usable_wh=0.0,
            battery_max_discharge_w=0.0,
            grid_budget_w=1000.0,
            batch_models=(),
        )
        plans0 = counter_value("repro_shift_plans_total", "exhaustive")
        cand0 = counter_value("repro_shift_candidates_total")
        placed0 = counter_value("repro_shift_placements_total")
        secs0 = hist_count("repro_shift_plan_seconds")
        plan = ShiftPlanner(horizon=8).plan(queue, inputs)
        assert plan.method == "exhaustive"
        assert counter_value("repro_shift_plans_total", "exhaustive") == plans0 + 1
        assert counter_value("repro_shift_candidates_total") > cand0
        assert counter_value("repro_shift_placements_total") == placed0 + len(plan.placements)
        assert hist_count("repro_shift_plan_seconds") == secs0 + 1
