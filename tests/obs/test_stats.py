"""Nearest-rank percentile (the loadgen's estimator, now shared)."""

import pytest

from repro.obs.stats import percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_median_odd(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_nearest_rank_rounds(self):
        # rank = round(f * (n-1)): 0.99 * 3 = 2.97 -> index 3.
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.99) == 4.0
        # 0.5 * 3 = 1.5 -> banker's rounding to index 2.
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 3.0

    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.9, 0.99, 1.0])
    def test_result_is_a_member(self, fraction):
        values = sorted([5.0, 1.0, 9.0, 3.0, 7.0, 2.0])
        assert percentile(values, fraction) in values
