"""The kitchen-sink integration test: every extension active at once.

Partial-group policy + rationed selector + workload schedule + fault
injection + Peukert battery + hybrid solar/wind, run for a simulated
day.  Nothing here asserts performance numbers — it asserts that the
composition of every feature holds the core invariants.
"""

import numpy as np
import pytest

from repro.core.controller import GreenHeteroController
from repro.core.monitor import Monitor
from repro.core.policies import make_policy
from repro.core.scheduler import AdaptiveScheduler
from repro.core.sources import RationedSourceSelector
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.power.wind import HybridRenewable, WindFarm, WindSpeedTrace
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.faults import FaultInjector
from repro.sim.schedule import WorkloadPhase, WorkloadSchedule
from repro.traces.nrel import Weather, synthesize_irradiance
from repro.units import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def kitchen_sink_log():
    rack = Rack([("E5-2620", 4), ("i5-4460", 4)], "SPECjbb")
    solar = SolarFarm.sized_for(
        synthesize_irradiance(days=2, weather=Weather.LOW, seed=47),
        peak_power_w=1.1 * rack.max_draw_w,
    )
    wind = WindFarm(WindSpeedTrace(days=2, seed=48), rated_power_w=300.0)
    pdu = PDU(
        HybridRenewable(solar, wind),
        BatteryBank(count=6, peukert_exponent=1.15),
        GridSource(budget_w=700.0),
    )
    policy = make_policy("GreenHetero+")
    controller = GreenHeteroController(
        rack=rack,
        pdu=pdu,
        policy=policy,
        monitor=Monitor(seed=47),
        scheduler=AdaptiveScheduler(
            policy, selector=RationedSourceSelector(night_length_s=10 * 3600.0)
        ),
    )
    sim = Simulation(
        controller=controller,
        clock=SimClock(start_s=SECONDS_PER_DAY, duration_s=SECONDS_PER_DAY),
        load_generator=Simulation._build_generator(rack, True, 47),
        workload_schedule=WorkloadSchedule(
            [WorkloadPhase(7.0, "SPECjbb"), WorkloadPhase(21.0, "Canneal")]
        ),
        faults=(
            FaultInjector()
            .add_renewable_dropout(SECONDS_PER_DAY + 13 * 3600.0, SECONDS_PER_DAY + 14 * 3600.0)
            .add_grid_outage(SECONDS_PER_DAY + 4 * 3600.0, SECONDS_PER_DAY + 5 * 3600.0, factor=0.5)
        ),
    )
    return sim.run(), sim


class TestKitchenSink:
    def test_runs_to_completion(self, kitchen_sink_log):
        log, _ = kitchen_sink_log
        assert len(log) == 96

    def test_epu_always_bounded(self, kitchen_sink_log):
        log, _ = kitchen_sink_log
        assert (log.epus >= 0.0).all() and (log.epus <= 1.0).all()

    def test_throughput_non_negative_and_mostly_live(self, kitchen_sink_log):
        log, _ = kitchen_sink_log
        assert (log.throughputs >= 0.0).all()
        assert (log.throughputs > 0).mean() > 0.8

    def test_battery_envelope_respected(self, kitchen_sink_log):
        log, sim = kitchen_sink_log
        bank = sim.controller.pdu.battery
        assert log.battery_soc_wh.min() >= bank.floor_wh - 1e-6
        assert log.battery_soc_wh.max() <= bank.capacity_wh + 1e-6

    def test_both_workloads_profiled(self, kitchen_sink_log):
        _, sim = kitchen_sink_log
        db = sim.controller.scheduler.database
        assert db.has("E5-2620", "SPECjbb")
        assert db.has("E5-2620", "Canneal")

    def test_partial_counts_appear(self, kitchen_sink_log):
        log, _ = kitchen_sink_log
        counted = [r for r in log if r.powered_counts is not None]
        assert counted, "the partial-group policy must report counts"
        partial = [
            r for r in counted
            if any(0 < k < g for k, g in zip(r.powered_counts, (4, 4)))
        ]
        # Under a tight supply the k-of-n relaxation should actually
        # get exercised at least once during the day.
        assert partial

    def test_grid_outage_window_respected(self, kitchen_sink_log):
        log, _ = kitchen_sink_log
        hours = (log.times_s - SECONDS_PER_DAY) / 3600.0
        outage = (hours >= 4.0) & (hours < 5.0)
        assert log.series("grid_to_load_w")[outage].max() <= 350.0 + 1e-6

    def test_deterministic(self, kitchen_sink_log):
        log, _ = kitchen_sink_log
        # An identically seeded second stack reproduces the whole day.
        rack = Rack([("E5-2620", 4), ("i5-4460", 4)], "SPECjbb")
        solar = SolarFarm.sized_for(
            synthesize_irradiance(days=2, weather=Weather.LOW, seed=47),
            peak_power_w=1.1 * rack.max_draw_w,
        )
        wind = WindFarm(WindSpeedTrace(days=2, seed=48), rated_power_w=300.0)
        pdu = PDU(
            HybridRenewable(solar, wind),
            BatteryBank(count=6, peukert_exponent=1.15),
            GridSource(budget_w=700.0),
        )
        policy = make_policy("GreenHetero+")
        controller = GreenHeteroController(
            rack=rack, pdu=pdu, policy=policy, monitor=Monitor(seed=47),
            scheduler=AdaptiveScheduler(
                policy, selector=RationedSourceSelector(night_length_s=10 * 3600.0)
            ),
        )
        sim2 = Simulation(
            controller=controller,
            clock=SimClock(start_s=SECONDS_PER_DAY, duration_s=SECONDS_PER_DAY),
            load_generator=Simulation._build_generator(rack, True, 47),
            workload_schedule=WorkloadSchedule(
                [WorkloadPhase(7.0, "SPECjbb"), WorkloadPhase(21.0, "Canneal")]
            ),
            faults=(
                FaultInjector()
                .add_renewable_dropout(
                    SECONDS_PER_DAY + 13 * 3600.0, SECONDS_PER_DAY + 14 * 3600.0
                )
                .add_grid_outage(
                    SECONDS_PER_DAY + 4 * 3600.0, SECONDS_PER_DAY + 5 * 3600.0,
                    factor=0.5,
                )
            ),
        )
        log2 = sim2.run()
        assert np.allclose(log.throughputs, log2.throughputs)
        assert np.allclose(log.battery_soc_wh, log2.battery_soc_wh)
