"""Exception hierarchy contracts."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc_class",
    [
        errors.ConfigurationError,
        errors.UnknownPlatformError,
        errors.UnknownWorkloadError,
        errors.IncompatibleWorkloadError,
        errors.PowerError,
        errors.BatteryError,
        errors.SolverError,
        errors.DatabaseMissError,
        errors.TraceError,
        errors.SimulationError,
    ],
)
def test_all_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, errors.ReproError)


def test_battery_error_is_power_error():
    assert issubclass(errors.BatteryError, errors.PowerError)


def test_unknown_platform_is_configuration_error():
    assert issubclass(errors.UnknownPlatformError, errors.ConfigurationError)


def test_unknown_platform_message_includes_known():
    err = errors.UnknownPlatformError("x86-box", ("E5-2620", "i5-4460"))
    assert "x86-box" in str(err)
    assert "E5-2620" in str(err)


def test_unknown_platform_message_without_known():
    err = errors.UnknownPlatformError("mystery")
    assert "mystery" in str(err)


def test_unknown_workload_message():
    err = errors.UnknownWorkloadError("nginx", ("SPECjbb",))
    assert "nginx" in str(err)
    assert "SPECjbb" in str(err)


def test_database_miss_carries_key():
    err = errors.DatabaseMissError("E5-2620", "SPECjbb")
    assert err.platform == "E5-2620"
    assert err.workload == "SPECjbb"
    assert "training run" in str(err)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.BatteryError("drained")
