"""Exception hierarchy for the GreenHetero library.

Every error raised by this package derives from :class:`ReproError`, so a
caller embedding the simulator can catch a single base class.  Subclasses
are scoped to the subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An experiment, rack, or component was configured inconsistently."""


class UnknownPlatformError(ConfigurationError):
    """A server platform name was not found in the platform registry."""

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        self.name = name
        self.known = known
        hint = f" (known: {', '.join(known)})" if known else ""
        super().__init__(f"unknown server platform {name!r}{hint}")


class UnknownWorkloadError(ConfigurationError):
    """A workload name was not found in the workload catalog."""

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        self.name = name
        self.known = known
        hint = f" (known: {', '.join(known)})" if known else ""
        super().__init__(f"unknown workload {name!r}{hint}")


class IncompatibleWorkloadError(ConfigurationError):
    """A workload was scheduled on a platform class it cannot run on."""


class PowerError(ReproError):
    """An invalid power value or impossible power flow was requested."""


class BatteryError(PowerError):
    """A battery operation violated its physical or policy constraints."""


class SolverError(ReproError):
    """The PAR solver could not produce a feasible allocation."""


class DatabaseMissError(ReproError):
    """The profiling database has no model for a (platform, workload) pair.

    Raised when a projection is requested before a training run has
    populated the entry (Algorithm 1, lines 3-5 of the paper).
    """

    def __init__(self, platform: str, workload: str) -> None:
        self.platform = platform
        self.workload = workload
        super().__init__(
            f"no performance-power projection for platform {platform!r} "
            f"running workload {workload!r}; a training run is required"
        )


class TraceError(ReproError):
    """A power or load trace was malformed or out of range."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class VerificationError(ReproError):
    """A correctness check (differential solve, round-trip fuzz) failed."""


class InvariantViolation(VerificationError):
    """A strict-mode invariant audit found the physics accounting broken.

    Raised by :class:`repro.verify.InvariantAuditor` when a per-epoch
    invariant (energy conservation, battery SoC consistency, grid
    budget, Ση ≤ 1, fit bounds) does not hold within tolerance.
    """

    def __init__(self, violations) -> None:
        self.violations = tuple(violations)
        detail = "; ".join(f"{v.check}: {v.message}" for v in self.violations)
        super().__init__(f"{len(self.violations)} invariant violation(s): {detail}")
