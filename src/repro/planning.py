"""Capacity planning: sizing the green infrastructure by simulation.

The paper motivates green datacenters with cost — expensive peak grid
power (Fig. 12's under-provisioning argument) and on-site renewables —
but leaves the operator's sizing questions open: *how much* solar, *how
much* battery, *how small* a grid feed does a given rack and workload
need?  This module answers them by searching over the simulator:

* :func:`size_solar` — smallest PV array (as a multiple of the rack's
  maximum draw) reaching a target renewable fraction;
* :func:`size_battery` — smallest battery bank reaching it at a fixed
  array;
* :func:`size_grid` — smallest grid budget sustaining a target share of
  the unconstrained performance (the Fig. 12 question, automated).

All searches are monotone bisections over short deterministic runs, so
results are reproducible and each evaluation is a fraction of a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.sustainability import sustainability_report
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.power.battery import BatteryBank
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig
from repro.units import SECONDS_PER_DAY


@dataclass(frozen=True)
class SizingResult:
    """Outcome of one sizing search.

    Attributes
    ----------
    value:
        The sized quantity (solar scale, battery count, or grid watts).
    achieved:
        The metric the sizing achieved at ``value``.
    target:
        What was asked for.
    evaluations:
        Simulator runs the search spent.
    """

    value: float
    achieved: float
    target: float
    evaluations: int

    @property
    def met(self) -> bool:
        """Whether the target was reached within the search bounds."""
        return self.achieved >= self.target - 1e-9


def _bisect_min(
    evaluate: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    tolerance: float,
) -> SizingResult:
    """Smallest x in [lo, hi] with monotone ``evaluate(x) >= target``."""
    evaluations = 0

    def measured(x: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return evaluate(x)

    hi_value = measured(hi)
    if hi_value < target:
        return SizingResult(hi, hi_value, target, evaluations)
    lo_value = measured(lo)
    if lo_value >= target:
        return SizingResult(lo, lo_value, target, evaluations)
    best = (hi, hi_value)
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        value = measured(mid)
        if value >= target:
            best = (mid, value)
            hi = mid
        else:
            lo = mid
    return SizingResult(best[0], best[1], target, evaluations)


def _run(config: ExperimentConfig, solar_scale: float, battery: BatteryBank | None):
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=config.build_rack(),
        weather=config.weather,
        clock=SimClock(
            start_s=config.start_day * SECONDS_PER_DAY,
            duration_s=config.days * SECONDS_PER_DAY,
            epoch_s=config.epoch_s,
        ),
        solar_scale=solar_scale,
        grid_budget_w=config.grid_budget_w,
        battery=battery,
        diurnal_load=config.diurnal_load,
        seed=config.seed,
    )
    return sim.run()


def size_solar(
    config: ExperimentConfig | None = None,
    target_renewable_fraction: float = 0.75,
    lo: float = 0.2,
    hi: float = 4.0,
    tolerance: float = 0.05,
) -> SizingResult:
    """Smallest solar scale reaching ``target_renewable_fraction``.

    The scale is the PV clear-sky peak as a multiple of the rack's
    maximum draw (the engine's sizing convention).
    """
    config = config or ExperimentConfig(policies=("GreenHetero",))
    if not 0.0 < target_renewable_fraction <= 1.0:
        raise ConfigurationError("target fraction must be in (0, 1]")

    def evaluate(scale: float) -> float:
        log = _run(config, scale, None)
        return sustainability_report(log, config.epoch_s).renewable_fraction

    return _bisect_min(evaluate, target_renewable_fraction, lo, hi, tolerance)


def size_battery(
    config: ExperimentConfig | None = None,
    target_renewable_fraction: float = 0.75,
    solar_scale: float = 1.4,
    lo: int = 1,
    hi: int = 40,
) -> SizingResult:
    """Smallest battery count (12 V x 100 Ah units) reaching the target."""
    config = config or ExperimentConfig(policies=("GreenHetero",))
    if not 0.0 < target_renewable_fraction <= 1.0:
        raise ConfigurationError("target fraction must be in (0, 1]")
    if lo < 1 or hi < lo:
        raise ConfigurationError("need 1 <= lo <= hi battery units")

    evaluations = 0

    def evaluate(count: int) -> float:
        nonlocal evaluations
        evaluations += 1
        log = _run(config, solar_scale, BatteryBank(count=count))
        return sustainability_report(log, config.epoch_s).renewable_fraction

    hi_value = evaluate(hi)
    if hi_value < target_renewable_fraction:
        return SizingResult(hi, hi_value, target_renewable_fraction, evaluations)
    lo_int, hi_int = lo, hi
    best = (hi, hi_value)
    while lo_int < hi_int:
        mid = (lo_int + hi_int) // 2
        value = evaluate(mid)
        if value >= target_renewable_fraction:
            best = (mid, value)
            hi_int = mid
        else:
            lo_int = mid + 1
    return SizingResult(float(best[0]), best[1], target_renewable_fraction, evaluations)


def size_grid(
    config: ExperimentConfig | None = None,
    target_performance_fraction: float = 0.9,
    lo: float = 0.0,
    hi: float = 2000.0,
    tolerance: float = 25.0,
) -> SizingResult:
    """Smallest grid budget sustaining a share of unconstrained performance.

    Automates Fig. 12's under-provisioning study: the reference is the
    same run with a ``hi``-watt grid feed.
    """
    base = config or ExperimentConfig(policies=("GreenHetero",))
    if not 0.0 < target_performance_fraction <= 1.0:
        raise ConfigurationError("target fraction must be in (0, 1]")

    from dataclasses import replace

    reference = _run(replace(base, grid_budget_w=hi), 1.4, None).mean_throughput()
    if reference <= 0:
        raise ConfigurationError("reference run produced no throughput")

    def evaluate(budget: float) -> float:
        log = _run(replace(base, grid_budget_w=budget), 1.4, None)
        return log.mean_throughput() / reference

    return _bisect_min(evaluate, target_performance_fraction, lo, hi, tolerance)
