"""The deadline-aware deferrable-job queue.

A :class:`ShiftJob` is the unit of deferrable work: a fixed energy
demand delivered at a constant power draw, runnable any time between
its earliest start and its deadline, worth ``value`` when it completes
(the deadline-bounded revenue abstraction of the time-sensitive-work
literature).  Jobs run as one contiguous block of whole scheduling
epochs — no preemption — which keeps the planner's placement space
small and the execution layer trivial to audit.

:class:`JobQueue` tracks every submitted job through its lifecycle
(``pending -> running -> done``, or ``pending -> missed`` when the
deadline becomes unreachable) in deterministic submission order, and
serializes to plain JSON for the serve daemon's checkpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: Tolerance when deriving whole-epoch durations from energy/power, so a
#: job sized as "exactly two epochs of energy" never rounds up to three.
_EPOCH_EPS = 1e-9


@dataclass(frozen=True)
class ShiftJob:
    """One deferrable job.

    Attributes
    ----------
    job_id:
        Caller-chosen unique identifier.
    energy_wh:
        Total energy the job must receive to complete (Wh).
    power_w:
        Constant power draw while running (W); together with
        ``energy_wh`` this fixes the job's duration.
    earliest_start_s:
        The job may not start before this timestamp.
    deadline_s:
        The job must *finish* by this timestamp or it is missed.
    value:
        Utility of completing the job (the planner's objective currency;
        grid energy is priced against it).
    """

    job_id: str
    energy_wh: float
    power_w: float
    earliest_start_s: float
    deadline_s: float
    value: float = 1.0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be non-empty")
        if self.energy_wh <= 0:
            raise ConfigurationError(f"job {self.job_id}: energy must be positive")
        if self.power_w <= 0:
            raise ConfigurationError(f"job {self.job_id}: power must be positive")
        if self.deadline_s <= self.earliest_start_s:
            raise ConfigurationError(
                f"job {self.job_id}: deadline must follow the earliest start"
            )
        if self.value < 0:
            raise ConfigurationError(f"job {self.job_id}: value must be non-negative")

    def n_epochs(self, epoch_s: float) -> int:
        """Whole epochs the job occupies at its rated power."""
        if epoch_s <= 0:
            raise ConfigurationError("epoch length must be positive")
        epochs_exact = self.energy_wh * 3600.0 / (self.power_w * epoch_s)
        return max(1, math.ceil(epochs_exact - _EPOCH_EPS))

    def latest_start_s(self, epoch_s: float) -> float:
        """Latest epoch-start timestamp from which the deadline is met."""
        return self.deadline_s - self.n_epochs(epoch_s) * epoch_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "energy_wh": float(self.energy_wh),
            "power_w": float(self.power_w),
            "earliest_start_s": float(self.earliest_start_s),
            "deadline_s": float(self.deadline_s),
            "value": float(self.value),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShiftJob":
        try:
            return cls(
                job_id=str(data["job_id"]),
                energy_wh=float(data["energy_wh"]),
                power_w=float(data["power_w"]),
                earliest_start_s=float(data["earliest_start_s"]),
                deadline_s=float(data["deadline_s"]),
                value=float(data["value"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed shift job: {exc}") from exc


class JobStatus:
    """Lifecycle states (plain strings so they serialize trivially)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    MISSED = "missed"

    ALL = (PENDING, RUNNING, DONE, MISSED)


class JobQueue:
    """All submitted jobs and their lifecycle, in submission order."""

    def __init__(self) -> None:
        self._jobs: dict[str, ShiftJob] = {}
        self._status: dict[str, str] = {}
        self._started_s: dict[str, float] = {}
        self._epochs_run: dict[str, int] = {}
        self._completed_s: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Submission and queries
    # ------------------------------------------------------------------
    def submit(self, job: ShiftJob) -> None:
        if job.job_id in self._jobs:
            raise ConfigurationError(f"duplicate job id {job.job_id!r}")
        self._jobs[job.job_id] = job
        self._status[job.job_id] = JobStatus.PENDING

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def job(self, job_id: str) -> ShiftJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ConfigurationError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> str:
        self.job(job_id)
        return self._status[job_id]

    def jobs(self) -> Iterator[ShiftJob]:
        """Every job, in submission order."""
        yield from self._jobs.values()

    def with_status(self, status: str) -> list[ShiftJob]:
        return [j for j in self._jobs.values() if self._status[j.job_id] == status]

    def pending(self) -> list[ShiftJob]:
        return self.with_status(JobStatus.PENDING)

    def running(self) -> list[ShiftJob]:
        return self.with_status(JobStatus.RUNNING)

    def epochs_run(self, job_id: str) -> int:
        """Epochs a running/finished job has already executed."""
        self.job(job_id)
        return self._epochs_run.get(job_id, 0)

    def started_s(self, job_id: str) -> float | None:
        self.job(job_id)
        return self._started_s.get(job_id)

    def backlog_wh(self) -> float:
        """Total energy demanded by jobs not yet started."""
        return sum(j.energy_wh for j in self.pending())

    # ------------------------------------------------------------------
    # Lifecycle transitions (driven by the runtime)
    # ------------------------------------------------------------------
    def mark_running(self, job_id: str, time_s: float) -> None:
        if self.status(job_id) != JobStatus.PENDING:
            raise ConfigurationError(
                f"job {job_id!r} is {self._status[job_id]}, cannot start"
            )
        self._status[job_id] = JobStatus.RUNNING
        self._started_s[job_id] = float(time_s)
        self._epochs_run[job_id] = 0

    def advance(self, job_id: str, epoch_s: float, time_s: float) -> None:
        """Account one executed epoch; completes the job when done."""
        if self.status(job_id) != JobStatus.RUNNING:
            raise ConfigurationError(f"job {job_id!r} is not running")
        self._epochs_run[job_id] += 1
        if self._epochs_run[job_id] >= self._jobs[job_id].n_epochs(epoch_s):
            self._status[job_id] = JobStatus.DONE
            self._completed_s[job_id] = float(time_s)

    def expire(self, time_s: float, epoch_s: float) -> list[str]:
        """Fail pending jobs whose deadline is no longer reachable.

        A job whose latest feasible epoch-start has passed can never
        complete; it transitions to ``missed`` and is returned.
        """
        missed = []
        for job in self.pending():
            if time_s > job.latest_start_s(epoch_s) + _EPOCH_EPS:
                self._status[job.job_id] = JobStatus.MISSED
                missed.append(job.job_id)
        return missed

    # ------------------------------------------------------------------
    # Summaries and serialization
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        counts = {status: 0 for status in JobStatus.ALL}
        for status in self._status.values():
            counts[status] += 1
        return counts

    def state_dict(self) -> dict[str, Any]:
        """JSON-ready full queue state, in submission order."""
        entries = []
        for job in self._jobs.values():
            entries.append(
                {
                    **job.to_dict(),
                    "status": self._status[job.job_id],
                    "started_s": self._started_s.get(job.job_id),
                    "epochs_run": self._epochs_run.get(job.job_id, 0),
                    "completed_s": self._completed_s.get(job.job_id),
                }
            )
        return {"jobs": entries}

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "JobQueue":
        queue = cls()
        try:
            for entry in state["jobs"]:
                job = ShiftJob.from_dict(entry)
                status = str(entry["status"])
                if status not in JobStatus.ALL:
                    raise ConfigurationError(f"unknown job status {status!r}")
                queue._jobs[job.job_id] = job
                queue._status[job.job_id] = status
                if entry.get("started_s") is not None:
                    queue._started_s[job.job_id] = float(entry["started_s"])
                if entry.get("epochs_run"):
                    queue._epochs_run[job.job_id] = int(entry["epochs_run"])
                elif status in (JobStatus.RUNNING, JobStatus.DONE):
                    queue._epochs_run[job.job_id] = 0
                if entry.get("completed_s") is not None:
                    queue._completed_s[job.job_id] = float(entry["completed_s"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed queue state: {exc}") from exc
        return queue
