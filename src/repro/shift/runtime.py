"""Per-epoch execution of shift plans against a rack controller.

:class:`ShiftRuntime` owns the job queue and a planner, and wraps the
controller's epoch loop: each epoch it meters interactive demand into
its own Holt predictor, expires unreachable jobs, replans, starts the
placements due now, and gates the rack's deferrable groups to exactly
the planned batch draw via the controller's per-group caps —
interactive groups run uncapped, so foreground traffic never notices.

Gating only engages once a job has been submitted (``activated``): a
rack that never sees a deferrable job behaves exactly as it did before
this subsystem existed, batch groups saturating freely.

The runtime's telemetry (:class:`ShiftLog`) is the shift-specific
companion to the controller's :class:`~repro.core.controller.EpochRecord`
stream: per-epoch deferred energy, cumulative deadline misses, and the
grid energy the plan avoided.  All decision state (queue, interactive
predictor, last plan, activation) serializes to JSON for the serve
daemon's checkpoints; telemetry, like the host's epoch log, does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel
from repro.errors import ConfigurationError
from repro.shift.planner import PlanInputs, ShiftPlan, ShiftPlanner, chain_forecast
from repro.shift.queue import JobQueue, JobStatus, ShiftJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import EpochRecord, GreenHeteroController


@dataclass(frozen=True)
class ShiftEpochRecord:
    """Shift telemetry for one epoch."""

    time_s: float
    #: Total planned batch draw this epoch (W).
    batch_power_w: float
    jobs_started: tuple[str, ...]
    jobs_running: int
    jobs_completed: tuple[str, ...]
    #: Energy of jobs still held back at epoch end (Wh).
    deferred_wh: float
    #: Cumulative deadline misses up to and including this epoch.
    deadline_misses: int
    #: Grid energy the placements started this epoch avoid versus
    #: running at their earliest feasible epoch (Wh).
    grid_avoided_wh: float
    plan_method: str


class ShiftLog:
    """Append-only sequence of :class:`ShiftEpochRecord`."""

    def __init__(self) -> None:
        self.records: list[ShiftEpochRecord] = []

    def append(self, record: ShiftEpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def total_grid_avoided_wh(self) -> float:
        return sum(r.grid_avoided_wh for r in self.records)

    @property
    def deadline_misses(self) -> int:
        return self.records[-1].deadline_misses if self.records else 0

    @property
    def mean_deferred_wh(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.deferred_wh for r in self.records) / len(self.records)


class ShiftRuntime:
    """Binds a :class:`ShiftPlanner` and :class:`JobQueue` to a controller.

    Parameters
    ----------
    planner:
        The placement planner; a default ``shift``-policy planner with
        horizon 8 is created when omitted.
    queue:
        The job queue; fresh when omitted.
    """

    def __init__(
        self,
        planner: ShiftPlanner | None = None,
        queue: JobQueue | None = None,
    ) -> None:
        self.planner = planner if planner is not None else ShiftPlanner()
        self.queue = queue if queue is not None else JobQueue()
        self.log = ShiftLog()
        self.last_plan: ShiftPlan | None = None
        #: Gating engages only after the first submission, so racks that
        #: never see deferrable jobs keep their pre-shift behaviour.
        self.activated = False
        # Interactive-only demand forecaster: the scheduler's demand
        # predictor tracks the *whole* rack (including gated batch
        # groups), which would make the reserve circular.
        self._interactive_predictor = HoltPredictor(alpha=0.6, beta=0.1)
        # First run-immediately grid quote seen per job (Wh): the
        # counterfactual each job's grid-avoided telemetry compares
        # its eventual placement against.
        self._start_baseline_wh: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Queue front door
    # ------------------------------------------------------------------
    def submit(self, job: ShiftJob) -> None:
        self.queue.submit(job)
        self.activated = True

    # ------------------------------------------------------------------
    # Rack introspection
    # ------------------------------------------------------------------
    @staticmethod
    def deferrable_indices(controller: "GreenHeteroController") -> list[int]:
        return [
            i
            for i, g in enumerate(controller.rack.groups)
            if g.workload.is_deferrable
        ]

    @staticmethod
    def has_deferrable_groups(controller: "GreenHeteroController") -> bool:
        return bool(ShiftRuntime.deferrable_indices(controller))

    def _interactive_demand(
        self, controller: "GreenHeteroController", load_fraction: float
    ) -> float:
        demands = controller.rack.group_demands_at_load(load_fraction)
        return sum(
            d
            for d, g in zip(demands, controller.rack.groups)
            if not g.workload.is_deferrable
        )

    def batch_capacity_w(self, controller: "GreenHeteroController") -> float:
        return sum(
            controller.rack.curve(i).max_draw_w * controller.rack.groups[i].count
            for i in self.deferrable_indices(controller)
        )

    def _batch_models(
        self, controller: "GreenHeteroController"
    ) -> tuple[GroupModel, ...]:
        """Solver models for deferrable groups the database has profiled."""
        database = controller.scheduler.database
        models = []
        for i in self.deferrable_indices(controller):
            group = controller.rack.groups[i]
            if group.key in database:
                models.append(
                    GroupModel(
                        name=group.spec.name,
                        count=group.count,
                        fit=database.projection(group.key),
                    )
                )
        return tuple(models)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _forecast_interactive(
        self, controller: "GreenHeteroController", fallback_w: float
    ) -> tuple[float, ...]:
        horizon = self.planner.horizon
        if self._interactive_predictor.ready:
            return chain_forecast(self._interactive_predictor, horizon)
        return (fallback_w,) * horizon

    def _forecast_renewable(
        self, controller: "GreenHeteroController", time_s: float
    ) -> tuple[float, ...]:
        predictor = controller.scheduler.renewable_predictor
        if getattr(predictor, "ready", False):
            return chain_forecast(predictor, self.planner.horizon)
        current = max(0.0, controller.pdu.renewable.power_at(time_s))
        return (current,) * self.planner.horizon

    def _committed_w(self, epoch_s: float) -> tuple[float, ...]:
        committed = [0.0] * self.planner.horizon
        for job in self.queue.running():
            remaining = job.n_epochs(epoch_s) - self.queue.epochs_run(job.job_id)
            for h in range(min(remaining, self.planner.horizon)):
                committed[h] += job.power_w
        return tuple(committed)

    def plan_inputs(
        self,
        controller: "GreenHeteroController",
        time_s: float,
        interactive_now_w: float,
    ) -> PlanInputs:
        epoch_s = controller.epoch_s
        return PlanInputs(
            time_s=time_s,
            epoch_s=epoch_s,
            renewable_w=self._forecast_renewable(controller, time_s),
            interactive_w=self._forecast_interactive(controller, interactive_now_w),
            committed_w=self._committed_w(epoch_s),
            batch_capacity_w=self.batch_capacity_w(controller),
            battery_usable_wh=controller.pdu.battery.usable_wh,
            battery_max_discharge_w=controller.pdu.battery.max_discharge_w,
            grid_budget_w=controller.pdu.grid.budget_w,
            batch_models=self._batch_models(controller),
        )

    def plan_now(
        self, controller: "GreenHeteroController", time_s: float
    ) -> ShiftPlan:
        """Replan without executing (the serve daemon's ``plan`` verb).

        Uses the controller's *current* metered state; the queue is not
        advanced, so repeated calls at the same instant are identical.
        """
        interactive_now = self._interactive_demand(controller, 1.0)
        inputs = self.plan_inputs(controller, time_s, interactive_now)
        plan = self.planner.plan(self.queue, inputs)
        self.last_plan = plan
        return plan

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def execute_epoch(
        self,
        controller: "GreenHeteroController",
        time_s: float,
        load_fraction: float = 1.0,
    ) -> "EpochRecord":
        """Run one epoch: expire, replan, gate, execute, account.

        Returns the controller's :class:`EpochRecord`; the shift-side
        telemetry lands in :attr:`log`.
        """
        epoch_s = controller.epoch_s
        interactive_now = self._interactive_demand(controller, load_fraction)
        self._interactive_predictor.observe(interactive_now)

        self.queue.expire(time_s, epoch_s)
        inputs = self.plan_inputs(controller, time_s, interactive_now)
        plan = self.planner.plan(self.queue, inputs)
        self.last_plan = plan

        for job_id, quote_wh in plan.start_now_grid_wh:
            self._start_baseline_wh.setdefault(job_id, quote_wh)

        started: list[str] = []
        grid_avoided = 0.0
        for placement in plan.starting_now():
            self.queue.mark_running(placement.job_id, time_s)
            started.append(placement.job_id)
            baseline = self._start_baseline_wh.get(
                placement.job_id, placement.grid_wh
            )
            grid_avoided += max(0.0, baseline - placement.grid_wh)

        running = self.queue.running()
        batch_power = sum(j.power_w for j in running)

        if self.activated:
            controller.group_caps_w = self._group_caps(controller, batch_power)
            # The source selector budgets the rack from the demand
            # forecast, but the Holt predictor extrapolates the step
            # changes our gating imposes into nonsense (a job stopping
            # reads as a plunging trend).  We know this epoch's demand
            # exactly: the interactive estimate plus the planned draw.
            controller.scheduler.demand_override_w = interactive_now + batch_power
            try:
                record = controller.run_epoch(time_s, load_fraction=load_fraction)
            finally:
                controller.group_caps_w = None
                controller.scheduler.demand_override_w = None
        else:
            record = controller.run_epoch(time_s, load_fraction=load_fraction)

        completed: list[str] = []
        for job in running:
            self.queue.advance(job.job_id, epoch_s, time_s + epoch_s)
            if self.queue.status(job.job_id) == JobStatus.DONE:
                completed.append(job.job_id)

        self.log.append(
            ShiftEpochRecord(
                time_s=time_s,
                batch_power_w=batch_power,
                jobs_started=tuple(started),
                jobs_running=len(running),
                jobs_completed=tuple(completed),
                deferred_wh=self.queue.backlog_wh(),
                deadline_misses=self.queue.counts()[JobStatus.MISSED],
                grid_avoided_wh=grid_avoided,
                plan_method=plan.method,
            )
        )
        return record

    def _group_caps(
        self, controller: "GreenHeteroController", batch_power_w: float
    ) -> tuple[float, ...]:
        """Per-group caps: interactive uncapped, deferrable share the
        planned batch draw proportionally to their full-load capacity."""
        deferrable = set(self.deferrable_indices(controller))
        weights = {
            i: controller.rack.curve(i).max_draw_w * controller.rack.groups[i].count
            for i in deferrable
        }
        total = sum(weights.values())
        caps = []
        for i in range(len(controller.rack.groups)):
            if i not in deferrable:
                caps.append(math.inf)
            elif total <= 0:
                caps.append(0.0)
            else:
                caps.append(batch_power_w * weights[i] / total)
        return tuple(caps)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        return {
            "queue": self.queue.state_dict(),
            "interactive_predictor": self._interactive_predictor.state_dict(),
            "last_plan": None if self.last_plan is None else self.last_plan.to_dict(),
            "activated": self.activated,
            "start_baseline_wh": dict(self._start_baseline_wh),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        try:
            self.queue = JobQueue.from_state_dict(state["queue"])
            self._interactive_predictor = HoltPredictor.from_state_dict(
                state["interactive_predictor"]
            )
            last_plan = state["last_plan"]
            self.last_plan = (
                None if last_plan is None else ShiftPlan.from_dict(last_plan)
            )
            self.activated = bool(state["activated"])
            self._start_baseline_wh = {
                str(job_id): float(wh)
                for job_id, wh in state.get("start_baseline_wh", {}).items()
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed shift state: {exc}") from exc

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Queue and telemetry roll-up for status endpoints and benches."""
        counts = self.queue.counts()
        return {
            "activated": self.activated,
            "jobs": counts,
            "backlog_wh": self.queue.backlog_wh(),
            "deadline_misses": counts[JobStatus.MISSED],
            "grid_avoided_wh": self.log.total_grid_avoided_wh,
            "epochs": len(self.log),
            "last_plan_method": (
                self.last_plan.method if self.last_plan is not None else None
            ),
        }
