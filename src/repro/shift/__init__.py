"""``repro.shift`` — renewable-aware temporal shifting of deferrable work.

GreenHetero's solver decides *how to split* power across heterogeneous
servers each epoch; this package decides *when* deferrable (batch/HPC)
work should run at all.  A deadline-aware job queue holds deferrable
jobs (energy demand, earliest start, deadline, value), and a
receding-horizon planner rolls the scheduler's Holt predictors forward
``H`` epochs (forecast chaining), prices each candidate placement
against the PAR solver's profiling-database projections, and commits
the placements that maximize value subject to the battery-DoD and
grid-budget constraints.  The resulting plan gates the rack's batch
groups epoch by epoch; interactive traffic is untouched.

* :mod:`repro.shift.queue` — :class:`ShiftJob` and the deadline-aware
  :class:`JobQueue` (checkpointable).
* :mod:`repro.shift.planner` — forecast chaining, placement pricing,
  and the :class:`ShiftPlanner` (greedy-by-density with an exhaustive
  fallback, plus the ``no_shift`` run-immediately baseline).
* :mod:`repro.shift.runtime` — :class:`ShiftRuntime`, the per-epoch
  execution layer binding a plan to a rack controller, with its own
  telemetry (deferred energy, deadline misses, grid energy avoided).
* :mod:`repro.shift.bench` — the bundled mixed interactive+batch
  scenario and the shift-vs-no-shift benchmark (``repro shift``,
  ``BENCH_shift.json``).
"""

# NOTE: repro.shift.bench is deliberately NOT imported here — it builds
# simulations (repro.sim.engine), and the engine itself imports
# repro.shift.runtime; import it directly as ``repro.shift.bench``.
from repro.shift.planner import (
    Placement,
    PlanInputs,
    ShiftPlan,
    ShiftPlanner,
    chain_forecast,
)
from repro.shift.queue import JobQueue, JobStatus, ShiftJob
from repro.shift.runtime import ShiftEpochRecord, ShiftLog, ShiftRuntime

__all__ = [
    "JobQueue",
    "JobStatus",
    "Placement",
    "PlanInputs",
    "ShiftEpochRecord",
    "ShiftLog",
    "ShiftPlan",
    "ShiftPlanner",
    "ShiftJob",
    "ShiftRuntime",
    "chain_forecast",
]
