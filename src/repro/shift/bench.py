"""The shift-vs-no-shift benchmark (``repro shift`` → ``BENCH_shift.json``).

The bundled scenario is a mixed interactive+batch rack — five E5-2620
running Streamcluster (deferrable) co-located with five i5-4460 serving
SPECjbb (interactive, diurnal load) — over a day of PV trace, with a
deterministic set of deferrable jobs submitted up front.  Both arms run
the GreenHetero policy over identical traces, seeds, and job sets; the
only difference is the shift planner's policy (``shift`` vs
``no_shift``), so grid-energy and EPU deltas are attributable to
temporal shifting alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.metrics import shift_comparison
from repro.core.policies import make_policy
from repro.power.battery import BatteryBank
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.faults import FaultInjector
from repro.sim.telemetry import TelemetryLog
from repro.shift.planner import ShiftPlanner
from repro.shift.queue import ShiftJob
from repro.shift.runtime import ShiftRuntime
from repro.traces.nrel import IrradianceTrace, Weather
from repro.units import SECONDS_PER_DAY

#: The bundled mixed rack: batch group first (PAR order is arbitrary).
BENCH_PLATFORMS: tuple[tuple[str, int], ...] = (("E5-2620", 5), ("i5-4460", 5))
BENCH_WORKLOADS: tuple[str, str] = ("Streamcluster", "SPECjbb")

#: The bundled scenario runs on a single battery (not the paper's bank of
#: ten): with 12 kWh of storage the whole job set rides through the night
#: on battery and neither arm ever touches the grid, which would leave
#: temporal shifting nothing to show.  One battery keeps the night
#: grid-bound, so *when* a job runs decides where its energy comes from.
BENCH_BATTERY_COUNT = 1

#: Bench planner prices, in units of job value.  Deliberately steep: a
#: night placement (battery + grid) prices below zero utility and is
#: deferred, while a renewable-covered placement keeps essentially its
#: full value — the deferral pressure the benchmark exists to measure.
BENCH_GRID_PENALTY_PER_KWH = 8.0
BENCH_BATTERY_PENALTY_PER_KWH = 4.0


def build_bench_rack() -> Rack:
    return Rack(list(BENCH_PLATFORMS), list(BENCH_WORKLOADS))


#: Job draw as a fraction of the batch groups' full-load capacity.  It
#: must map to an *enforceable* per-server budget: the E5-2620's lowest
#: active DVFS state sits at ~63% of its peak draw, so anything much
#: lower would put the whole group to sleep instead of running slower.
#: 0.7 keeps every server of the gated group inside its DVFS ladder and
#: still means only one job fits at a time (2 x 0.7 > 1).
BENCH_JOB_CAPACITY_FRACTION = 0.7


def bench_jobs(
    clock: SimClock, batch_capacity_w: float, n_jobs: int
) -> list[ShiftJob]:
    """A deterministic deferrable job set for the bundled scenario.

    Each job draws 70% of the batch groups' full-load capacity for two
    epochs; earliest starts are staggered through the first half of the
    run and every deadline is the end of the run, leaving the planner
    real freedom to chase the solar curve.
    """
    if n_jobs < 1:
        raise ValueError("need at least one job")
    power_w = BENCH_JOB_CAPACITY_FRACTION * batch_capacity_w
    energy_wh = power_w * 2 * clock.epoch_s / 3600.0
    stagger = max(1, clock.n_epochs // (2 * n_jobs))
    end_s = clock.start_s + clock.duration_s
    return [
        ShiftJob(
            job_id=f"job{i}",
            energy_wh=energy_wh,
            power_w=power_w,
            earliest_start_s=clock.start_s + i * stagger * clock.epoch_s,
            deadline_s=end_s,
        )
        for i in range(n_jobs)
    ]


def _run_arm(
    shift_policy: str,
    clock: SimClock,
    trace: IrradianceTrace,
    weather: Weather,
    seed: int,
    horizon: int,
    n_jobs: int,
    faults: Sequence[str],
) -> tuple[TelemetryLog, ShiftRuntime]:
    rack = build_bench_rack()
    sim = Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=rack,
        weather=weather,
        clock=SimClock(
            start_s=clock.start_s, duration_s=clock.duration_s, epoch_s=clock.epoch_s
        ),
        seed=seed,
        trace=trace,
        battery=BatteryBank(count=BENCH_BATTERY_COUNT),
    )
    planner = ShiftPlanner(
        horizon=horizon,
        policy=shift_policy,
        grid_penalty_per_kwh=BENCH_GRID_PENALTY_PER_KWH,
        battery_penalty_per_kwh=BENCH_BATTERY_PENALTY_PER_KWH,
    )
    runtime = ShiftRuntime(planner=planner)
    batch_capacity = runtime.batch_capacity_w(sim.controller)
    for job in bench_jobs(clock, batch_capacity, n_jobs):
        runtime.submit(job)
    sim.shift = runtime
    if faults:
        sim.faults = FaultInjector.from_specs(faults)
    log = sim.run()
    return log, runtime


def run_shift_bench(
    days: float = 1.0,
    seed: int = 2021,
    horizon: int = 8,
    n_jobs: int = 6,
    weather: Weather = Weather.HIGH,
    faults: Sequence[str] = (),
    out: str | Path | None = None,
) -> dict[str, Any]:
    """Run both arms and return (optionally write) the benchmark payload."""
    clock = SimClock(
        start_s=SECONDS_PER_DAY, duration_s=days * SECONDS_PER_DAY
    )
    trace = Simulation.default_trace(clock, weather, seed)

    shift_log, shift_rt = _run_arm(
        "shift", clock, trace, weather, seed, horizon, n_jobs, faults
    )
    base_log, base_rt = _run_arm(
        "no_shift", clock, trace, weather, seed, horizon, n_jobs, faults
    )

    comparison = shift_comparison(
        shift_log,
        base_log,
        clock.epoch_s,
        shift_rt.queue.counts(),
        base_rt.queue.counts(),
        shift_summary=shift_rt.summary(),
    )
    payload: dict[str, Any] = {
        "bench": "shift",
        "config": {
            "platforms": [list(p) for p in BENCH_PLATFORMS],
            "workloads": list(BENCH_WORKLOADS),
            "policy": "GreenHetero",
            "days": days,
            "seed": seed,
            "horizon": horizon,
            "n_jobs": n_jobs,
            "weather": weather.name,
            "faults": list(faults),
        },
        "comparison": comparison,
        "shift_epochs": [
            {
                "time_s": r.time_s,
                "batch_power_w": r.batch_power_w,
                "jobs_started": list(r.jobs_started),
                "deferred_wh": r.deferred_wh,
                "grid_avoided_wh": r.grid_avoided_wh,
                "plan_method": r.plan_method,
            }
            for r in shift_rt.log
        ],
    }
    if out is not None:
        Path(out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def format_shift_summary(payload: dict[str, Any]) -> str:
    """Human-readable roll-up of a :func:`run_shift_bench` payload."""
    comp = payload["comparison"]
    grid = comp["grid_kwh"]
    epu = comp["epu"]
    misses = comp["deadline_misses"]
    return "\n".join(
        [
            "shift benchmark "
            f"({payload['config']['days']} day(s), "
            f"{payload['config']['n_jobs']} jobs, "
            f"horizon {payload['config']['horizon']})",
            f"  grid energy   shift {grid['shift']:.3f} kWh"
            f" | no_shift {grid['no_shift']:.3f} kWh"
            f" | saved {grid['saved']:.3f} kWh"
            f" ({100.0 * grid['saved_fraction']:.1f}%)",
            f"  mean EPU      shift {epu['shift']:.3f}"
            f" | no_shift {epu['no_shift']:.3f}"
            f" | delta {epu['delta']:+.3f}",
            f"  deadline miss shift {misses['shift']}"
            f" | no_shift {misses['no_shift']}",
        ]
    )
