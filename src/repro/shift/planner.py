"""Receding-horizon placement of deferrable jobs (lookahead MPC).

Every epoch the planner rolls the scheduler's Holt predictors forward
``H`` epochs by *forecast chaining* (:func:`chain_forecast`: feed the
predictor its own one-step forecast and repeat), builds a per-epoch
supply picture — renewable headroom left over by interactive traffic,
battery energy above the depth-of-discharge floor, and the grid budget —
and places pending jobs into the epochs that maximize total utility:

    utility(job, epoch) = value
                        + perf_weight * marginal_perf
                        - grid_penalty    * grid_kWh
                        - battery_penalty * battery_kWh

``marginal_perf`` prices the placement through the existing
:class:`~repro.core.solver.PARSolver` against the profiling database:
the projected rack-performance gain of adding the job's power on top of
the batch power already committed in that epoch.  Energy is drawn
renewable-first, then battery, then grid; a placement the grid budget
cannot cover is infeasible.

Two search strategies share the candidate machinery: greedy by utility
density (utility per Wh, re-priced after each commitment) for arbitrary
queues, and an exhaustive assignment enumeration when the candidate
space is small enough to afford it.  A ``no_shift`` policy places every
job at its earliest feasible epoch — the run-immediately baseline the
benchmark compares against.

Only offset-0 placements are executed; the rest of the plan is
re-derived next epoch from fresh forecasts (standard receding-horizon
control), so a renewable dropout injected mid-run simply shows up in
the next replan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel, PARSolver
from repro.errors import ConfigurationError, SolverError
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.shift.queue import JobQueue, ShiftJob

_EPS = 1e-9

_PLAN_SECONDS = _REGISTRY.histogram(
    "repro_shift_plan_seconds", "ShiftPlanner.plan wall time"
)
_PLANS_TOTAL = _REGISTRY.counter(
    "repro_shift_plans_total",
    "Plans by search strategy (greedy = fallback past the exhaustive limit)",
    labelnames=("method",),
)
_CANDIDATES_TOTAL = _REGISTRY.counter(
    "repro_shift_candidates_total", "Candidate (job, offset) placements evaluated"
)
_PLACEMENTS_TOTAL = _REGISTRY.counter(
    "repro_shift_placements_total", "Jobs placed into plan windows"
)
_UNPLACED_TOTAL = _REGISTRY.counter(
    "repro_shift_unplaced_total", "Jobs left unplaced by a plan"
)


def chain_forecast(predictor: Any, horizon: int) -> tuple[float, ...]:
    """Roll ``predictor`` forward ``horizon`` epochs by forecast chaining.

    A clone of the predictor observes its own one-step forecast and
    predicts again, ``horizon`` times.  For Holt's linear method this
    reproduces the direct ``predict(h) = level + h * trend`` ray exactly
    (observing the forecast advances the level by one trend step and
    leaves the trend unchanged), while generalizing to any streaming
    predictor; the original predictor is never mutated.
    """
    if horizon < 1:
        raise ConfigurationError("horizon must be >= 1")
    if isinstance(predictor, HoltPredictor):
        clone = HoltPredictor.from_state_dict(predictor.state_dict())
        out = []
        for _ in range(horizon):
            forecast = clone.predict(1)
            out.append(forecast)
            clone.observe(forecast)
        return tuple(out)
    # Baseline predictors (persistence, moving average) have no trend to
    # chain; their direct multi-step forecast is the honest equivalent.
    return tuple(float(predictor.predict(h)) for h in range(1, horizon + 1))


@dataclass(frozen=True)
class PlanInputs:
    """Everything one replan needs, as plain per-epoch series.

    All series are indexed by epoch offset from ``time_s`` and must be
    at least ``1`` long; the planner pads shorter series by repeating
    the final entry when a job's duration runs past the forecasts.
    """

    time_s: float
    epoch_s: float
    renewable_w: tuple[float, ...]
    interactive_w: tuple[float, ...]
    #: Batch power already committed per epoch by running jobs (W).
    committed_w: tuple[float, ...]
    #: Rack capacity available to batch groups each epoch (W).
    batch_capacity_w: float
    #: Battery energy above the DoD floor at plan time (Wh).
    battery_usable_wh: float
    battery_max_discharge_w: float
    grid_budget_w: float
    #: Solver models of the rack's deferrable (batch) groups; empty when
    #: the profiling database has no projections yet.
    batch_models: tuple[GroupModel, ...] = ()

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ConfigurationError("epoch length must be positive")
        if not self.renewable_w or not self.interactive_w:
            raise ConfigurationError("forecast series must be non-empty")
        for name in ("batch_capacity_w", "battery_usable_wh",
                     "battery_max_discharge_w", "grid_budget_w"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Placement:
    """One job scheduled into a concrete epoch window."""

    job_id: str
    start_offset: int
    start_s: float
    n_epochs: int
    power_w: float
    renewable_wh: float
    battery_wh: float
    grid_wh: float
    marginal_perf: float
    utility: float
    #: Grid energy this placement saves versus running the job at its
    #: earliest feasible epoch (the no-shift behaviour); 0 under no_shift.
    grid_avoided_wh: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "start_offset": int(self.start_offset),
            "start_s": float(self.start_s),
            "n_epochs": int(self.n_epochs),
            "power_w": float(self.power_w),
            "renewable_wh": float(self.renewable_wh),
            "battery_wh": float(self.battery_wh),
            "grid_wh": float(self.grid_wh),
            "marginal_perf": float(self.marginal_perf),
            "utility": float(self.utility),
            "grid_avoided_wh": float(self.grid_avoided_wh),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Placement":
        try:
            return cls(
                job_id=str(data["job_id"]),
                start_offset=int(data["start_offset"]),
                start_s=float(data["start_s"]),
                n_epochs=int(data["n_epochs"]),
                power_w=float(data["power_w"]),
                renewable_wh=float(data["renewable_wh"]),
                battery_wh=float(data["battery_wh"]),
                grid_wh=float(data["grid_wh"]),
                marginal_perf=float(data["marginal_perf"]),
                utility=float(data["utility"]),
                grid_avoided_wh=float(data["grid_avoided_wh"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed placement: {exc}") from exc


@dataclass(frozen=True)
class ShiftPlan:
    """The outcome of one replan.

    ``placements`` covers newly placed pending jobs; ``batch_power_w``
    is the resulting total batch draw per horizon epoch including jobs
    that were already running.  Offset-0 placements are the only ones
    the runtime executes — everything else is advisory and re-derived
    next epoch.
    """

    time_s: float
    epoch_s: float
    horizon: int
    policy: str
    method: str
    placements: tuple[Placement, ...]
    batch_power_w: tuple[float, ...]
    unplaced: tuple[str, ...]
    #: ``(job_id, grid_wh)`` for every startable pending job, priced as
    #: if it started *this* epoch against untouched supply.  The runtime
    #: keeps the first such quote per job as the run-immediately
    #: counterfactual its grid-avoided telemetry is measured against.
    start_now_grid_wh: tuple[tuple[str, float], ...] = ()

    def starting_now(self) -> tuple[Placement, ...]:
        return tuple(p for p in self.placements if p.start_offset == 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_s": float(self.time_s),
            "epoch_s": float(self.epoch_s),
            "horizon": int(self.horizon),
            "policy": self.policy,
            "method": self.method,
            "placements": [p.to_dict() for p in self.placements],
            "batch_power_w": [float(v) for v in self.batch_power_w],
            "unplaced": list(self.unplaced),
            "start_now_grid_wh": [
                [job_id, float(grid_wh)]
                for job_id, grid_wh in self.start_now_grid_wh
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShiftPlan":
        try:
            return cls(
                time_s=float(data["time_s"]),
                epoch_s=float(data["epoch_s"]),
                horizon=int(data["horizon"]),
                policy=str(data["policy"]),
                method=str(data["method"]),
                placements=tuple(
                    Placement.from_dict(p) for p in data["placements"]
                ),
                batch_power_w=tuple(float(v) for v in data["batch_power_w"]),
                unplaced=tuple(str(j) for j in data["unplaced"]),
                start_now_grid_wh=tuple(
                    (str(job_id), float(grid_wh))
                    for job_id, grid_wh in data.get("start_now_grid_wh", [])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed shift plan: {exc}") from exc


class _SupplyState:
    """Mutable per-epoch supply ledger a plan commits placements against.

    Fill order is renewable headroom, then battery (bounded by both the
    remaining usable energy and the per-epoch discharge rate), then the
    grid budget; a placement the grid cannot complete is infeasible.
    """

    def __init__(self, inputs: PlanInputs, span: int) -> None:
        self.epoch_h = inputs.epoch_s / 3600.0

        def pad(series: Sequence[float]) -> list[float]:
            padded = [max(0.0, float(v)) for v in series[:span]]
            while len(padded) < span:
                padded.append(padded[-1])
            return padded

        renewable = pad(inputs.renewable_w)
        interactive = pad(inputs.interactive_w)
        committed = pad(inputs.committed_w) if inputs.committed_w else [0.0] * span

        self.renewable_free_w = [
            max(0.0, r - i) for r, i in zip(renewable, interactive)
        ]
        self.grid_free_w = [inputs.grid_budget_w] * span
        self.battery_rate_w = [inputs.battery_max_discharge_w] * span
        self.battery_wh = inputs.battery_usable_wh
        self.capacity_w = [inputs.batch_capacity_w] * span

        # Running jobs were admitted by earlier plans; their draw comes
        # off supply and capacity before anything new is considered.
        for h, power in enumerate(committed):
            if power > _EPS:
                alloc = self.price(power, h, 1)
                if alloc is None:
                    # Supply no longer covers them (e.g. a fault hit);
                    # absorb what exists so new placements stay honest.
                    self._drain(power, h)
                else:
                    self.commit(power, h, 1, alloc)

    def clone(self) -> "_SupplyState":
        other = object.__new__(_SupplyState)
        other.epoch_h = self.epoch_h
        other.renewable_free_w = list(self.renewable_free_w)
        other.grid_free_w = list(self.grid_free_w)
        other.battery_rate_w = list(self.battery_rate_w)
        other.battery_wh = self.battery_wh
        other.capacity_w = list(self.capacity_w)
        return other

    def batch_power_at(self, base_capacity_w: float, h: int) -> float:
        return base_capacity_w - self.capacity_w[h]

    def price(
        self, power_w: float, start: int, n_epochs: int
    ) -> tuple[tuple[float, float, float], ...] | None:
        """Source split per epoch for a candidate, or None if infeasible.

        Each entry is ``(renewable_wh, battery_wh, grid_wh)``.  The
        state is not mutated; battery draw is tracked locally so a
        multi-epoch candidate cannot double-spend the pool.
        """
        if start + n_epochs > len(self.capacity_w):
            return None
        split = []
        battery_left = self.battery_wh
        for h in range(start, start + n_epochs):
            if power_w > self.capacity_w[h] + _EPS:
                return None
            need_wh = power_w * self.epoch_h
            ren = min(need_wh, self.renewable_free_w[h] * self.epoch_h)
            need_wh -= ren
            bat = min(
                need_wh, battery_left, self.battery_rate_w[h] * self.epoch_h
            )
            need_wh -= bat
            battery_left -= bat
            grid = min(need_wh, self.grid_free_w[h] * self.epoch_h)
            need_wh -= grid
            if need_wh > _EPS:
                return None
            split.append((ren, bat, grid))
        return tuple(split)

    def commit(
        self,
        power_w: float,
        start: int,
        n_epochs: int,
        split: tuple[tuple[float, float, float], ...],
    ) -> None:
        for h, (ren, bat, grid) in zip(range(start, start + n_epochs), split):
            self.renewable_free_w[h] -= ren / self.epoch_h
            self.battery_rate_w[h] -= bat / self.epoch_h
            self.battery_wh -= bat
            self.grid_free_w[h] -= grid / self.epoch_h
            self.capacity_w[h] = max(0.0, self.capacity_w[h] - power_w)

    def _drain(self, power_w: float, h: int) -> None:
        """Best-effort absorption of an over-committed running job."""
        left_wh = power_w * self.epoch_h
        ren = min(left_wh, self.renewable_free_w[h] * self.epoch_h)
        self.renewable_free_w[h] -= ren / self.epoch_h
        left_wh -= ren
        bat = min(
            left_wh, self.battery_wh, self.battery_rate_w[h] * self.epoch_h
        )
        self.battery_wh -= bat
        self.battery_rate_w[h] -= bat / self.epoch_h
        left_wh -= bat
        grid = min(left_wh, self.grid_free_w[h] * self.epoch_h)
        self.grid_free_w[h] -= grid / self.epoch_h
        self.capacity_w[h] = max(0.0, self.capacity_w[h] - power_w)


@dataclass
class _Candidate:
    job: ShiftJob
    offset: int
    split: tuple[tuple[float, float, float], ...]
    marginal_perf: float
    utility: float

    @property
    def density(self) -> float:
        return self.utility / self.job.energy_wh


class ShiftPlanner:
    """Places deferrable jobs over the lookahead window.

    Parameters
    ----------
    horizon:
        Lookahead window length in epochs (the paper-default 15-min
        epochs make ``8`` a two-hour window).
    policy:
        ``"shift"`` (utility-maximizing) or ``"no_shift"`` (every job at
        its earliest feasible epoch — the baseline).
    grid_penalty_per_kwh / battery_penalty_per_kwh:
        Energy prices in the utility, in units of job value.  The grid
        penalty dominating the battery penalty is what makes deferral
        into renewable-rich epochs win.
    perf_weight:
        Weight of the solver-priced marginal performance term; small, so
        it breaks ties between energy-equivalent epochs rather than
        overriding energy costs.
    exhaustive_limit:
        Maximum size of the job->epoch assignment space for which the
        exact enumeration replaces the greedy search.
    solver:
        The :class:`PARSolver` used for marginal-performance pricing;
        a private instance is created when omitted.
    """

    def __init__(
        self,
        horizon: int = 8,
        policy: str = "shift",
        grid_penalty_per_kwh: float = 1.0,
        battery_penalty_per_kwh: float = 0.1,
        perf_weight: float = 1e-6,
        exhaustive_limit: int = 3000,
        solver: PARSolver | None = None,
    ) -> None:
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if policy not in ("shift", "no_shift"):
            raise ConfigurationError(f"unknown shift policy {policy!r}")
        if exhaustive_limit < 0:
            raise ConfigurationError("exhaustive_limit must be non-negative")
        self.horizon = horizon
        self.policy = policy
        self.grid_penalty_per_kwh = grid_penalty_per_kwh
        self.battery_penalty_per_kwh = battery_penalty_per_kwh
        self.perf_weight = perf_weight
        self.exhaustive_limit = exhaustive_limit
        self.solver = solver if solver is not None else PARSolver()
        self._perf_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def plan(self, queue: JobQueue, inputs: PlanInputs) -> ShiftPlan:
        """Produce the plan for this epoch.  The queue is not mutated."""
        with _PLAN_SECONDS.time():
            result = self._plan_impl(queue, inputs)
        _PLANS_TOTAL.labels(result.method).inc()
        if result.placements:
            _PLACEMENTS_TOTAL.inc(len(result.placements))
        if result.unplaced:
            _UNPLACED_TOTAL.inc(len(result.unplaced))
        return result

    def _plan_impl(self, queue: JobQueue, inputs: PlanInputs) -> ShiftPlan:
        self._perf_cache.clear()
        pending = queue.pending()
        span = self.horizon + max(
            (j.n_epochs(inputs.epoch_s) for j in pending), default=1
        )
        state = _SupplyState(inputs, span)
        pristine = state.clone()

        # The run-immediately counterfactual: what each startable job's
        # grid draw would be if it started this epoch on untouched
        # supply.  Quoted before any placement commits, so it is the
        # same number a no_shift planner would realize.
        start_now_grid = []
        for job in pending:
            if inputs.time_s + _EPS < job.earliest_start_s:
                continue
            split = pristine.price(job.power_w, 0, job.n_epochs(inputs.epoch_s))
            if split is not None:
                start_now_grid.append((job.job_id, sum(s[2] for s in split)))

        if self.policy == "no_shift":
            placements, unplaced = self._plan_no_shift(pending, inputs, state)
            method = "no_shift"
        else:
            n_combos = 1
            offset_sets = {
                j.job_id: self._feasible_offsets(j, inputs) for j in pending
            }
            for offsets in offset_sets.values():
                n_combos *= len(offsets) + 1
                if n_combos > self.exhaustive_limit:
                    break
            if pending and n_combos <= self.exhaustive_limit:
                placements, unplaced = self._plan_exhaustive(
                    pending, offset_sets, inputs, state
                )
                method = "exhaustive"
            else:
                placements, unplaced = self._plan_greedy(
                    pending, offset_sets, inputs, state
                )
                method = "greedy"
            placements = self._attach_grid_avoided(
                placements, pending, inputs, pristine
            )

        batch_power = tuple(
            state.batch_power_at(inputs.batch_capacity_w, h)
            for h in range(self.horizon)
        )
        return ShiftPlan(
            time_s=inputs.time_s,
            epoch_s=inputs.epoch_s,
            horizon=self.horizon,
            policy=self.policy,
            method=method,
            placements=tuple(placements),
            batch_power_w=batch_power,
            unplaced=tuple(unplaced),
            start_now_grid_wh=tuple(start_now_grid),
        )

    # ------------------------------------------------------------------
    # Candidate machinery
    # ------------------------------------------------------------------
    def _feasible_offsets(self, job: ShiftJob, inputs: PlanInputs) -> list[int]:
        offsets = []
        for h in range(self.horizon):
            start_s = inputs.time_s + h * inputs.epoch_s
            if start_s + _EPS < job.earliest_start_s:
                continue
            if start_s > job.latest_start_s(inputs.epoch_s) + _EPS:
                break
            offsets.append(h)
        return offsets

    def _must_start_now(self, job: ShiftJob, inputs: PlanInputs) -> bool:
        next_start = inputs.time_s + inputs.epoch_s
        return next_start > job.latest_start_s(inputs.epoch_s) + _EPS

    def _marginal_perf(self, base_power_w: float, power_w: float,
                       models: tuple[GroupModel, ...]) -> float:
        if not models:
            return 0.0
        key = (round(base_power_w, 6), round(power_w, 6))
        cached = self._perf_cache.get(key)
        if cached is not None:
            return cached
        try:
            with_job = self.solver.solve(models, base_power_w + power_w)
            without = (
                self.solver.solve(models, base_power_w).expected_perf
                if base_power_w > _EPS
                else 0.0
            )
            marginal = max(0.0, with_job.expected_perf - without)
        except SolverError:
            marginal = 0.0
        self._perf_cache[key] = marginal
        return marginal

    def _evaluate(
        self,
        job: ShiftJob,
        offset: int,
        inputs: PlanInputs,
        state: _SupplyState,
    ) -> _Candidate | None:
        _CANDIDATES_TOTAL.inc()
        n = job.n_epochs(inputs.epoch_s)
        split = state.price(job.power_w, offset, n)
        if split is None:
            return None
        battery_wh = sum(s[1] for s in split)
        grid_wh = sum(s[2] for s in split)
        marginal = sum(
            self._marginal_perf(
                state.batch_power_at(inputs.batch_capacity_w, h),
                job.power_w,
                inputs.batch_models,
            )
            for h in range(offset, offset + n)
        )
        utility = (
            job.value
            + self.perf_weight * marginal
            - self.grid_penalty_per_kwh * grid_wh / 1000.0
            - self.battery_penalty_per_kwh * battery_wh / 1000.0
        )
        return _Candidate(job, offset, split, marginal, utility)

    def _to_placement(
        self, cand: _Candidate, inputs: PlanInputs
    ) -> Placement:
        return Placement(
            job_id=cand.job.job_id,
            start_offset=cand.offset,
            start_s=inputs.time_s + cand.offset * inputs.epoch_s,
            n_epochs=cand.job.n_epochs(inputs.epoch_s),
            power_w=cand.job.power_w,
            renewable_wh=sum(s[0] for s in cand.split),
            battery_wh=sum(s[1] for s in cand.split),
            grid_wh=sum(s[2] for s in cand.split),
            marginal_perf=cand.marginal_perf,
            utility=cand.utility,
            grid_avoided_wh=0.0,
        )

    def _commit(self, cand: _Candidate, inputs: PlanInputs,
                state: _SupplyState) -> None:
        state.commit(
            cand.job.power_w,
            cand.offset,
            cand.job.n_epochs(inputs.epoch_s),
            cand.split,
        )

    # ------------------------------------------------------------------
    # Search strategies
    # ------------------------------------------------------------------
    def _plan_greedy(
        self,
        pending: list[ShiftJob],
        offset_sets: dict[str, list[int]],
        inputs: PlanInputs,
        state: _SupplyState,
    ) -> tuple[list[Placement], list[str]]:
        placements: list[Placement] = []
        open_jobs = list(pending)
        while open_jobs:
            best: _Candidate | None = None
            for job in open_jobs:
                for offset in offset_sets[job.job_id]:
                    cand = self._evaluate(job, offset, inputs, state)
                    if cand is None or cand.utility <= 0.0:
                        continue
                    # Strictly-better acceptance over a deterministic
                    # iteration order keeps ties reproducible.
                    if best is None or (
                        cand.density,
                        cand.marginal_perf,
                        -cand.offset,
                    ) > (best.density, best.marginal_perf, -best.offset):
                        best = cand
            if best is None:
                break
            self._commit(best, inputs, state)
            placements.append(self._to_placement(best, inputs))
            open_jobs = [j for j in open_jobs if j.job_id != best.job.job_id]

        return self._force_deadline_starts(
            placements, open_jobs, offset_sets, inputs, state
        )

    def _force_deadline_starts(
        self,
        placements: list[Placement],
        open_jobs: list[ShiftJob],
        offset_sets: dict[str, list[int]],
        inputs: PlanInputs,
        state: _SupplyState,
    ) -> tuple[list[Placement], list[str]]:
        """Forced pass: a job whose last feasible start is *now* either
        runs at whatever the supply costs, or is missed — deferral is no
        longer an option, so utility does not gate it."""
        still_open = []
        for job in open_jobs:
            if self._must_start_now(job, inputs) and 0 in offset_sets[job.job_id]:
                cand = self._evaluate(job, 0, inputs, state)
                if cand is not None:
                    self._commit(cand, inputs, state)
                    placements.append(self._to_placement(cand, inputs))
                    continue
            still_open.append(job)
        return placements, [j.job_id for j in still_open]

    def _plan_exhaustive(
        self,
        pending: list[ShiftJob],
        offset_sets: dict[str, list[int]],
        inputs: PlanInputs,
        state: _SupplyState,
    ) -> tuple[list[Placement], list[str]]:
        """Exact search over job -> (skip | offset) assignments.

        Assignments are committed in submission order on a cloned supply
        state; skipping a must-start-now job forfeits its value.  The
        first assignment (in enumeration order) achieving the strictly
        best total utility wins, so the result is deterministic.
        """
        best_total = -math.inf
        best_cands: list[_Candidate | None] | None = None

        def recurse(idx: int, scratch: _SupplyState, total: float,
                    chosen: list[_Candidate | None]) -> None:
            nonlocal best_total, best_cands
            if idx == len(pending):
                if total > best_total + _EPS:
                    best_total = total
                    best_cands = list(chosen)
                return
            job = pending[idx]
            # Option 1: skip (penalized only when the job would be lost).
            penalty = (
                job.value if self._must_start_now(job, inputs) else 0.0
            )
            chosen.append(None)
            recurse(idx + 1, scratch, total - penalty, chosen)
            chosen.pop()
            # Option 2: each feasible offset.
            for offset in offset_sets[job.job_id]:
                cand = self._evaluate(job, offset, inputs, scratch)
                if cand is None:
                    continue
                branch = scratch.clone()
                self._commit(cand, inputs, branch)
                chosen.append(cand)
                recurse(idx + 1, branch, total + cand.utility, chosen)
                chosen.pop()

        recurse(0, state, 0.0, [])

        placements: list[Placement] = []
        skipped: list[ShiftJob] = []
        if best_cands is None:
            best_cands = [None] * len(pending)
        for job, cand in zip(pending, best_cands):
            if cand is None:
                skipped.append(job)
            else:
                # Re-price against the real state in commit order so the
                # returned source splits reflect the joint plan.
                final = self._evaluate(job, cand.offset, inputs, state)
                if final is None:  # pragma: no cover - clones agree
                    skipped.append(job)
                    continue
                self._commit(final, inputs, state)
                placements.append(self._to_placement(final, inputs))
        # The enumeration may rationally "skip" a job whose last chance
        # is now (cost > value); the forced pass overrides that, exactly
        # as in the greedy path — a deadline start is not optional.
        return self._force_deadline_starts(
            placements, skipped, offset_sets, inputs, state
        )

    def _plan_no_shift(
        self,
        pending: list[ShiftJob],
        inputs: PlanInputs,
        state: _SupplyState,
    ) -> tuple[list[Placement], list[str]]:
        placements: list[Placement] = []
        unplaced: list[str] = []
        for job in pending:
            placed = False
            for offset in self._feasible_offsets(job, inputs):
                cand = self._evaluate(job, offset, inputs, state)
                if cand is not None:
                    self._commit(cand, inputs, state)
                    placements.append(self._to_placement(cand, inputs))
                    placed = True
                    break
            if not placed:
                unplaced.append(job.job_id)
        return placements, unplaced

    def _attach_grid_avoided(
        self,
        placements: list[Placement],
        pending: list[ShiftJob],
        inputs: PlanInputs,
        pristine: _SupplyState,
    ) -> list[Placement]:
        """Annotate each placement with grid energy saved versus running
        the same job at its earliest feasible epoch on the untouched
        supply state (what no-shift would have drawn)."""
        jobs = {j.job_id: j for j in pending}
        out = []
        for placement in placements:
            job = jobs[placement.job_id]
            avoided = 0.0
            offsets = self._feasible_offsets(job, inputs)
            if offsets:
                baseline = pristine.price(
                    job.power_w, offsets[0], job.n_epochs(inputs.epoch_s)
                )
                if baseline is not None:
                    baseline_grid = sum(s[2] for s in baseline)
                    avoided = max(0.0, baseline_grid - placement.grid_wh)
            out.append(
                Placement(**{**placement.to_dict(), "grid_avoided_wh": avoided})
            )
        return out
