"""Workload schedules: what the rack runs changes over the day.

Real green datacenters time-shift work: interactive services carry the
day, deferrable batch jobs soak up the night (or, in renewable-aware
shops like GreenSlot/GreenHadoop from the paper's related work, the
sunny hours).  :class:`WorkloadSchedule` expresses such a rotation as
daily-cyclic phases; the engine switches the controller's rack workload
at phase boundaries, exercising Algorithm 1's arrival path — the first
epoch of each never-before-seen (platform, workload) pair triggers a
training run, while returning phases reuse the database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY

#: A schedule entry's workload spec: one name for the whole rack or a
#: per-group list (co-location).
WorkloadSpec = "str | list[str]"


@dataclass(frozen=True)
class WorkloadPhase:
    """One daily-cyclic phase.

    Attributes
    ----------
    start_hour:
        Hour of day (local, [0, 24)) this phase begins.
    workload:
        Workload name, or a per-group list for mixed racks.
    """

    start_hour: float
    workload: str | list[str]

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_hour < 24.0:
            raise ConfigurationError(
                f"phase start hour must be in [0, 24), got {self.start_hour}"
            )


class WorkloadSchedule:
    """A daily rotation of workloads.

    Parameters
    ----------
    phases:
        At least one phase; starts need not be sorted, but must be
        distinct.  The phase active at any hour is the one with the
        greatest start not after it, wrapping to the latest phase
        overnight.

    Examples
    --------
    >>> schedule = WorkloadSchedule([
    ...     WorkloadPhase(8.0, "SPECjbb"),        # business hours
    ...     WorkloadPhase(20.0, "Streamcluster"), # overnight batch
    ... ])
    >>> schedule.workload_at(10 * 3600.0)
    'SPECjbb'
    >>> schedule.workload_at(3 * 3600.0)          # 03:00: still batch
    'Streamcluster'
    """

    def __init__(self, phases: list[WorkloadPhase]) -> None:
        if not phases:
            raise ConfigurationError("a schedule needs at least one phase")
        starts = [p.start_hour for p in phases]
        if len(set(starts)) != len(starts):
            raise ConfigurationError("phase start hours must be distinct")
        self.phases = sorted(phases, key=lambda p: p.start_hour)

    def phase_at(self, time_s: float) -> WorkloadPhase:
        """The phase active at simulation time ``time_s``."""
        hour = (time_s % SECONDS_PER_DAY) / 3600.0
        active = self.phases[-1]  # overnight wrap: latest phase carries over
        for phase in self.phases:
            if phase.start_hour <= hour:
                active = phase
        return active

    def workload_at(self, time_s: float) -> str | list[str]:
        """Convenience: the active phase's workload spec."""
        return self.phase_at(time_s).workload
