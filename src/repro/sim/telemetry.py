"""Telemetry: the per-epoch record log and its analysis views.

:class:`TelemetryLog` accumulates :class:`~repro.core.controller.EpochRecord`
objects and exposes the numpy series the figures need (throughput, EPU,
PAR, battery activity, ...), plus masks for the supply regimes the paper
slices its analysis by, and a CSV export for external tooling.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.controller import EpochRecord
from repro.core.sources import PowerCase
from repro.errors import SimulationError


def record_to_dict(record: EpochRecord) -> dict[str, Any]:
    """One :class:`EpochRecord` as a JSON-ready dictionary.

    Enums become their string values and tuples become lists; this is
    the per-line schema of :meth:`TelemetryLog.to_jsonl` and the event
    format of the :mod:`repro.serve` daemon's audit stream.
    """
    data = dataclasses.asdict(record)
    data["case"] = record.case.value
    data["charge_source"] = record.charge_source.value
    data["ratios"] = list(record.ratios)
    data["group_budgets_w"] = list(record.group_budgets_w)
    data["state_indices"] = list(record.state_indices)
    data["trained_pairs"] = [list(pair) for pair in record.trained_pairs]
    if record.powered_counts is not None:
        data["powered_counts"] = list(record.powered_counts)
    return data


class TelemetryLog:
    """Ordered log of epoch records for one policy run."""

    def __init__(self) -> None:
        self._records: list[EpochRecord] = []

    def append(self, record: EpochRecord) -> None:
        if self._records and record.time_s <= self._records[-1].time_s:
            raise SimulationError("epoch records must arrive in time order")
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EpochRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> EpochRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[EpochRecord, ...]:
        return tuple(self._records)

    # ------------------------------------------------------------------
    # Series
    # ------------------------------------------------------------------
    def _require_nonempty(self) -> None:
        if not self._records:
            raise SimulationError("telemetry log is empty")

    def series(self, field: str) -> np.ndarray:
        """Any scalar EpochRecord field as a float array."""
        self._require_nonempty()
        return np.array([float(getattr(r, field)) for r in self._records])

    @property
    def times_s(self) -> np.ndarray:
        return self.series("time_s")

    @property
    def throughputs(self) -> np.ndarray:
        return self.series("throughput")

    @property
    def epus(self) -> np.ndarray:
        return self.series("epu")

    @property
    def budgets_w(self) -> np.ndarray:
        return self.series("budget_w")

    @property
    def demands_w(self) -> np.ndarray:
        return self.series("demand_w")

    @property
    def pars(self) -> np.ndarray:
        """First group's PAR (the paper's x%-to-Server-A convention)."""
        self._require_nonempty()
        return np.array([r.ratios[0] for r in self._records])

    @property
    def battery_soc_wh(self) -> np.ndarray:
        return self.series("battery_soc_wh")

    @property
    def cases(self) -> list[PowerCase]:
        self._require_nonempty()
        return [r.case for r in self._records]

    # ------------------------------------------------------------------
    # Regime masks (the paper analyses insufficient-supply epochs)
    # ------------------------------------------------------------------
    def insufficient_mask(self) -> np.ndarray:
        """True where the renewable supply fell short of demand.

        The paper's analysis regime: "when the renewable power supply is
        insufficient (i.e., Case B and C)".  The regime is a property of
        the traces, so it is (nearly) policy-independent and safe to use
        as a shared mask across policy runs.
        """
        self._require_nonempty()
        return ~self.case_mask(PowerCase.A)

    def budget_short_mask(self, tolerance: float = 1e-6) -> np.ndarray:
        """True where the rack budget fell short of predicted demand."""
        self._require_nonempty()
        return self.budgets_w < self.demands_w * (1.0 - tolerance)

    def case_mask(self, *cases: PowerCase) -> np.ndarray:
        self._require_nonempty()
        wanted = set(cases)
        return np.array([r.case in wanted for r in self._records])

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def mean_throughput(self, mask: np.ndarray | None = None) -> float:
        return self._masked_mean(self.throughputs, mask)

    def mean_epu(self, mask: np.ndarray | None = None) -> float:
        return self._masked_mean(self.epus, mask)

    def mean_par(self, mask: np.ndarray | None = None) -> float:
        return self._masked_mean(self.pars, mask)

    def grid_energy_wh(self, epoch_s: float) -> float:
        """Total grid energy over the run (load + charging), Wh."""
        self._require_nonempty()
        grid_w = self.series("grid_to_load_w") + np.array(
            [
                r.charge_w if r.charge_source.value == "grid" else 0.0
                for r in self._records
            ]
        )
        return float(grid_w.sum() * epoch_s / 3600.0)

    def discharge_hours(self, epoch_s: float) -> float:
        """Hours during which the battery was discharging to the load."""
        self._require_nonempty()
        discharging = self.series("battery_to_load_w") > 1e-6
        return float(discharging.sum() * epoch_s / 3600.0)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write the full epoch log as CSV for external analysis/plotting.

        One row per epoch; PAR ratios are exploded into ``par_0..par_k``
        columns, the power case and charge source as their string names.
        """
        self._require_nonempty()
        n_groups = len(self._records[0].ratios)
        scalar_fields = [
            "time_s", "budget_w", "demand_w", "renewable_w", "load_fraction",
            "throughput", "epu", "useful_power_w", "renewable_to_load_w",
            "battery_to_load_w", "grid_to_load_w", "charge_w",
            "battery_soc_wh", "curtailed_w",
        ]
        header = (
            ["case"]
            + scalar_fields
            + [f"par_{i}" for i in range(n_groups)]
            + ["charge_source", "brownout"]
        )
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(header)
            for r in self._records:
                row = [r.case.value]
                row += [f"{getattr(r, name):.6g}" for name in scalar_fields]
                row += [f"{ratio:.6g}" for ratio in r.ratios]
                row += [r.charge_source.value, int(r.brownout)]
                writer.writerow(row)

    def to_jsonl(
        self, path: str | Path, extra: Mapping[str, Any] | None = None
    ) -> None:
        """Write the epoch log as newline-delimited JSON.

        One object per epoch in :func:`record_to_dict` form — the
        daemon's event-stream/audit-log format, and friendlier than CSV
        for log shippers and ``jq``.  ``extra`` keys (rack name, policy,
        cache counters, ...) are merged into every line.
        """
        self._require_nonempty()
        extras = dict(extra) if extra else {}
        with open(path, "w") as f:
            for record in self._records:
                f.write(json.dumps({**record_to_dict(record), **extras}))
                f.write("\n")

    @staticmethod
    def _masked_mean(values: np.ndarray, mask: np.ndarray | None) -> float:
        if mask is not None:
            if mask.shape != values.shape:
                raise SimulationError("mask shape does not match series")
            values = values[mask]
        if len(values) == 0:
            return 0.0
        return float(values.mean())
