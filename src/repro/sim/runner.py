"""Parallel experiment runner: policy fan-out over a process pool.

:func:`run_experiment` replays one :class:`~repro.sim.experiment.ExperimentConfig`
once per policy and :func:`run_experiments` batches whole scenario grids
(the Fig. 9/10/13/14 sweeps, seed-robustness studies, capacity planning)
into one pool.  Every (config, policy) pair is an independent unit of
work: the stack is freshly assembled and identically seeded per policy,
so fanning the runs out over a :class:`~concurrent.futures.ProcessPoolExecutor`
merges **bit-identically** to the serial path — parallelism changes wall
time, never telemetry.

Two engine-level optimisations ride along:

* the synthesized irradiance trace is built **once per config** (via
  :meth:`Simulation.default_trace`) and shared across that config's
  policies instead of being re-synthesized inside every
  :meth:`Simulation.assemble`;
* each policy's :class:`~repro.core.solver.PARSolver` memoizes repeated
  programs (see the solver's ``cache_size``), which the cyclic budgets
  of a constrained-supply sweep hit dozens of times per run.

``jobs=1`` is a zero-dependency serial fallback that never touches
``concurrent.futures``; ``jobs=None`` uses every available core.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig, ExperimentResult
from repro.sim.faults import FaultInjector
from repro.sim.telemetry import TelemetryLog
from repro.traces.nrel import IrradianceTrace


def _run_policy(
    config: ExperimentConfig, policy_name: str, trace: IrradianceTrace
) -> TelemetryLog:
    """One unit of work: assemble and run a single policy's stack.

    Module-level so it pickles for the process pool; also the serial
    path, so both modes execute literally the same code.
    """
    sim = Simulation.assemble(
        policy=make_policy(policy_name),
        rack=config.build_rack(),
        weather=config.weather,
        clock=config.build_clock(),
        solar_scale=config.solar_scale,
        grid_budget_w=config.grid_budget_w,
        diurnal_load=config.diurnal_load,
        seed=config.seed,
        fit_kind=config.fit_kind,
        trace=trace,
        supply_fractions=config.supply_fractions,
        budget_reference_w=config.budget_reference_w,
        strict=config.strict,
    )
    if config.faults:
        # Fresh injector per policy run: the injector captures each
        # controller's healthy component values on first attach.
        sim.faults = FaultInjector.from_specs(config.faults)
    return sim.run()


def _resolve_jobs(jobs: int | None, n_tasks: int) -> int:
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return min(jobs, n_tasks)


def run_experiments(
    configs: Sequence[ExperimentConfig], jobs: int | None = 1
) -> list[ExperimentResult]:
    """Run a batch of experiments, fanning (config, policy) pairs out.

    Parameters
    ----------
    configs:
        The scenarios to run; each yields one :class:`ExperimentResult`
        (in input order) with one telemetry log per configured policy.
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None`` uses every available core.  Results are bit-identical
        regardless of ``jobs``.
    """
    configs = list(configs)
    if not configs:
        return []
    tasks = [(i, name) for i, config in enumerate(configs) for name in config.policies]
    jobs = _resolve_jobs(jobs, len(tasks))
    # One trace per config, shared by all of its policies.
    traces = [
        Simulation.default_trace(config.build_clock(), config.weather, config.seed)
        for config in configs
    ]

    results = [ExperimentResult(config=config) for config in configs]
    if jobs == 1:
        for i, name in tasks:
            results[i].logs[name] = _run_policy(configs[i], name, traces[i])
        return results

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(_run_policy, configs[i], name, traces[i]) for i, name in tasks
        ]
        # Collect in submission order so each result's policy-log dict
        # is ordered exactly as the serial path builds it.
        for (i, name), future in zip(tasks, futures):
            results[i].logs[name] = future.result()
    return results


def run_experiment(config: ExperimentConfig, jobs: int | None = 1) -> ExperimentResult:
    """Run every policy of one config; see :func:`run_experiments`."""
    return run_experiments([config], jobs=jobs)[0]
