"""Failure injection for robustness testing.

A green datacenter's control loop must degrade gracefully when the
physical world misbehaves: inverters trip, batteries are taken offline
for maintenance, utility feeds brown out.  :class:`FaultInjector`
schedules such events against a running controller; the engine applies
it at every epoch boundary, and the restore logic guarantees components
return to their healthy configuration when a window closes.

Three fault families cover the rack's three sources:

* **renewable dropout** — the PV/wind feed produces a fraction of its
  true output (0.0 = total inverter trip) during a window;
* **battery outage** — the bank cannot discharge (maintenance / BMS
  lockout); charging still works, as in a real lockout;
* **grid outage** — the utility budget collapses to a fraction of its
  provisioned value (brownout) or zero (blackout).

The injector never touches controller internals — it only perturbs the
same physical interfaces the real world would.

Schedules can be declared as compact text specs —
``kind:factor:start_s:end_s`` with ``kind`` one of ``renewable``,
``battery``, ``grid`` (e.g. ``renewable:0.0:10800:21600`` for a total
PV trip between hours 3 and 6) — so experiment configs and the CLI's
``--fault`` flag can drive robustness runs without hand-written scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.controller import GreenHeteroController
from repro.errors import ConfigurationError

#: Fault families accepted by :func:`parse_fault_spec`.
FAULT_KINDS = ("renewable", "battery", "grid")


def parse_fault_spec(spec: str) -> tuple[str, FaultWindow]:
    """Parse one ``kind:factor:start_s:end_s`` fault spec.

    Raises
    ------
    ConfigurationError
        On malformed specs (wrong field count, unknown kind, non-numeric
        values, or window/factor constraints violated).
    """
    parts = spec.split(":")
    if len(parts) != 4:
        raise ConfigurationError(
            f"fault spec {spec!r} must be kind:factor:start_s:end_s"
        )
    kind, factor_s, start_s, end_s = parts
    if kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    try:
        factor = float(factor_s)
        start = float(start_s)
        end = float(end_s)
    except ValueError as exc:
        raise ConfigurationError(f"non-numeric field in fault spec {spec!r}") from exc
    return kind, FaultWindow(start, end, factor)


@dataclass(frozen=True)
class FaultWindow:
    """A half-open time interval ``[start_s, end_s)`` with a severity."""

    start_s: float
    end_s: float
    factor: float  # remaining capability fraction during the window

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError("fault window must have positive length")
        if not 0.0 <= self.factor <= 1.0:
            raise ConfigurationError("fault factor must be in [0, 1]")

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


class _FaultableRenewable:
    """Wraps a renewable source, scaling output during fault windows."""

    def __init__(self, inner, windows: list[FaultWindow]) -> None:
        self._inner = inner
        self._windows = windows

    def power_at(self, time_s: float) -> float:
        power = self._inner.power_at(time_s)
        for window in self._windows:
            if window.active_at(time_s):
                power *= window.factor
        return power

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclass
class FaultInjector:
    """Schedules component faults against one rack controller."""

    renewable_windows: list[FaultWindow] = field(default_factory=list)
    battery_windows: list[FaultWindow] = field(default_factory=list)
    grid_windows: list[FaultWindow] = field(default_factory=list)
    _attached: bool = False
    _healthy_discharge_w: float | None = None
    _healthy_grid_budget_w: float | None = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultInjector":
        """Build an injector from ``kind:factor:start_s:end_s`` specs."""
        injector = cls()
        for spec in specs:
            kind, window = parse_fault_spec(spec)
            if kind == "renewable":
                injector.renewable_windows.append(window)
            elif kind == "battery":
                injector.battery_windows.append(window)
            else:
                injector.grid_windows.append(window)
        return injector

    def add_renewable_dropout(self, start_s: float, end_s: float, factor: float = 0.0) -> "FaultInjector":
        """PV/wind output scaled to ``factor`` during the window."""
        self.renewable_windows.append(FaultWindow(start_s, end_s, factor))
        return self

    def add_battery_outage(self, start_s: float, end_s: float) -> "FaultInjector":
        """Battery cannot discharge during the window (BMS lockout)."""
        self.battery_windows.append(FaultWindow(start_s, end_s, 0.0))
        return self

    def add_grid_outage(self, start_s: float, end_s: float, factor: float = 0.0) -> "FaultInjector":
        """Grid budget scaled to ``factor`` (0 = blackout) during the window."""
        self.grid_windows.append(FaultWindow(start_s, end_s, factor))
        return self

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def attach(self, controller: GreenHeteroController) -> None:
        """Wrap the controller's components once (idempotent)."""
        if self._attached:
            return
        controller.pdu.renewable = _FaultableRenewable(
            controller.pdu.renewable, self.renewable_windows
        )
        self._healthy_discharge_w = controller.pdu.battery.max_discharge_w
        self._healthy_grid_budget_w = controller.pdu.grid.budget_w
        self._attached = True

    def apply(self, controller: GreenHeteroController, time_s: float) -> None:
        """Set component health for the epoch starting at ``time_s``."""
        self.attach(controller)
        assert self._healthy_discharge_w is not None
        assert self._healthy_grid_budget_w is not None

        battery_factor = 1.0
        for window in self.battery_windows:
            if window.active_at(time_s):
                battery_factor = min(battery_factor, window.factor)
        # A zero discharge limit would be rejected by the battery's own
        # validation; an epsilon models a locked-out bank faithfully.
        controller.pdu.battery.max_discharge_w = max(
            battery_factor * self._healthy_discharge_w, 1e-9
        )

        grid_factor = 1.0
        for window in self.grid_windows:
            if window.active_at(time_s):
                grid_factor = min(grid_factor, window.factor)
        controller.pdu.grid.budget_w = grid_factor * self._healthy_grid_budget_w
