"""Experiment harness: policy sweeps over the paper's configurations.

:class:`ExperimentConfig` captures one evaluation scenario (rack
combination, workload, solar regime, grid budget, duration) and
:func:`run_experiment` replays it once per policy with identical traces
and noise seeds, so differences are attributable to the policy alone.
:class:`ExperimentResult` then computes the paper's headline quantities:
performance and EPU gains over the Uniform baseline, sliced to the
insufficient-supply epochs the paper focuses on.

Table IV's server combinations ship as :data:`COMBINATIONS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.database import FitKind
from repro.core.policies import POLICY_NAMES
from repro.errors import ConfigurationError
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.faults import parse_fault_spec
from repro.sim.telemetry import TelemetryLog
from repro.traces.nrel import Weather
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY

#: Table IV: the evaluated server combinations.  Each named configuration
#: deploys five servers per type, as in Section V-A.2.
COMBINATIONS: dict[str, tuple[tuple[str, int], ...]] = {
    "Comb1": (("E5-2620", 5), ("i5-4460", 5)),
    "Comb2": (("E5-2603", 5), ("i5-4460", 5)),
    "Comb3": (("E5-2650", 5), ("E5-2620", 5)),
    "Comb4": (("i7-8700K", 5), ("i5-4460", 5)),
    "Comb5": (("E5-2620", 5), ("E5-2603", 5), ("i5-4460", 5)),
    "Comb6": (("E5-2620", 5), ("TitanXp", 5)),
}

#: Hardware power envelope of the standard 10-server testbed rack
#: (Comb1: five E5-2620 at 178 W + five i5-4460 at 96 W).  The paper runs
#: every evaluation against the same physical power infrastructure, so
#: the Fig. 13 combination sweep takes its absolute supply levels from
#: this envelope regardless of the combination's own size.
STANDARD_TESTBED_ENVELOPE_W: float = 5 * 178.0 + 5 * 96.0


@dataclass(frozen=True)
class ExperimentConfig:
    """One evaluation scenario.

    Attributes
    ----------
    platforms:
        ``(platform, count)`` groups (PAR order).
    workload:
        Workload name run by every group.
    weather:
        Solar regime (High/Low trace).
    days:
        Simulated duration.
    start_day:
        Offset into the replayed traces (history before it trains the
        predictors).
    solar_scale:
        PV clear-sky peak over rack maximum draw.
    grid_budget_w:
        Grid cap; ``None`` = 75% of rack maximum draw.  Must be ``None``
        when ``supply_fractions`` is set (the sweep disables the grid).
    policies:
        Which Table III policies to run.
    seed:
        Master seed shared by every policy run.
    diurnal_load:
        Diurnal offered load for interactive workloads.
    fit_kind:
        Database fit family (ablation knob).
    epoch_s:
        Scheduling epoch length.
    """

    platforms: tuple[tuple[str, int], ...] = (("E5-2620", 5), ("i5-4460", 5))
    workload: str = "SPECjbb"
    weather: Weather = Weather.HIGH
    days: float = 1.0
    start_day: float = 1.0
    solar_scale: float = 1.4
    grid_budget_w: float | None = 1000.0
    policies: tuple[str, ...] = POLICY_NAMES
    seed: int = 2021
    diurnal_load: bool = True
    fit_kind: FitKind = FitKind.QUADRATIC
    epoch_s: float = EPOCH_SECONDS
    supply_fractions: tuple[float, ...] | None = None
    budget_reference_w: float | None = None
    #: Fault schedule as ``kind:factor:start_s:end_s`` specs (see
    #: :func:`repro.sim.faults.parse_fault_spec`); every policy run gets
    #: its own injector built from these, applied at epoch boundaries.
    faults: tuple[str, ...] = ()
    #: Run every policy under the strict invariant audit (any violation
    #: raises :class:`~repro.errors.InvariantViolation`; the ``--strict``
    #: CLI flag).  Violations are counted even when False.
    strict: bool = False

    #: The supply-fraction cycle (of the rack *hardware envelope*) the
    #: Fig. 9/10/13/14 comparisons sweep: the insufficient-supply range
    #: between "almost nothing runs" and "most demand met", mirroring the
    #: Section III-B fixed-budget methodology on the fixed testbed.
    INSUFFICIENT_SWEEP: tuple[float, ...] = (
        0.48, 0.53, 0.58, 0.63, 0.68, 0.73, 0.78, 0.83,
    )

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ConfigurationError("days must be positive")
        if not self.policies:
            raise ConfigurationError("at least one policy is required")
        if self.supply_fractions is not None and self.grid_budget_w is not None:
            raise ConfigurationError(
                "supply_fractions and grid_budget_w conflict: the "
                "constrained-supply sweep disables the grid, so a grid "
                "budget would be silently ignored — set grid_budget_w=None"
            )
        for spec in self.faults:
            parse_fault_spec(spec)  # fail fast on malformed schedules

    # ------------------------------------------------------------------
    # Named scenarios
    # ------------------------------------------------------------------
    @classmethod
    def fig8_default(cls, **overrides) -> "ExperimentConfig":
        """The Fig. 8 runtime scenario: Comb1 rack, SPECjbb, High trace."""
        return replace(cls(), **overrides)

    @classmethod
    def fig11_low_trace(cls, **overrides) -> "ExperimentConfig":
        """The Fig. 11 scenario: same rack, Low solar trace."""
        return replace(cls(weather=Weather.LOW), **overrides)

    @classmethod
    def for_combination(cls, name: str, workload: str = "SPECjbb", **overrides) -> "ExperimentConfig":
        """A Table IV combination scenario (Figs. 13 and 14)."""
        if name not in COMBINATIONS:
            raise ConfigurationError(
                f"unknown combination {name!r}; expected one of {tuple(COMBINATIONS)}"
            )
        return replace(cls(platforms=COMBINATIONS[name], workload=workload), **overrides)

    @classmethod
    def combination_sweep(cls, name: str, workload: str = "SPECjbb", **overrides) -> "ExperimentConfig":
        """A Table IV combination under the constrained-supply sweep.

        CPU combinations (Fig. 13) share the standard testbed's absolute
        supply levels — the paper ran every combination against the same
        power infrastructure, which is why the small homogeneous-like
        racks (Comb2, Comb4) are barely power-stressed and show ~no
        gain.  The GPU rack (Comb6, Fig. 14) is provisioned against its
        own much larger envelope.
        """
        reference = None if name == "Comb6" else STANDARD_TESTBED_ENVELOPE_W
        base = cls.for_combination(
            name,
            workload,
            days=overrides.pop("days", 0.5),
            grid_budget_w=None,
            supply_fractions=cls.INSUFFICIENT_SWEEP,
            budget_reference_w=reference,
        )
        return replace(base, **overrides)

    @classmethod
    def insufficient_supply(cls, workload: str, **overrides) -> "ExperimentConfig":
        """The Fig. 9/10 regime: a constrained-supply sweep for one workload.

        Each epoch's budget is a fraction of rack demand, cycling over
        :data:`INSUFFICIENT_SWEEP`; half a simulated day gives six passes
        over the sweep.
        """
        base = cls(
            workload=workload,
            days=overrides.pop("days", 0.5),
            grid_budget_w=None,
            supply_fractions=cls.INSUFFICIENT_SWEEP,
        )
        return replace(base, **overrides)

    # ------------------------------------------------------------------
    def build_rack(self) -> Rack:
        return Rack(list(self.platforms), self.workload)

    def build_clock(self) -> SimClock:
        return SimClock(
            start_s=self.start_day * SECONDS_PER_DAY,
            duration_s=self.days * SECONDS_PER_DAY,
            epoch_s=self.epoch_s,
        )


@dataclass(frozen=True)
class PolicySummary:
    """Headline aggregates for one policy run."""

    policy: str
    mean_throughput: float
    mean_throughput_insufficient: float
    mean_epu: float
    mean_epu_insufficient: float
    mean_par: float
    grid_energy_wh: float
    battery_discharge_hours: float


@dataclass
class ExperimentResult:
    """Per-policy telemetry plus the paper's comparison arithmetic."""

    config: ExperimentConfig
    logs: dict[str, TelemetryLog] = field(default_factory=dict)

    def log(self, policy: str) -> TelemetryLog:
        try:
            return self.logs[policy]
        except KeyError:
            raise ConfigurationError(
                f"policy {policy!r} was not part of this experiment"
            ) from None

    # ------------------------------------------------------------------
    # Regime slicing
    # ------------------------------------------------------------------
    def insufficient_mask(self) -> np.ndarray:
        """Epochs where supply fell short of demand.

        Judged on the Uniform baseline's timeline (all policies share
        traces and load), falling back to the first available policy.
        """
        reference = self.logs.get("Uniform") or next(iter(self.logs.values()))
        return reference.insufficient_mask()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def summary(self, policy: str) -> PolicySummary:
        log = self.log(policy)
        mask = self.insufficient_mask()
        return PolicySummary(
            policy=policy,
            mean_throughput=log.mean_throughput(),
            mean_throughput_insufficient=log.mean_throughput(mask),
            mean_epu=log.mean_epu(),
            mean_epu_insufficient=log.mean_epu(mask),
            mean_par=log.mean_par(),
            grid_energy_wh=log.grid_energy_wh(self.config.epoch_s),
            battery_discharge_hours=log.discharge_hours(self.config.epoch_s),
        )

    def gain(
        self,
        policy: str,
        metric: str = "throughput",
        baseline: str = "Uniform",
        insufficient_only: bool = True,
    ) -> float:
        """Ratio of ``policy`` to ``baseline`` on ``metric``.

        ``metric`` is ``"throughput"`` or ``"epu"``; the paper reports
        gains over insufficient-supply epochs (ratio of means).
        """
        if metric not in ("throughput", "epu"):
            raise ConfigurationError("metric must be 'throughput' or 'epu'")
        mask = self.insufficient_mask() if insufficient_only else None
        getter = TelemetryLog.mean_throughput if metric == "throughput" else TelemetryLog.mean_epu
        top = getter(self.log(policy), mask)
        bottom = getter(self.log(baseline), mask)
        if bottom == 0.0:
            return float("inf") if top > 0 else 1.0
        return top / bottom

    def gains_table(self, metric: str = "throughput") -> dict[str, float]:
        """Gain of every policy vs Uniform (the Fig. 9/10 bars)."""
        return {name: self.gain(name, metric) for name in self.logs}


def run_experiment(config: ExperimentConfig, jobs: int = 1) -> ExperimentResult:
    """Run every configured policy over identical traces and noise.

    Each policy gets a freshly built stack seeded identically, so the
    solar trace, the offered load, and the measurement-noise stream are
    bit-identical across policies.  ``jobs > 1`` fans the policy runs
    out over a process pool (see :mod:`repro.sim.runner`); the merged
    result is bit-identical to the serial path because every policy's
    stack is independently assembled and seeded either way.
    """
    from repro.sim.runner import run_experiment as _run  # avoids an import cycle

    return _run(config, jobs=jobs)
