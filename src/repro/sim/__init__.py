"""Simulation substrate: clock, telemetry, engine, experiment harness."""

from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.sim.faults import FaultInjector, FaultWindow
from repro.sim.schedule import WorkloadPhase, WorkloadSchedule
from repro.sim.experiment import (
    COMBINATIONS,
    ExperimentConfig,
    ExperimentResult,
    PolicySummary,
    run_experiment,
)
from repro.sim.runner import run_experiments
from repro.sim.telemetry import TelemetryLog

__all__ = [
    "COMBINATIONS",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultInjector",
    "FaultWindow",
    "PolicySummary",
    "SimClock",
    "Simulation",
    "TelemetryLog",
    "WorkloadPhase",
    "WorkloadSchedule",
    "run_experiment",
    "run_experiments",
]
