"""Discrete simulation clock: epochs over a trace-driven timeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.units import EPOCH_SECONDS, SECONDS_PER_DAY


@dataclass(frozen=True)
class SimClock:
    """Epoch timeline for a run.

    Attributes
    ----------
    start_s:
        Timestamp of the first epoch (offset into the replayed traces).
    duration_s:
        Total simulated time.
    epoch_s:
        Epoch length (paper: 15 minutes).
    """

    start_s: float = SECONDS_PER_DAY
    duration_s: float = SECONDS_PER_DAY
    epoch_s: float = EPOCH_SECONDS

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.epoch_s <= 0:
            raise ConfigurationError("duration and epoch length must be positive")
        if self.start_s < 0:
            raise ConfigurationError("start must be non-negative")

    @property
    def n_epochs(self) -> int:
        """Number of whole epochs in the run."""
        return int(self.duration_s // self.epoch_s)

    def epoch_times(self) -> Iterator[float]:
        """Start timestamp of each epoch, in order."""
        for i in range(self.n_epochs):
            yield self.start_s + i * self.epoch_s

    def history_times(self, n_epochs: int) -> list[float]:
        """Timestamps of the ``n_epochs`` epochs *preceding* the run.

        Used to pre-train the Holt predictors on "past records"
        (Eq. 5); may dip below zero, which trace wrap-around handles.
        """
        if n_epochs < 1:
            raise ConfigurationError("need at least one history epoch")
        return [self.start_s - (n_epochs - i) * self.epoch_s for i in range(n_epochs)]
