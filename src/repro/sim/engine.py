"""The trace-driven simulation engine.

:class:`Simulation` assembles one policy's full stack — rack, solar farm,
battery bank, grid feed, PDU, monitor, adaptive scheduler, controller —
and replays it over the clock's epoch timeline, producing a
:class:`~repro.sim.telemetry.TelemetryLog`.

The engine is where the paper's experimental methodology is encoded:

* the solar farm is sized relative to the rack's maximum draw so the
  High trace is sufficient around midday and insufficient at the edges;
* interactive workloads see the diurnal offered-load pattern, batch and
  HPC workloads saturate;
* Holt predictors are pre-trained on the day of history preceding the
  simulated window ("training the past renewable power generation
  records", Section IV-B.1);
* the battery starts full, exactly as in Section V-B.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import EpochRecord, GreenHeteroController
from repro.core.database import FitKind, ProfilingDatabase
from repro.core.monitor import Monitor
from repro.core.policies import Policy
from repro.core.scheduler import AdaptiveScheduler
from repro.errors import ConfigurationError
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.power.battery import BatteryBank, UnlimitedSupply
from repro.power.grid import GridSource
from repro.power.pdu import PDU
from repro.power.solar import SolarFarm
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.faults import FaultInjector
from repro.sim.schedule import WorkloadSchedule
from repro.shift.runtime import ShiftRuntime
from repro.sim.telemetry import TelemetryLog
from repro.traces.datacenter_load import DiurnalLoadPattern
from repro.traces.nrel import IrradianceTrace, Weather, synthesize_irradiance
from repro.verify.auditor import AuditContext, InvariantAuditor
from repro.workloads.generator import LoadGenerator
from repro.workloads.models import response_for

_EPOCH_SECONDS_HIST = _REGISTRY.histogram(
    "repro_sim_epoch_seconds", "Wall time of one Simulation.step epoch"
)


@dataclass
class Simulation:
    """A fully assembled single-policy run.

    Build directly for full control, or through :meth:`assemble` for the
    paper's standard methodology.
    """

    controller: GreenHeteroController
    clock: SimClock
    load_generator: LoadGenerator
    log: TelemetryLog = field(default_factory=TelemetryLog)
    #: Optional fault schedule applied at every epoch boundary
    #: (see :mod:`repro.sim.faults`).
    faults: "FaultInjector | None" = None
    #: Optional daily workload rotation (see :mod:`repro.sim.schedule`);
    #: phase changes call :meth:`GreenHeteroController.switch_workload`.
    workload_schedule: "WorkloadSchedule | None" = None
    #: Optional temporal-shifting runtime (see :mod:`repro.shift`); when
    #: set, each epoch routes through it so planner decisions gate the
    #: rack's deferrable groups and shift telemetry accrues in
    #: ``shift.log``.
    shift: "ShiftRuntime | None" = None
    #: Remembered assembly knobs so workload switches can rebuild the
    #: offered-load generator consistently.
    diurnal_load: bool = True
    seed: int = 2021
    #: When True, any invariant violation raises
    #: :class:`~repro.errors.InvariantViolation` at the offending epoch;
    #: otherwise violations only accumulate on :attr:`auditor` and in the
    #: ``repro_verify_violations_total`` metric.
    strict: bool = False
    #: The per-epoch invariant auditor; built on first step when omitted
    #: (pass one to customize the check suite).
    auditor: "InvariantAuditor | None" = None

    @classmethod
    def assemble(
        cls,
        policy: Policy,
        rack: Rack,
        weather: Weather = Weather.HIGH,
        clock: SimClock | None = None,
        solar_scale: float = 1.4,
        grid_budget_w: float | None = None,
        battery: BatteryBank | None = None,
        diurnal_load: bool = True,
        seed: int = 2021,
        fit_kind: FitKind = FitKind.QUADRATIC,
        trace: IrradianceTrace | None = None,
        supply_fractions: tuple[float, ...] | None = None,
        budget_reference_w: float | None = None,
        strict: bool = False,
    ) -> "Simulation":
        """Assemble the paper's standard experimental stack.

        Parameters
        ----------
        policy:
            The allocation policy under test.
        rack:
            The heterogeneous rack.
        weather:
            High or Low solar regime (ignored when ``trace`` is given).
        clock:
            Epoch timeline; defaults to a 24-hour run starting one day
            into a one-week trace.
        solar_scale:
            PV clear-sky peak as a multiple of the rack's maximum draw.
        grid_budget_w:
            Grid cap; ``None`` picks 75% of the rack's maximum draw,
            matching the paper's deliberately under-provisioned 1000 W
            for its ~1.3 kW rack.  Mutually exclusive with
            ``supply_fractions`` (which disables the grid).
        battery:
            Battery bank; the paper's 10 x 12 V x 100 Ah default when
            omitted.  Mutually exclusive with ``supply_fractions``
            (which fixes an effectively unlimited bank).
        diurnal_load:
            Whether interactive workloads follow the diurnal pattern.
        seed:
            Master seed for trace synthesis and measurement noise.
        fit_kind:
            Database curve-fit family (quadratic in the paper; linear
            and cubic for the ablation).
        supply_fractions:
            Constrained-supply mode (the Section III-B fixed-budget
            methodology): each epoch's rack budget is forced to
            ``fraction * rack hardware envelope`` (capped at the
            workload's demand), cycling through the given fractions.
            The battery is made effectively unlimited and the grid
            disabled, so scarcity comes solely from the budget — this is
            the regime the Fig. 9/10/13/14 comparisons isolate.  The
            envelope reference makes the sweep workload-independent,
            like the paper's fixed testbed: power-hungry workloads are
            shorted deeply, light ones barely.
        strict:
            Raise :class:`~repro.errors.InvariantViolation` at the first
            epoch whose physics accounting fails an invariant audit
            (otherwise violations only count; see :mod:`repro.verify`).
        """
        if solar_scale <= 0:
            raise ConfigurationError("solar scale must be positive")
        clock = clock or SimClock()
        if trace is None:
            trace = cls.default_trace(clock, weather, seed)
        solar = SolarFarm.sized_for(trace, peak_power_w=solar_scale * rack.max_draw_w)
        if supply_fractions is not None:
            if not supply_fractions or any(f <= 0 for f in supply_fractions):
                raise ConfigurationError("supply fractions must be positive")
            if battery is not None or grid_budget_w is not None:
                raise ConfigurationError(
                    "supply_fractions fixes the battery (unlimited) and the "
                    "grid (disabled); a caller-supplied battery or "
                    "grid_budget_w would be silently discarded — drop them "
                    "or drop supply_fractions"
                )
            # Constrained-supply mode: a truly unlimited supply sentinel
            # and no grid — the override below is the only scarcity.  A
            # merely oversized BatteryBank would still hit its DoD floor
            # on long horizons and pollute cycle/lifetime telemetry.
            battery = UnlimitedSupply()
            grid = GridSource(budget_w=0.0)
        else:
            battery = battery if battery is not None else BatteryBank()
            budget = grid_budget_w if grid_budget_w is not None else 0.75 * rack.max_draw_w
            grid = GridSource(budget_w=budget)
        pdu = PDU(solar, battery, grid)
        monitor = Monitor(seed=seed + 1)
        scheduler = AdaptiveScheduler(policy, database=ProfilingDatabase(fit_kind=fit_kind))
        controller = GreenHeteroController(
            rack=rack, pdu=pdu, policy=policy, monitor=monitor,
            scheduler=scheduler, epoch_s=clock.epoch_s,
        )

        generator = cls._build_generator(rack, diurnal_load, seed)
        pattern = generator.pattern

        if supply_fractions is not None:
            fractions = tuple(supply_fractions)
            epoch_s = clock.epoch_s
            start_s = clock.start_s
            reference_w = (
                budget_reference_w if budget_reference_w is not None else rack.envelope_w
            )

            def override(time_s: float, demand_w: float) -> float:
                index = int(round((time_s - start_s) / epoch_s))
                return min(fractions[index % len(fractions)] * reference_w, demand_w)

            controller.budget_override = override

        sim = cls(
            controller=controller,
            clock=clock,
            load_generator=generator,
            diurnal_load=diurnal_load,
            seed=seed,
            strict=strict,
        )
        sim._pretrain(pattern)
        return sim

    # ------------------------------------------------------------------
    @staticmethod
    def default_trace(clock: SimClock, weather: Weather, seed: int) -> IrradianceTrace:
        """The standard irradiance trace for a run on ``clock``.

        Long enough to cover the simulated window plus the pretraining
        history (at least the paper's one-week trace).  Factored out so
        the experiment runner can synthesize it once and share it across
        every policy of a config instead of re-deriving it per policy.
        """
        n_days = max(7.0, (clock.start_s + clock.duration_s) / 86400.0)
        return synthesize_irradiance(days=n_days, weather=weather, seed=seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _lead_workload(rack: Rack):
        """The workload whose offered load drives the generator.

        The diurnal request stream only exists for interactive services,
        so on co-located racks the lead is the *first interactive* group's
        workload, wherever it sits in PAR order; all-batch racks fall
        back to group 0 (saturating load either way).  When several
        interactive workloads co-locate, the first one's diurnal pattern
        drives them all — `_samples_for_states` balances each workload's
        groups separately against that shared offered fraction.
        """
        for group in rack.groups:
            if group.workload.is_interactive:
                return group.workload
        return rack.groups[0].workload

    @classmethod
    def _build_generator(cls, rack: Rack, diurnal_load: bool, seed: int) -> LoadGenerator:
        """Offered-load generator for the rack's (current) lead workload.

        Interactive workloads follow the diurnal pattern scaled by their
        typical datacenter utilisation; batch workloads ignore it.
        """
        workload = cls._lead_workload(rack)
        util = response_for(workload).utilization_scale
        pattern = None
        if diurnal_load:
            base_pattern = DiurnalLoadPattern()
            pattern = lambda t: util * base_pattern.at(t)  # noqa: E731
        return LoadGenerator(workload, pattern=pattern, seed=seed + 2)

    def _apply_schedule(self, time_s: float) -> None:
        """Switch the rack's workload if the schedule's phase changed."""
        if self.workload_schedule is None:
            return
        spec = self.workload_schedule.workload_at(time_s)
        wanted = [spec] * len(self.controller.rack.groups) if isinstance(spec, str) else list(spec)
        current = [g.workload.name for g in self.controller.rack.groups]
        if wanted != current:
            self.controller.switch_workload(spec)
            self.load_generator = self._build_generator(
                self.controller.rack, self.diurnal_load, self.seed
            )

    def _pretrain(self, pattern) -> None:
        """Prime the Holt predictors on the preceding day of history."""
        history_times = self.clock.history_times(
            n_epochs=max(8, int(86400.0 // self.clock.epoch_s))
        )
        solar = self.controller.pdu.renewable
        rack = self.controller.rack
        renewable_history = [solar.power_at(t) for t in history_times]
        if pattern is not None and self._lead_workload(rack).is_interactive:
            demand_history = [rack.demand_at_load(pattern(t)) for t in history_times]
        else:
            demand_history = [rack.demand_at_load(1.0) for _ in history_times]
        self.controller.prime_predictors(renewable_history, demand_history)

    # ------------------------------------------------------------------
    def run(self) -> TelemetryLog:
        """Execute every remaining epoch on the clock; returns the log.

        Stepping and running share one per-epoch code path: a run is
        exactly ``n_epochs`` calls to :meth:`step`, so a partially
        stepped simulation can be completed with :meth:`run`.
        """
        while len(self.log) < self.clock.n_epochs:
            self.step()
        return self.log

    def step(self) -> "EpochRecord":
        """Run a single epoch (for incremental/driving use).

        Returns the epoch's :class:`~repro.core.controller.EpochRecord`
        (also appended to :attr:`log`).
        """
        if len(self.log) >= self.clock.n_epochs:
            raise ConfigurationError("simulation already complete")
        if self.auditor is None:
            self.auditor = InvariantAuditor(strict=self.strict)
        with _EPOCH_SECONDS_HIST.time():
            t = self.clock.start_s + len(self.log) * self.clock.epoch_s
            if self.faults is not None:
                self.faults.apply(self.controller, t)
            self._apply_schedule(t)
            # Captured after fault injection so the audit's SoC delta
            # reflects only the epoch's own flows.
            soc_before = self.controller.pdu.battery.soc_wh
            load = self.load_generator.at(t)
            if self.shift is not None:
                record = self.shift.execute_epoch(
                    self.controller, t, load_fraction=load.fraction
                )
                gating_active = self.shift.activated
            else:
                record = self.controller.run_epoch(t, load_fraction=load.fraction)
                gating_active = False
            self.log.append(record)
            self.auditor.audit(
                AuditContext(
                    record=record,
                    controller=self.controller,
                    epoch_s=self.clock.epoch_s,
                    soc_before_wh=soc_before,
                    gating_active=gating_active,
                )
            )
        return record
