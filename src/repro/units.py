"""Unit conventions and small conversion helpers.

The whole library uses a single set of base units so that power flows can
be audited without conversion mistakes:

===========  =======================================
Quantity     Unit
===========  =======================================
power        watt (W)
energy       watt-hour (Wh)
time         second (s) internally; helpers for min/h
frequency    hertz (Hz); GHz helpers for readability
throughput   abstract operations per second (ops/s)
irradiance   W/m^2
===========  =======================================

The paper's scheduling epoch is 15 minutes with 2-minute profiling
sub-steps (Section IV-B); those constants live here so every subsystem
agrees on them.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60
MINUTES_PER_HOUR = 60
SECONDS_PER_HOUR = SECONDS_PER_MINUTE * MINUTES_PER_HOUR
HOURS_PER_DAY = 24
SECONDS_PER_DAY = SECONDS_PER_HOUR * HOURS_PER_DAY

#: Scheduling epoch length used throughout the paper (Section IV-B.1).
EPOCH_SECONDS = 15 * SECONDS_PER_MINUTE

#: Profiling sub-step: the database receives one (power, perf) sample
#: every 2 minutes during a run (Section IV-B.2).
SUBSTEP_SECONDS = 2 * SECONDS_PER_MINUTE

#: Training-run duration, "typically 10 minutes" (Section IV-B.2).
TRAINING_RUN_SECONDS = 10 * SECONDS_PER_MINUTE

#: Number of epochs in a 24-hour day at the paper's 15-minute epoch.
EPOCHS_PER_DAY = SECONDS_PER_DAY // EPOCH_SECONDS


def minutes(m: float) -> float:
    """Convert minutes to seconds."""
    return m * SECONDS_PER_MINUTE


def hours(h: float) -> float:
    """Convert hours to seconds."""
    return h * SECONDS_PER_HOUR


def days(d: float) -> float:
    """Convert days to seconds."""
    return d * SECONDS_PER_DAY


def watt_hours(power_w: float, duration_s: float) -> float:
    """Energy in Wh delivered by ``power_w`` watts over ``duration_s`` seconds."""
    return power_w * duration_s / SECONDS_PER_HOUR


def wh_to_joules(energy_wh: float) -> float:
    """Convert watt-hours to joules."""
    return energy_wh * SECONDS_PER_HOUR


def ghz(f: float) -> float:
    """Convert GHz to Hz."""
    return f * 1e9


def mhz(f: float) -> float:
    """Convert MHz to Hz."""
    return f * 1e6
