"""Analysis: metrics aggregation and paper-figure reporting."""

from repro.analysis.comparison import GainStatistics, gain_statistics, seed_sweep
from repro.analysis.lifetime import LifetimeProjection, project_lifetime
from repro.analysis.metrics import (
    geometric_mean,
    normalize_to_baseline,
    projection_error,
    summarize_gains,
)
from repro.analysis.plotting import bar_chart, hbar, sparkline, timeline
from repro.analysis.reporting import format_series, format_table
from repro.analysis.sustainability import SustainabilityReport, sustainability_report

__all__ = [
    "GainStatistics",
    "LifetimeProjection",
    "SustainabilityReport",
    "bar_chart",
    "format_series",
    "format_table",
    "gain_statistics",
    "geometric_mean",
    "hbar",
    "normalize_to_baseline",
    "project_lifetime",
    "projection_error",
    "seed_sweep",
    "sparkline",
    "summarize_gains",
    "sustainability_report",
    "timeline",
]
