"""Plain-text rendering of the paper's tables and figure series.

The benches print their reproduced rows through these helpers so the
paper-vs-measured comparison is legible in CI logs without plotting.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, values: Sequence[float], fmt: str = "{:.3f}", per_line: int = 12
) -> str:
    """Render a numeric series compactly, wrapped at ``per_line`` values."""
    chunks = []
    rendered = [fmt.format(v) for v in values]
    for i in range(0, len(rendered), per_line):
        chunks.append("  " + " ".join(rendered[i : i + per_line]))
    return f"{name} (n={len(values)}):\n" + "\n".join(chunks)


def format_gains(gains: Mapping[str, float], baseline: str = "Uniform") -> str:
    """One-line summary of per-policy gains vs the baseline."""
    parts = [f"{name}: {value:.2f}x" for name, value in gains.items()]
    return f"gain vs {baseline} -> " + ", ".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
