"""Markdown experiment reports.

Turns an :class:`~repro.sim.experiment.ExperimentResult` into a
self-contained markdown document — configuration, per-policy comparison,
energy/sustainability rollup, and a sparkline timeline — suitable for
dropping into a lab notebook, a PR description, or CI artifacts.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.plotting import sparkline
from repro.analysis.sustainability import sustainability_report
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentResult


def experiment_report(
    result: ExperimentResult,
    title: str = "GreenHetero experiment report",
    baseline: str | None = None,
) -> str:
    """Render ``result`` as a markdown document.

    Parameters
    ----------
    result:
        A completed experiment (at least one policy log).
    title:
        The document's H1.
    baseline:
        Gain denominator; defaults to Uniform when present, else the
        first policy.
    """
    if not result.logs:
        raise ConfigurationError("cannot report an empty experiment")
    config = result.config
    policies = [p for p in config.policies if p in result.logs]
    if baseline is None:
        baseline = "Uniform" if "Uniform" in result.logs else policies[0]
    if baseline not in result.logs:
        raise ConfigurationError(f"baseline {baseline!r} was not run")

    lines: list[str] = [f"# {title}", ""]

    # Configuration block.
    platforms = ", ".join(f"{c}x {p}" for p, c in config.platforms)
    lines += [
        "## Configuration",
        "",
        f"* rack: {platforms}",
        f"* workload: {config.workload}",
        f"* duration: {config.days:g} day(s), epoch {config.epoch_s / 60:.0f} min",
        f"* seed: {config.seed}",
    ]
    if config.supply_fractions is not None:
        fractions = ", ".join(f"{f:.0%}" for f in config.supply_fractions)
        lines.append(f"* constrained supply sweep: {fractions}")
    else:
        lines += [
            f"* weather: {config.weather.value} trace",
            f"* grid budget: {config.grid_budget_w or 'auto'} W",
        ]
    lines.append("")

    # Policy comparison.
    lines += [
        "## Policies",
        "",
        f"| policy | mean perf | gain vs {baseline} | EPU gain | mean PAR | grid kWh |",
        "|---|---|---|---|---|---|",
    ]
    for name in policies:
        summary = result.summary(name)
        lines.append(
            f"| {name} | {summary.mean_throughput:,.0f} "
            f"| {result.gain(name, baseline=baseline):.2f}x "
            f"| {result.gain(name, 'epu', baseline=baseline):.2f}x "
            f"| {summary.mean_par:.0%} "
            f"| {summary.grid_energy_wh / 1000:.2f} |"
        )
    lines.append("")

    # Sustainability rollup.
    lines += ["## Energy and carbon", "", "| policy | renewable | CO2 (kg) | grid cost |", "|---|---|---|---|"]
    for name in policies:
        rollup = sustainability_report(result.log(name), config.epoch_s)
        lines.append(
            f"| {name} | {rollup.renewable_fraction:.0%} "
            f"| {rollup.co2_kg:.2f} | ${rollup.grid_cost_usd:.2f} |"
        )
    lines.append("")

    # Timeline sketch of the most interesting policy.
    focus = "GreenHetero" if "GreenHetero" in result.logs else policies[-1]
    log = result.log(focus)
    stride = max(1, len(log) // 48)
    lines += [
        f"## Timeline ({focus})",
        "",
        "```",
        f"throughput {sparkline(log.throughputs[::stride])}",
        f"epu        {sparkline(log.epus[::stride], lo=0.0, hi=1.0)}",
        f"renewable  {sparkline(log.series('renewable_w')[::stride])}",
        f"battery    {sparkline(log.battery_soc_wh[::stride])}",
        "```",
        "",
        f"{len(log)} epochs; insufficient-supply epochs: "
        f"{int(result.insufficient_mask().sum())}.",
        "",
    ]
    return "\n".join(lines)


def save_experiment_report(
    result: ExperimentResult, path: str | Path, **kwargs
) -> None:
    """Write :func:`experiment_report` to ``path``."""
    Path(path).write_text(experiment_report(result, **kwargs))
