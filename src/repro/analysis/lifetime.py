"""Battery lifetime projection and replacement economics.

The paper caps DoD at 40% specifically for lifetime — "which translates
to a lifetime of 1300 recharge cycles" — and argues its twice-a-day
full-DoD cycling on the Low trace has "relatively very small impact".
This module turns a run's observed cycling into the operator's numbers:
years until the bank hits its cycle rating, and the amortised
replacement cost per year, so battery wear can be traded against the
grid savings the policies produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.battery import RATED_CYCLES_AT_DOD, BatteryBank

#: Street price of a 12 V / 100 Ah deep-cycle lead-acid unit (USD).
DEFAULT_UNIT_PRICE_USD = 180.0

#: Calendar ageing bound: lead-acid floats ~5 years even if never cycled.
CALENDAR_LIFE_YEARS = 5.0


@dataclass(frozen=True)
class LifetimeProjection:
    """Battery wear extrapolated from an observed run.

    Attributes
    ----------
    cycles_per_day:
        Equivalent full-DoD cycles consumed per simulated day.
    cycle_limited_years:
        Years until the rated cycle count is exhausted at this pace
        (infinity when the run never cycled).
    projected_years:
        Service life: the earlier of cycle exhaustion and calendar
        ageing.
    replacement_cost_per_year_usd:
        Bank price amortised over the projected life.
    """

    cycles_per_day: float
    cycle_limited_years: float
    projected_years: float
    replacement_cost_per_year_usd: float

    @property
    def calendar_limited(self) -> bool:
        """True when shelf ageing, not cycling, ends the bank's life."""
        return self.cycle_limited_years > CALENDAR_LIFE_YEARS


def project_lifetime(
    battery: BatteryBank,
    observed_days: float,
    unit_price_usd: float = DEFAULT_UNIT_PRICE_USD,
    units: int = 10,
) -> LifetimeProjection:
    """Extrapolate a bank's service life from a finished run.

    Parameters
    ----------
    battery:
        The bank after the run (its cycle counter is read).
    observed_days:
        Simulated duration the counter covers.
    unit_price_usd / units:
        Replacement economics (paper's bank: 10 units).

    Raises
    ------
    ConfigurationError
        On non-positive duration, price, or unit count.
    """
    if observed_days <= 0:
        raise ConfigurationError("observed duration must be positive")
    if unit_price_usd <= 0 or units <= 0:
        raise ConfigurationError("price and unit count must be positive")
    if battery.is_unlimited:
        raise ConfigurationError(
            "cannot project lifetime for an UnlimitedSupply sentinel: it "
            "never cycles, so wear numbers would be meaningless"
        )

    cycles_per_day = battery.equivalent_cycles / observed_days
    if cycles_per_day <= 0:
        cycle_years = float("inf")
    else:
        cycle_years = RATED_CYCLES_AT_DOD / cycles_per_day / 365.0
    projected = min(cycle_years, CALENDAR_LIFE_YEARS)
    cost = units * unit_price_usd / projected
    return LifetimeProjection(
        cycles_per_day=cycles_per_day,
        cycle_limited_years=cycle_years,
        projected_years=projected,
        replacement_cost_per_year_usd=cost,
    )
