"""Multi-seed statistical comparison.

A single seeded run proves nothing about robustness: the solar trace,
cloud events, offered-load jitter and meter noise are all one draw from
their distributions.  :func:`seed_sweep` replays an experiment across
independent seeds and reports the gain's mean with a Student-t
confidence interval, so headline numbers ("GreenHetero is 1.6x over
Uniform") carry error bars.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig, run_experiment


@dataclass(frozen=True)
class GainStatistics:
    """Gain distribution over independent seeds.

    Attributes
    ----------
    samples:
        The per-seed gains, in seed order.
    mean / std:
        Sample mean and (ddof=1) standard deviation.
    ci_low / ci_high:
        Two-sided Student-t confidence interval for the mean.
    confidence:
        The interval's confidence level.
    """

    samples: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.samples)

    def describe(self) -> str:
        """One line: ``1.62x +- 0.04 (95% CI [1.58, 1.66], n=5)``."""
        return (
            f"{self.mean:.2f}x +- {self.std:.2f} "
            f"({self.confidence:.0%} CI [{self.ci_low:.2f}, {self.ci_high:.2f}], "
            f"n={self.n})"
        )


def gain_statistics(samples: Sequence[float], confidence: float = 0.95) -> GainStatistics:
    """Summarise a set of per-seed gains.

    Raises
    ------
    ConfigurationError
        With fewer than two samples (no interval exists) or a
        nonsensical confidence level.
    """
    if len(samples) < 2:
        raise ConfigurationError("need at least 2 samples for an interval")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    data = np.asarray(samples, dtype=float)
    mean = float(data.mean())
    std = float(data.std(ddof=1))
    sem = std / np.sqrt(len(data))
    if sem == 0.0:
        lo = hi = mean
    else:
        lo, hi = stats.t.interval(confidence, len(data) - 1, loc=mean, scale=sem)
    return GainStatistics(
        samples=tuple(float(x) for x in data),
        mean=mean,
        std=std,
        ci_low=float(lo),
        ci_high=float(hi),
        confidence=confidence,
    )


def seed_sweep(
    config: ExperimentConfig,
    seeds: Sequence[int],
    policy: str = "GreenHetero",
    metric: str = "throughput",
    baseline: str = "Uniform",
    confidence: float = 0.95,
) -> GainStatistics:
    """Run ``config`` across ``seeds`` and return gain statistics.

    Each seed re-synthesises the traces and noise streams; everything
    else (rack, policies, methodology) is held fixed.

    Raises
    ------
    ConfigurationError
        If the baseline or policy is not part of the config's policy
        set, or fewer than two seeds are given.
    """
    if len(seeds) < 2:
        raise ConfigurationError("need at least 2 seeds")
    for name in (policy, baseline):
        if name not in config.policies:
            raise ConfigurationError(f"policy {name!r} not in the config's policies")
    gains = []
    for seed in seeds:
        result = run_experiment(replace(config, seed=int(seed)))
        gains.append(result.gain(policy, metric, baseline=baseline))
    return gain_statistics(gains, confidence=confidence)
