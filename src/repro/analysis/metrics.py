"""Metric aggregation helpers shared by the benches and examples."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.database import PerfPowerFit
from repro.errors import ConfigurationError
from repro.servers.power_model import ResponseCurve


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean — the right average for speedup ratios.

    Raises
    ------
    ConfigurationError
        On empty input or non-positive entries.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ConfigurationError("geometric mean of empty sequence")
    if np.any(data <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.log(data).mean()))


def normalize_to_baseline(
    values: Mapping[str, float], baseline: str
) -> dict[str, float]:
    """Divide every entry by the baseline's value (the paper's bar charts).

    Raises
    ------
    ConfigurationError
        When the baseline is missing or zero.
    """
    if baseline not in values:
        raise ConfigurationError(f"baseline {baseline!r} not in values")
    base = values[baseline]
    if base == 0:
        raise ConfigurationError("baseline value is zero")
    return {name: v / base for name, v in values.items()}


def projection_error(
    fit: PerfPowerFit, curve: ResponseCurve, n_points: int = 50
) -> float:
    """Mean relative error of a database projection vs ground truth.

    Evaluated over the *enforceable* operating range (the power levels
    the SPC can actually set), normalised by the curve's maximum
    throughput — the quantity GreenHetero's online updating is supposed
    to drive down over time (Algorithm 1).
    """
    if n_points < 2:
        raise ConfigurationError("need at least 2 evaluation points")
    budgets = np.linspace(
        curve.min_active_power_w, curve.max_draw_w, n_points
    )
    scale = curve.max_throughput
    errors = [
        abs(fit.predict(float(b)) - curve.perf_at_power(float(b)).throughput) / scale
        for b in budgets
    ]
    return float(np.mean(errors))


def shift_comparison(
    shift_log,
    no_shift_log,
    epoch_s: float,
    shift_jobs: Mapping[str, int],
    no_shift_jobs: Mapping[str, int],
    shift_summary: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Shift-vs-no-shift headline numbers (the ``repro shift`` payload).

    Parameters
    ----------
    shift_log / no_shift_log:
        The two arms' :class:`~repro.sim.telemetry.TelemetryLog`.
    epoch_s:
        Epoch length, for energy integration.
    shift_jobs / no_shift_jobs:
        Each arm's job status counts (``JobQueue.counts()``).
    shift_summary:
        Optional :meth:`ShiftRuntime.summary` of the shifting arm, for
        the planner-side grid-avoided accounting.

    Raises
    ------
    ConfigurationError
        When the arms ran different numbers of epochs (the comparison
        is only meaningful over identical timelines).
    """
    if len(shift_log) != len(no_shift_log):
        raise ConfigurationError(
            f"arms ran {len(shift_log)} vs {len(no_shift_log)} epochs; "
            "shift comparisons need identical timelines"
        )
    shift_grid = shift_log.grid_energy_wh(epoch_s) / 1000.0
    base_grid = no_shift_log.grid_energy_wh(epoch_s) / 1000.0
    saved = base_grid - shift_grid
    shift_epu = shift_log.mean_epu()
    base_epu = no_shift_log.mean_epu()
    total_shift = sum(shift_jobs.values())
    total_base = sum(no_shift_jobs.values())
    result: dict[str, object] = {
        "grid_kwh": {
            "shift": shift_grid,
            "no_shift": base_grid,
            "saved": saved,
            "saved_fraction": saved / base_grid if base_grid > 0 else 0.0,
        },
        "epu": {
            "shift": shift_epu,
            "no_shift": base_epu,
            "delta": shift_epu - base_epu,
        },
        "deadline_misses": {
            "shift": int(shift_jobs.get("missed", 0)),
            "no_shift": int(no_shift_jobs.get("missed", 0)),
        },
        "miss_rate": {
            "shift": shift_jobs.get("missed", 0) / total_shift if total_shift else 0.0,
            "no_shift": (
                no_shift_jobs.get("missed", 0) / total_base if total_base else 0.0
            ),
        },
        "jobs": {"shift": dict(shift_jobs), "no_shift": dict(no_shift_jobs)},
    }
    if shift_summary is not None:
        result["planner"] = dict(shift_summary)
    return result


def summarize_gains(per_workload_gains: Mapping[str, float]) -> dict[str, float]:
    """Min / mean (geometric) / max over a per-workload gain map."""
    if not per_workload_gains:
        raise ConfigurationError("no gains to summarise")
    gains = list(per_workload_gains.values())
    best = max(per_workload_gains, key=per_workload_gains.__getitem__)
    worst = min(per_workload_gains, key=per_workload_gains.__getitem__)
    return {
        "min": min(gains),
        "mean": geometric_mean(gains),
        "max": max(gains),
        "best_workload": best,  # type: ignore[dict-item]
        "worst_workload": worst,  # type: ignore[dict-item]
    }
