"""Carbon and cost accounting for a run.

The paper motivates green datacenters with electricity cost ("costing
U.S. businesses $13 billion annually") and carbon ("IT companies the
biggest greenhouse gas emitters").  This module rolls a policy run's
telemetry up into exactly those terms: grid energy and its CO2
footprint, the renewable fraction of delivered power, curtailed (wasted)
renewable energy, and the dollar cost under a peak-demand tariff.

Defaults use the U.S. grid-average carbon intensity; both intensity and
tariff are parameters, so regional studies are one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.grid import DEFAULT_ENERGY_PRICE_PER_KWH, DEFAULT_PEAK_PRICE_PER_KW
from repro.sim.telemetry import TelemetryLog

#: U.S. grid-average carbon intensity, kg CO2 per kWh (EPA eGRID-scale).
DEFAULT_GRID_CO2_KG_PER_KWH = 0.39

#: Lifecycle carbon intensity of PV generation, kg CO2 per kWh.
DEFAULT_SOLAR_CO2_KG_PER_KWH = 0.041


@dataclass(frozen=True)
class SustainabilityReport:
    """Energy, carbon, and cost rollup for one policy run.

    All energies in kWh, carbon in kg CO2, money in USD.
    """

    renewable_kwh: float
    battery_kwh: float
    grid_kwh: float
    curtailed_kwh: float
    peak_grid_w: float
    co2_kg: float
    grid_cost_usd: float

    @property
    def delivered_kwh(self) -> float:
        """Total energy delivered to the rack."""
        return self.renewable_kwh + self.battery_kwh + self.grid_kwh

    @property
    def renewable_fraction(self) -> float:
        """Green (renewable + battery) share of delivered energy."""
        total = self.delivered_kwh
        if total == 0.0:
            return 0.0
        return (self.renewable_kwh + self.battery_kwh) / total

    @property
    def curtailment_fraction(self) -> float:
        """Renewable energy wasted, relative to renewable delivered + wasted."""
        produced = self.renewable_kwh + self.curtailed_kwh
        if produced == 0.0:
            return 0.0
        return self.curtailed_kwh / produced


def sustainability_report(
    log: TelemetryLog,
    epoch_s: float,
    grid_co2_kg_per_kwh: float = DEFAULT_GRID_CO2_KG_PER_KWH,
    solar_co2_kg_per_kwh: float = DEFAULT_SOLAR_CO2_KG_PER_KWH,
    peak_price_per_kw: float = DEFAULT_PEAK_PRICE_PER_KW,
    energy_price_per_kwh: float = DEFAULT_ENERGY_PRICE_PER_KWH,
) -> SustainabilityReport:
    """Compute the rollup for one run's telemetry.

    Parameters
    ----------
    log:
        The policy run's telemetry.
    epoch_s:
        Epoch length the records were taken at.
    grid_co2_kg_per_kwh / solar_co2_kg_per_kwh:
        Carbon intensities; battery energy is attributed to its solar
        origin (plus charging losses already reflected in the flows).
    peak_price_per_kw / energy_price_per_kwh:
        Grid tariff for the cost line.
    """
    if epoch_s <= 0:
        raise ConfigurationError("epoch length must be positive")
    if min(grid_co2_kg_per_kwh, solar_co2_kg_per_kwh) < 0:
        raise ConfigurationError("carbon intensities must be non-negative")

    hours = epoch_s / 3600.0
    renewable_kwh = float(log.series("renewable_to_load_w").sum()) * hours / 1000.0
    battery_kwh = float(log.series("battery_to_load_w").sum()) * hours / 1000.0
    curtailed_kwh = float(log.series("curtailed_w").sum()) * hours / 1000.0
    grid_load = log.series("grid_to_load_w")
    grid_charge = [
        r.charge_w if r.charge_source.value == "grid" else 0.0 for r in log
    ]
    grid_kwh = (float(grid_load.sum()) + float(sum(grid_charge))) * hours / 1000.0
    peak_grid_w = float((grid_load + grid_charge).max()) if len(log) else 0.0

    co2 = (
        grid_kwh * grid_co2_kg_per_kwh
        + (renewable_kwh + battery_kwh) * solar_co2_kg_per_kwh
    )
    cost = peak_grid_w / 1000.0 * peak_price_per_kw + grid_kwh * energy_price_per_kwh
    return SustainabilityReport(
        renewable_kwh=renewable_kwh,
        battery_kwh=battery_kwh,
        grid_kwh=grid_kwh,
        curtailed_kwh=curtailed_kwh,
        peak_grid_w=peak_grid_w,
        co2_kg=co2,
        grid_cost_usd=cost,
    )
