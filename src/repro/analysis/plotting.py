"""Terminal plotting: sparklines, bars, and timelines.

The evaluation figures are time series and bar groups; these helpers
render them in plain text so examples and benches can show *shape*
without a plotting stack (the reproduction environment is offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ConfigurationError

#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """Render ``values`` as a unicode sparkline.

    Parameters
    ----------
    values:
        The series; empty input is rejected.
    lo / hi:
        Fixed scale bounds; default to the series min/max.  A flat
        series renders at mid-level.
    """
    if len(values) == 0:
        raise ConfigurationError("cannot sparkline an empty series")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi < lo:
        raise ConfigurationError("hi must be >= lo")
    span = hi - lo
    out = []
    for v in values:
        if span == 0:
            out.append(_SPARK_LEVELS[4])
            continue
        norm = (min(max(v, lo), hi) - lo) / span
        out.append(_SPARK_LEVELS[1 + int(round(norm * (len(_SPARK_LEVELS) - 2)))])
    return "".join(out)


def hbar(value: float, scale: float, width: int = 30, fill: str = "#", empty: str = ".") -> str:
    """A horizontal bar of ``width`` cells, filled to ``value/scale``."""
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    if scale <= 0:
        return empty * width
    filled = int(round(width * min(max(value / scale, 0.0), 1.0)))
    return fill * filled + empty * (width - filled)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Render a labelled horizontal bar chart (the Fig. 9/10 bar groups)."""
    if not values:
        raise ConfigurationError("cannot chart an empty mapping")
    scale = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [] if title is None else [title]
    for name, value in values.items():
        lines.append(
            f"{name.ljust(label_w)} | {hbar(value, scale, width)} {fmt.format(value)}"
        )
    return "\n".join(lines)


def timeline(
    series: Mapping[str, Sequence[float]],
    step_label: str = "h",
    stride: int = 1,
) -> str:
    """Stacked sparkline timelines with shared indexing (Fig. 8-style).

    Parameters
    ----------
    series:
        Ordered mapping of name -> values; all must share a length.
    step_label:
        Unit label for the x-axis note.
    stride:
        Downsampling stride applied to every series.
    """
    if not series:
        raise ConfigurationError("cannot render an empty timeline")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ConfigurationError("all timeline series must share a length")
    if stride < 1:
        raise ConfigurationError("stride must be >= 1")
    label_w = max(len(k) for k in series)
    lines = []
    n = 0
    for name, values in series.items():
        sampled = list(values)[::stride]
        n = len(sampled)
        lines.append(f"{name.ljust(label_w)} | {sparkline(sampled)}")
    lines.append(f"{''.ljust(label_w)} | 0 .. {n - 1} ({step_label} per cell x{stride})")
    return "\n".join(lines)
