"""Instrumentation-overhead benchmark (``BENCH_obs.json``).

Observability only earns always-on status if it is effectively free.
This bench steps two copies of the same reference GreenHetero
simulation in lockstep — one with all instrumentation disabled
(:func:`repro.obs.set_enabled`), one enabled — and reports the
enabled/disabled wall-clock overhead fraction.  The acceptance bar is
**< 5%**; a metric operation costs microseconds against epochs costing
milliseconds, so the true overhead is in the low single digits.

Measuring that honestly is the hard part: single-run wall times on
shared CI machines jitter by ±10-30%, an order of magnitude more than
the signal, so unpaired estimators (time arm A, then arm B) mostly
report which arm got luckier.  The design here stacks three variance
cuts:

1. **Epoch-level interleaving.**  Both sims are identical (same seed,
   same work per epoch), and each epoch is timed for one arm then
   immediately for the other, so slow machine drift lands on both arms
   equally instead of on whichever full run it overlapped.
2. **Order alternation.**  Which arm steps first flips every epoch and
   every repeat, cancelling warm-cache bias toward the second runner.
3. **Per-epoch minima over repeats.**  Timing noise on a deterministic
   workload is one-sided (preemption only ever adds time), so the min
   over ``repeats`` observations of the *same* epoch converges on its
   true cost; the reported overhead is the ratio of the summed minima.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.core.policies import make_policy
from repro.obs import metrics as obs_metrics
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.traces.nrel import Weather
from repro.units import SECONDS_PER_DAY

#: The reference scenario: the paper's standard mixed rack under the
#: GreenHetero policy — the same stack ``repro run`` executes.
BENCH_PLATFORMS: tuple[tuple[str, int], ...] = (("E5-2620", 5), ("i5-4460", 5))
BENCH_WORKLOAD = "SPECjbb"

#: Overhead budget the subsystem must stay under.
OVERHEAD_BUDGET = 0.05


def _assemble(days: float, seed: int) -> Simulation:
    """One copy of the reference simulation."""
    return Simulation.assemble(
        policy=make_policy("GreenHetero"),
        rack=Rack(list(BENCH_PLATFORMS), BENCH_WORKLOAD),
        weather=Weather.HIGH,
        clock=SimClock(start_s=SECONDS_PER_DAY, duration_s=days * SECONDS_PER_DAY),
        seed=seed,
    )


def run_obs_bench(
    days: float = 1.0,
    seed: int = 2021,
    repeats: int = 7,
    out: str | Path | None = None,
) -> dict[str, Any]:
    """Measure instrumentation overhead on the reference run.

    Each repeat steps a disabled and an enabled copy of the simulation
    through every epoch back to back (order alternating); the overhead
    is the ratio of the per-epoch minima summed over the run (see the
    module docstring for why).  Instrumentation is always re-enabled on
    exit.

    Returns (and optionally writes to ``out``) the ``BENCH_obs.json``
    payload with per-arm timings, the overhead fraction, and the metric
    families the instrumented arm populated.
    """
    if repeats < 1:
        raise ValueError("need at least one repeat")
    n_epochs = _assemble(days, seed).clock.n_epochs
    best: dict[bool, list[float]] = {
        False: [math.inf] * n_epochs,
        True: [math.inf] * n_epochs,
    }
    try:
        for repeat in range(repeats):
            sims = {False: _assemble(days, seed), True: _assemble(days, seed)}
            for i in range(n_epochs):
                first = (i + repeat) % 2 == 0
                for enabled in (first, not first):
                    obs_metrics.set_enabled(enabled)
                    start = perf_counter()
                    sims[enabled].step()
                    elapsed = perf_counter() - start
                    if elapsed < best[enabled][i]:
                        best[enabled][i] = elapsed
    finally:
        obs_metrics.set_enabled(True)

    disabled_s = sum(best[False])
    enabled_s = sum(best[True])
    overhead = enabled_s / disabled_s - 1.0
    payload: dict[str, Any] = {
        "bench": "obs-overhead",
        "config": {
            "days": days,
            "epochs": n_epochs,
            "platforms": [list(p) for p in BENCH_PLATFORMS],
            "repeats": repeats,
            "seed": seed,
            "workload": BENCH_WORKLOAD,
        },
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "estimator": "sum of per-epoch minima over interleaved repeats",
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "pass": overhead < OVERHEAD_BUDGET,
        "metric_families": list(obs_metrics.REGISTRY.families()),
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return payload


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--out", default=None, metavar="FILE")
    args = parser.parse_args(argv)
    payload = run_obs_bench(
        days=args.days, seed=args.seed, repeats=args.repeats, out=args.out
    )
    print(
        f"obs overhead: {payload['overhead_fraction']:+.2%} "
        f"(disabled {payload['disabled_s']:.3f} s, "
        f"enabled {payload['enabled_s']:.3f} s, "
        f"budget {payload['overhead_budget']:.0%}) "
        f"-> {'PASS' if payload['pass'] else 'FAIL'}"
    )
    return 0 if payload["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
