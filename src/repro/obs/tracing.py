"""Span tracing: parent/child timing records for the control loop.

``trace(name)`` is both a context manager and a decorator.  Each span
measures a monotonic-clock duration, knows its parent (propagated
through a :class:`contextvars.ContextVar`, so nesting works across
threads and asyncio tasks alike), and on close:

1. records its duration into the shared ``repro_span_seconds{span=…}``
   histogram family of the default registry — so per-phase latency
   distributions (scheduler forecast/select/profile/solve, shift
   planning) are always available from a plain metrics scrape, and
2. optionally appends a JSON line to the configured sink
   (``set_trace_sink``), preserving the full parent/child structure for
   offline flame-graph style analysis.

Span and trace ids are small per-process integers, not random UUIDs —
deterministic runs stay deterministic and the JSONL stays greppable.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, TypeVar

from repro.obs import metrics as _metrics

F = TypeVar("F", bound=Callable[..., Any])

_SPAN_SECONDS = _metrics.REGISTRY.histogram(
    "repro_span_seconds",
    "Duration of traced spans, labelled by span name",
    labelnames=("span",),
)


@dataclass(slots=True)
class Span:
    """One timed region, linked to its parent."""

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    attrs: dict[str, Any] = field(default_factory=dict)
    start_monotonic_s: float = 0.0
    duration_s: float | None = None
    error: bool = False

    def to_record(self) -> dict[str, Any]:
        """The JSONL sink's line format."""
        record: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_monotonic_s": self.start_monotonic_s,
            "duration_s": self.duration_s,
        }
        if self.error:
            record["error"] = True
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Creates spans, maintains the current-span context, sinks records."""

    def __init__(self, registry: _metrics.MetricsRegistry | None = None) -> None:
        self._registry = registry or _metrics.REGISTRY
        self._hist = (
            _SPAN_SECONDS
            if self._registry is _metrics.REGISTRY
            else self._registry.histogram(
                "repro_span_seconds",
                "Duration of traced spans, labelled by span name",
                labelnames=("span",),
            )
        )
        self._current: ContextVar[Span | None] = ContextVar(
            "repro_obs_current_span", default=None
        )
        # ``itertools.count.__next__`` is atomic under the GIL; no lock.
        self._next_id = itertools.count(1).__next__
        #: Per-name histogram children, cached so closing a span is a
        #: dict hit instead of a ``labels()`` call.
        self._hist_children: dict[str, _metrics.Histogram] = {}
        self._sink_path: Path | None = None
        self._sink_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def configure_sink(self, path: str | Path | None) -> None:
        """Append finished spans as JSON lines to ``path`` (None: off)."""
        with self._sink_lock:
            self._sink_path = Path(path) if path is not None else None

    @property
    def sink_path(self) -> Path | None:
        return self._sink_path

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def current_span(self) -> Span | None:
        """The innermost open span in this context, if any."""
        return self._current.get()

    def trace(self, name: str, **attrs: Any) -> "_SpanHandle":
        """A context-manager/decorator timing the named region."""
        return _SpanHandle(self, name, attrs)

    def _open(self, name: str, attrs: dict[str, Any]) -> Span:
        parent = self._current.get()
        span_id = self._next_id()
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=parent.trace_id if parent is not None else span_id,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
            start_monotonic_s=perf_counter(),
        )
        return span

    def _close(self, span: Span) -> None:
        span.duration_s = perf_counter() - span.start_monotonic_s
        child = self._hist_children.get(span.name)
        if child is None:
            child = self._hist_children[span.name] = self._hist.labels(span.name)
        child.observe(span.duration_s)
        path = self._sink_path
        if path is not None:
            line = json.dumps(span.to_record(), sort_keys=True)
            with self._sink_lock:
                if self._sink_path is not None:
                    with open(self._sink_path, "a", encoding="utf-8") as fh:
                        fh.write(line + "\n")


class _SpanHandle:
    """The object ``trace()`` returns; usable with ``with`` or ``@``."""

    __slots__ = ("_attrs", "_name", "_span", "_token", "_tracer")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None
        self._token = None

    def __enter__(self) -> Span | None:
        if not _metrics.obs_enabled():
            return None
        span = self._tracer._open(self._name, self._attrs)
        self._span = span
        self._token = self._tracer._current.set(span)
        return span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        span = self._span
        if span is None:
            return
        self._tracer._current.reset(self._token)
        self._span = None
        self._token = None
        span.error = exc_type is not None
        self._tracer._close(span)

    def __call__(self, func: F) -> F:
        @functools.wraps(func)
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            with _SpanHandle(self._tracer, self._name, dict(self._attrs)):
                return func(*args, **kwargs)

        return wrapped  # type: ignore[return-value]


#: The process-wide tracer backing :func:`trace` / :func:`set_trace_sink`.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return TRACER


def trace(name: str, **attrs: Any) -> _SpanHandle:
    """Time a region on the default tracer: ``with trace("x"): ...``."""
    return TRACER.trace(name, **attrs)


def current_span() -> Span | None:
    """The default tracer's innermost open span, if any."""
    return TRACER.current_span()


def set_trace_sink(path: str | Path | None) -> None:
    """Route the default tracer's finished spans to a JSONL file."""
    TRACER.configure_sink(path)
