"""Shared sample statistics for benches, loadgen, and histograms."""

from __future__ import annotations

from typing import Sequence


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample.

    The single definition shared by the serving load generator (p50/p99
    latency in ``BENCH_serve.json``) and :class:`repro.obs.Histogram`'s
    exact small-sample percentiles.  Empty input yields ``0.0``; the
    rank is clamped into the sample, so ``fraction`` outside [0, 1] is
    tolerated rather than raising.
    """
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]
