"""Metric primitives and the process-wide registry.

Three metric kinds, mirroring the Prometheus data model:

``Counter``
    Monotonically increasing float (requests served, cache hits).
``Gauge``
    A value that can go both ways (queue depth, battery SoC).
``Histogram``
    Observation distribution over fixed power-of-two buckets spanning
    ~1 µs to ~64 s — the full range from a counter increment to a
    multi-day simulation epoch.  Raw samples are additionally retained
    up to :data:`Histogram.SAMPLE_CAP` observations, so small samples
    (the common case for per-run telemetry) get *exact* percentiles;
    past the cap, percentiles degrade gracefully to bucket upper
    bounds.

Metrics are registered as *families*: a name plus a tuple of label
names, with one child per distinct label-value tuple
(``family.labels("hit")``).  A family with no labels acts as its own
single child.  Registration is idempotent — re-declaring the same
family returns the existing one, so modules can declare their metrics
at import time without coordination.

All mutation is guarded by per-child locks (the serving daemon mixes an
asyncio loop with executor threads) and short-circuits on the global
enabled flag, which is how :mod:`repro.obs.bench` measures the
disabled/enabled overhead delta.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from time import perf_counter
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs.stats import percentile

#: Fixed histogram bounds: powers of two from 2^-20 s (~1 µs) to 2^6 s
#: (64 s), plus the implicit +Inf bucket.  Fixed — rather than
#: per-metric — so any two histograms can be aggregated bucket-wise.
POWER_OF_TWO_BUCKETS: tuple[float, ...] = tuple(2.0**e for e in range(-20, 7))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Global kill switch.  Checked first in every mutation path; flipping
#: it off reduces instrumentation to one module-global read per call.
_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Turn all metric mutation (and span recording) on or off."""
    global _ENABLED
    _ENABLED = bool(enabled)


def obs_enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


def _fmt(value: float) -> str:
    """A float in exposition format: integral values without the dot."""
    if value != value or value in (math.inf, -math.inf):  # NaN / ±Inf
        return {math.inf: "+Inf", -math.inf: "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Timer:
    """Context manager observing elapsed wall time into a histogram."""

    __slots__ = ("_sink", "_start")

    def __init__(self, sink: "Histogram | HistogramFamily") -> None:
        self._sink = sink

    def __enter__(self) -> "_Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._sink.observe(perf_counter() - self._start)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ConfigurationError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def state(self) -> float:
        return self._value


class Gauge:
    """A value that can rise and fall."""

    kind = "gauge"

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def state(self) -> float:
        return self._value


class Histogram:
    """Power-of-two-bucket histogram with exact small-sample quantiles.

    Parameters
    ----------
    buckets:
        Strictly increasing finite upper bounds; defaults to
        :data:`POWER_OF_TWO_BUCKETS`.  An implicit +Inf bucket is always
        appended.
    sample_cap:
        Raw observations retained for exact percentiles.  Beyond the
        cap the raw sample is dropped and :meth:`percentile` answers
        from bucket upper bounds instead — bounded memory for long-
        running daemons.
    """

    kind = "histogram"

    SAMPLE_CAP = 2048

    __slots__ = ("_count", "_counts", "_lock", "_samples", "_sum", "bounds", "sample_cap")

    def __init__(
        self,
        buckets: Sequence[float] | None = None,
        sample_cap: int | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in (buckets if buckets is not None else POWER_OF_TWO_BUCKETS))
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError("bucket bounds must be strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise ConfigurationError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        self.sample_cap = Histogram.SAMPLE_CAP if sample_cap is None else int(sample_cap)
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._samples: list[float] | None = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        value = float(value)
        # First bucket whose bound >= value (+Inf catch-all past the end).
        lo = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1
            if self._samples is not None:
                if self._count <= self.sample_cap:
                    self._samples.append(value)
                else:
                    self._samples = None  # past the cap: buckets only

    def time(self) -> _Timer:
        """``with hist.time(): ...`` records the block's wall time."""
        return _Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Quantile estimate: exact below the sample cap, else bucketed.

        The bucketed estimate answers with the upper bound of the first
        bucket whose cumulative count reaches the requested rank — a
        conservative (never optimistic) latency figure.
        """
        with self._lock:
            if self._count == 0:
                return 0.0
            if self._samples is not None:
                return percentile(sorted(self._samples), fraction)
            rank = max(1, math.ceil(fraction * self._count))
            seen = 0
            for i, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    return self.bounds[i] if i < len(self.bounds) else math.inf
            return math.inf  # pragma: no cover - ranks never exceed count

    def bucket_counts(self) -> tuple[tuple[float, int], ...]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        with self._lock:
            out: list[tuple[float, int]] = []
            seen = 0
            for bound, n in zip((*self.bounds, math.inf), self._counts):
                seen += n
                out.append((bound, seen))
            return tuple(out)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._samples = []

    def state(self) -> dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }


class _Family:
    """A named metric with a label schema and one child per label tuple."""

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    # Subclasses build the right child type.
    def _new_child(self) -> Any:
        raise NotImplementedError

    def labels(self, *values: object, **kwargs: object) -> Any:
        """The child for one label-value tuple, created on first use."""
        if kwargs:
            if values:
                raise ConfigurationError("pass labels positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as missing:
                raise ConfigurationError(
                    f"metric {self.name}: missing label {missing}"
                ) from None
            if len(kwargs) != len(self.labelnames):
                raise ConfigurationError(
                    f"metric {self.name}: unexpected labels "
                    f"{sorted(set(kwargs) - set(self.labelnames))}"
                )
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name} takes labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)  # lock-free fast path (GIL-safe)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _default(self) -> Any:
        return self.labels()

    def children(self) -> Iterator[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return iter(sorted(self._children.items()))

    def reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child.reset()


class CounterFamily(_Family):
    kind = "counter"

    def _new_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class GaugeFamily(_Family):
    kind = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float] | None = None,
        sample_cap: int | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self.sample_cap = sample_cap

    def _new_child(self) -> Histogram:
        return Histogram(buckets=self.buckets, sample_cap=self.sample_cap)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def time(self) -> _Timer:
        return _Timer(self)


class MetricsRegistry:
    """Process-wide collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent declarators:
    the first call registers the family, later calls with a matching
    schema return it, and a kind or label-schema mismatch raises —
    catching two modules fighting over one name at import time.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _declare(self, family_cls: type, name: str, help: str,
                 labelnames: Sequence[str], **kwargs: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not family_cls or existing.labelnames != names:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            family = family_cls(name, help, names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> CounterFamily:
        return self._declare(CounterFamily, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> GaugeFamily:
        return self._declare(GaugeFamily, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None,
                  sample_cap: int | None = None) -> HistogramFamily:
        return self._declare(
            HistogramFamily, name, help, labelnames,
            buckets=buckets, sample_cap=sample_cap,
        )

    def families(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._families))

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def expose(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for labelvalues, child in family.children():
                suffix = _label_suffix(family.labelnames, labelvalues)
                if family.kind == "histogram":
                    for bound, cumulative in child.bucket_counts():
                        le = _label_suffix(
                            (*family.labelnames, "le"),
                            (*labelvalues, _fmt(bound)),
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(f"{name}_sum{suffix} {_fmt(child.sum)}")
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    lines.append(f"{name}{suffix} {_fmt(child.value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: family -> {label tuple (joined) -> state}."""
        out: dict[str, Any] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            children = {
                ",".join(labelvalues) if labelvalues else "": child.state()
                for labelvalues, child in family.children()
            }
            out[name] = {
                "kind": family.kind,
                "labelnames": list(family.labelnames),
                "values": children,
            }
        return out

    def reset(self) -> None:
        """Zero every child's state; registrations are kept."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.reset()


#: The process-wide default registry all built-in instrumentation uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Parse Prometheus text back into ``{family: {kind, samples}}``.

    Small structural parser for the smoke test and unit tests: sample
    lines become ``(name_with_suffix, labels_string, value)`` triples
    grouped under their ``# TYPE`` family.  Raises on lines that fit
    neither the comment nor the sample grammar.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("kind") == "histogram":
                return base
        return sample_name

    sample_re = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            families[name] = {"kind": kind, "help": families.get(name, {}).get("help", ""), "samples": []}
            continue
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            families.setdefault(name, {"kind": None, "samples": []})["help"] = help_text
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if match is None:
            raise ConfigurationError(f"unparseable exposition line: {line!r}")
        sample_name, labels, raw = match.groups()
        value = math.inf if raw == "+Inf" else float(raw)
        family = family_of(sample_name)
        families.setdefault(family, {"kind": None, "samples": []})["samples"].append(
            (sample_name, labels or "", value)
        )
    return families
