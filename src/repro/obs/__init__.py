"""Unified observability: metrics, span tracing, Prometheus exposition.

One instrumentation layer shared by every subsystem — the solver's memo
cache, the adaptive scheduler's epoch phases, the simulation engine, the
shifting planner, and the serving daemon all record into a process-wide
:class:`~repro.obs.metrics.MetricsRegistry`.  The daemon exposes the
registry through its ``metrics`` protocol verb in Prometheus text
format; tests and benches read it via :meth:`MetricsRegistry.snapshot`.

Design constraints, in order:

1. **Cheap.** Instrumentation sits on per-epoch and per-request hot
   paths; a counter increment is a lock + float add, a histogram
   observation a lock + bisect.  ``set_enabled(False)`` turns every
   mutation into a single global check, which is how
   :mod:`repro.obs.bench` measures the overhead (< 5% required).
2. **Deterministic outputs stay deterministic.** Nothing here feeds
   back into allocation decisions, checkpoints, or benchmark payloads —
   observability is strictly write-only from the control loop's view.
3. **Stdlib only.** No prometheus_client dependency; the exposition
   format is small enough to emit (and parse, for the smoke test) by
   hand.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    POWER_OF_TWO_BUCKETS,
    REGISTRY,
    get_registry,
    obs_enabled,
    parse_exposition,
    set_enabled,
)
from repro.obs.stats import percentile
from repro.obs.tracing import Span, Tracer, current_span, get_tracer, set_trace_sink, trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "POWER_OF_TWO_BUCKETS",
    "REGISTRY",
    "Span",
    "Tracer",
    "current_span",
    "get_registry",
    "get_tracer",
    "obs_enabled",
    "parse_exposition",
    "percentile",
    "set_enabled",
    "set_trace_sink",
    "trace",
]
