"""Figure-data regeneration pipeline.

Writes the data series behind every figure of the paper's evaluation as
plain CSV files, one per figure, so they can be plotted with any tool:

====================  =====================================================
file                  contents
====================  =====================================================
fig03_case_study.csv  PAR sweep: EPU and performance at each split
fig08_timeline.csv    24-h High-trace run: per-epoch series, GH vs Uniform
fig09_perf.csv        13 workloads x 5 policies, perf normalized to Uniform
fig10_epu.csv         same runs, EPU normalized to Uniform
fig11_timeline.csv    24-h Low-trace run
fig12_grid_budget.csv grid-budget sweep
fig13_combinations.csv  Table IV CPU combinations
fig14_gpu.csv         Comb6 GPU rack workloads
====================  =====================================================

The benches in ``benchmarks/`` assert the *shapes*; this module produces
the raw numbers.  ``quick=True`` shrinks runs for smoke tests.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.servers.platform import get_platform
from repro.servers.power_model import ResponseCurve
from repro.sim.experiment import COMBINATIONS, ExperimentConfig, run_experiment
from repro.workloads.catalog import FIG9_WORKLOADS

POLICIES = ("Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero")


def _write(path: Path, header: list[str], rows: list[list]) -> None:
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        writer.writerows(rows)


def fig03(out: Path) -> Path:
    a = ResponseCurve(get_platform("E5-2620"), "SPECjbb")
    b = ResponseCurve(get_platform("i5-4460"), "SPECjbb")
    rows = []
    for pct in range(0, 101, 5):
        par = pct / 100.0
        sa = a.perf_at_power(par * 220.0)
        sb = b.perf_at_power((1 - par) * 220.0)
        useful = sum(s.power_w for s in (sa, sb) if s.throughput > 0)
        rows.append([pct, useful / 220.0, sa.throughput + sb.throughput])
    path = out / "fig03_case_study.csv"
    _write(path, ["par_pct", "epu", "perf_jops"], rows)
    return path


def _timeline(out: Path, name: str, config: ExperimentConfig) -> Path:
    result = run_experiment(config)
    gh, uniform = result.log("GreenHetero"), result.log("Uniform")
    rows = []
    for r_gh, r_u in zip(gh, uniform):
        rows.append(
            [
                f"{r_gh.time_s:.0f}",
                r_gh.case.value,
                f"{r_gh.renewable_w:.1f}",
                f"{r_gh.budget_w:.1f}",
                f"{r_gh.throughput:.1f}",
                f"{r_u.throughput:.1f}",
                f"{r_gh.ratios[0]:.3f}",
                f"{r_gh.battery_soc_wh:.0f}",
                f"{r_gh.battery_to_load_w:.1f}",
                f"{r_gh.grid_to_load_w:.1f}",
                f"{r_gh.charge_w:.1f}",
            ]
        )
    path = out / name
    _write(
        path,
        [
            "time_s", "case", "renewable_w", "budget_w",
            "greenhetero_perf", "uniform_perf", "par",
            "battery_soc_wh", "battery_to_load_w", "grid_to_load_w", "charge_w",
        ],
        rows,
    )
    return path


def fig08(out: Path, quick: bool = False) -> Path:
    config = ExperimentConfig(
        days=0.25 if quick else 1.0, policies=("Uniform", "GreenHetero")
    )
    return _timeline(out, "fig08_timeline.csv", config)


def fig11(out: Path, quick: bool = False) -> Path:
    config = ExperimentConfig.fig11_low_trace(
        days=0.25 if quick else 1.0, policies=("Uniform", "GreenHetero")
    )
    return _timeline(out, "fig11_timeline.csv", config)


def fig09_fig10(out: Path, quick: bool = False) -> tuple[Path, Path]:
    workloads = FIG9_WORKLOADS[:3] if quick else FIG9_WORKLOADS
    policies = ("Uniform", "GreenHetero") if quick else POLICIES
    perf_rows, epu_rows = [], []
    for workload in workloads:
        result = run_experiment(
            ExperimentConfig.insufficient_supply(
                workload, days=0.25 if quick else 0.5, policies=policies
            )
        )
        perf_rows.append([workload] + [f"{result.gain(p):.4f}" for p in policies])
        epu_rows.append(
            [workload] + [f"{result.gain(p, 'epu'):.4f}" for p in policies]
        )
    perf_path = out / "fig09_perf.csv"
    epu_path = out / "fig10_epu.csv"
    _write(perf_path, ["workload"] + list(policies), perf_rows)
    _write(epu_path, ["workload"] + list(policies), epu_rows)
    return perf_path, epu_path


def fig12(out: Path, quick: bool = False) -> Path:
    budgets = (800.0, 1200.0) if quick else (600.0, 800.0, 1000.0, 1200.0, 1400.0)
    rows = []
    for budget in budgets:
        result = run_experiment(
            ExperimentConfig(
                days=0.25 if quick else 1.0,
                grid_budget_w=budget,
                policies=("Uniform", "GreenHetero"),
            )
        )
        rows.append(
            [
                f"{budget:.0f}",
                f"{result.log('Uniform').mean_throughput():.1f}",
                f"{result.log('GreenHetero').mean_throughput():.1f}",
            ]
        )
    path = out / "fig12_grid_budget.csv"
    _write(path, ["grid_budget_w", "uniform_perf", "greenhetero_perf"], rows)
    return path


def fig13(out: Path, quick: bool = False) -> Path:
    combos = ("Comb1", "Comb2") if quick else ("Comb1", "Comb2", "Comb3", "Comb4", "Comb5")
    rows = []
    for name in combos:
        result = run_experiment(
            ExperimentConfig.combination_sweep(
                name, "SPECjbb",
                days=0.25 if quick else 0.5,
                policies=("Uniform", "GreenHetero"),
            )
        )
        platforms = "+".join(p for p, _ in COMBINATIONS[name])
        rows.append([name, platforms, f"{result.gain('GreenHetero'):.4f}"])
    path = out / "fig13_combinations.csv"
    _write(path, ["combination", "platforms", "greenhetero_gain"], rows)
    return path


def fig14(out: Path, quick: bool = False) -> Path:
    workloads = ("Srad_v1", "Cfd") if quick else ("Streamcluster", "Srad_v1", "Particlefilter", "Cfd")
    rows = []
    for workload in workloads:
        result = run_experiment(
            ExperimentConfig.combination_sweep(
                "Comb6", workload,
                days=0.25 if quick else 0.5,
                policies=("Uniform", "GreenHetero"),
            )
        )
        rows.append([workload, f"{result.gain('GreenHetero'):.4f}"])
    path = out / "fig14_gpu.csv"
    _write(path, ["workload", "greenhetero_gain"], rows)
    return path


def generate_all(out_dir: str | Path, quick: bool = False) -> list[Path]:
    """Regenerate every figure's data into ``out_dir``; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = [fig03(out), fig08(out, quick), fig11(out, quick)]
    paths += list(fig09_fig10(out, quick))
    paths += [fig12(out, quick), fig13(out, quick), fig14(out, quick)]
    return paths
