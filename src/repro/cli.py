"""Command-line interface.

Five subcommands cover the workflows a user of the paper's system needs:

``repro run``
    Replay a full trace-driven experiment (the Fig. 8/11 methodology)
    for any rack, workload, weather and policy set; prints the policy
    comparison and, optionally, the sustainability rollup.

``repro sweep``
    The constrained-supply sweep (Fig. 9/10 methodology) across one or
    more workloads.

``repro case-study``
    The Section III-B fixed-budget PAR sweep for any two platforms.

``repro combos``
    The Table IV server-combination comparison (Fig. 13).

``repro trace``
    Synthesize a High/Low NREL-style irradiance trace to CSV.

``repro verify``
    Run the correctness harness (:mod:`repro.verify`): strict-audit
    reference simulations, the differential solver corpus, and the
    checkpoint round-trip fuzzer.

``repro serve``
    Run the control-plane daemon: rack controllers behind a streaming
    NDJSON-over-TCP allocation API, with checkpoint/restore.

``repro loadgen``
    Benchmark a running daemon (qps, p50/p99 latency, solver cache hit
    ratio) and write ``BENCH_serve.json``.

``repro shift``
    Run the renewable-aware temporal-shifting benchmark (deferrable
    jobs under the receding-horizon planner vs. a run-immediately
    baseline) and write ``BENCH_shift.json``.

Every command is deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.analysis.sustainability import sustainability_report
from repro.core.policies import POLICY_NAMES
from repro.errors import ReproError
from repro.servers.platform import get_platform
from repro.servers.power_model import ResponseCurve
from repro.sim.experiment import COMBINATIONS, ExperimentConfig
from repro.sim.runner import run_experiment, run_experiments
from repro.traces.nrel import Weather, synthesize_irradiance


def _weather(name: str) -> Weather:
    return Weather.HIGH if name.lower() == "high" else Weather.LOW


def _parse_platforms(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse ``"E5-2620:5,i5-4460:5"`` into rack groups."""
    groups = []
    for part in spec.split(","):
        name, _, count = part.partition(":")
        groups.append((name.strip(), int(count) if count else 5))
    return tuple(groups)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        platforms=_parse_platforms(args.platforms),
        workload=args.workload,
        weather=_weather(args.weather),
        days=args.days,
        grid_budget_w=args.grid_budget,
        policies=tuple(args.policies),
        seed=args.seed,
        faults=tuple(args.fault),
        strict=args.strict,
    )
    result = run_experiment(config, jobs=args.jobs)
    baseline = "Uniform" if "Uniform" in config.policies else config.policies[0]
    rows = []
    for name in config.policies:
        summary = result.summary(name)
        rows.append(
            [
                name,
                f"{summary.mean_throughput:,.0f}",
                f"{result.gain(name, baseline=baseline):.2f}x",
                f"{result.gain(name, 'epu', baseline=baseline):.2f}x",
                f"{summary.mean_par:.0%}",
                f"{summary.grid_energy_wh / 1000:.2f}",
            ]
        )
    print(
        format_table(
            ["policy", "mean perf", "gain", "EPU gain", "PAR", "grid kWh"],
            rows,
            title=f"{args.workload} x {args.days:g} day(s), {args.weather} trace",
        )
    )
    if args.sustainability:
        print()
        for name in config.policies:
            report = sustainability_report(result.log(name), config.epoch_s)
            print(
                f"{name}: {report.renewable_fraction:.0%} renewable, "
                f"{report.co2_kg:.2f} kg CO2, ${report.grid_cost_usd:.2f} grid cost"
            )
    if args.export:
        result.log(config.policies[-1]).to_csv(args.export)
        print(f"\nwrote {config.policies[-1]} telemetry to {args.export}")
    if args.report:
        from repro.analysis.report import save_experiment_report

        save_experiment_report(result, args.report)
        print(f"wrote markdown report to {args.report}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    configs = [
        ExperimentConfig.insufficient_supply(
            workload,
            platforms=_parse_platforms(args.platforms),
            policies=tuple(args.policies),
            seed=args.seed,
            faults=tuple(args.fault),
            strict=args.strict,
        )
        for workload in args.workloads
    ]
    # One batch: every (workload, policy) pair fans out together.
    results = run_experiments(configs, jobs=args.jobs)
    rows = []
    for workload, config, result in zip(args.workloads, configs, results):
        baseline = "Uniform" if "Uniform" in config.policies else config.policies[0]
        rows.append(
            [workload]
            + [
                f"{result.gain(name, baseline=baseline):.2f}x"
                for name in config.policies
            ]
        )
    print(
        format_table(
            ["workload"] + list(args.policies),
            rows,
            title="constrained-supply sweep: gains vs Uniform",
        )
    )
    return 0


def cmd_case_study(args: argparse.Namespace) -> int:
    a = ResponseCurve(get_platform(args.server_a), args.workload)
    b = ResponseCurve(get_platform(args.server_b), args.workload)
    budget = args.budget
    rows = []
    best = (0, 0.0)
    for pct in range(0, 101, args.step):
        par = pct / 100.0
        sa = a.perf_at_power(par * budget)
        sb = b.perf_at_power((1 - par) * budget)
        useful = sum(s.power_w for s in (sa, sb) if s.throughput > 0)
        perf = sa.throughput + sb.throughput
        if perf > best[1]:
            best = (pct, perf)
        rows.append([f"{pct}%", f"{useful / budget:.2f}", f"{perf:,.0f}"])
    print(
        format_table(
            ["PAR", "EPU", "perf"],
            rows,
            title=(
                f"{args.budget:.0f} W split between {a.spec.name} (A) and "
                f"{b.spec.name} (B), {args.workload}"
            ),
        )
    )
    print(f"\noptimal PAR: {best[0]}% to {a.spec.name}")
    return 0


def cmd_combos(args: argparse.Namespace) -> int:
    configs = [
        ExperimentConfig.combination_sweep(
            name, args.workload, policies=("Uniform", "GreenHetero"), seed=args.seed
        )
        for name in args.names
    ]
    results = run_experiments(configs, jobs=args.jobs)
    rows = []
    for name, result in zip(args.names, results):
        platforms = "+".join(p for p, _ in COMBINATIONS[name])
        rows.append([name, platforms, f"{result.gain('GreenHetero'):.2f}x"])
    print(
        format_table(
            ["combination", "platforms", "GreenHetero gain"],
            rows,
            title=f"Table IV combinations, {args.workload}",
        )
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import generate_all

    paths = generate_all(args.out, quick=args.quick)
    for path in paths:
        print(f"wrote {path}")
    print(f"\n{len(paths)} figure datasets regenerated into {args.out}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Quick self-check that the substrate still matches the paper anchors."""
    checks: list[tuple[str, bool, str]] = []

    # Fig. 3 anchors: optimum PAR and the EPU corners.
    a = ResponseCurve(get_platform("E5-2620"), "SPECjbb")
    b = ResponseCurve(get_platform("i5-4460"), "SPECjbb")
    best_par, best_perf = 0, 0.0
    epus = {}
    for pct in range(0, 101, 5):
        par = pct / 100.0
        sa = a.perf_at_power(par * 220.0)
        sb = b.perf_at_power((1 - par) * 220.0)
        perf = sa.throughput + sb.throughput
        epus[pct] = sum(s.power_w for s in (sa, sb) if s.throughput > 0) / 220.0
        if perf > best_perf:
            best_par, best_perf = pct, perf
    checks.append(
        ("case-study optimum PAR ~65%", 60 <= best_par <= 70, f"{best_par}%")
    )
    checks.append(
        ("case-study uniform EPU ~86%", abs(epus[50] - 0.86) < 0.05, f"{epus[50]:.0%}")
    )
    checks.append(
        ("case-study one-server EPU ~37%", abs(epus[0] - 0.37) < 0.05, f"{epus[0]:.0%}")
    )

    # A fast dynamic run: GreenHetero beats Uniform under scarcity.
    result = run_experiment(
        ExperimentConfig(days=0.5, policies=("Uniform", "GreenHetero"), seed=args.seed)
    )
    gain = result.gain("GreenHetero")
    checks.append(("24h-run gain in Cases B/C > 1.1x", gain > 1.1, f"{gain:.2f}x"))

    # Workload ordering: Streamcluster >> Memcached.
    gains = {}
    for workload in ("Streamcluster", "Memcached"):
        sweep = run_experiment(
            ExperimentConfig.insufficient_supply(
                workload, policies=("Uniform", "GreenHetero"), seed=args.seed
            )
        )
        gains[workload] = sweep.gain("GreenHetero")
    checks.append(
        (
            "Streamcluster gain > Memcached gain",
            gains["Streamcluster"] > gains["Memcached"],
            f"{gains['Streamcluster']:.2f}x vs {gains['Memcached']:.2f}x",
        )
    )

    # Heterogeneity ordering across server combinations (Fig. 13).
    comb_gains = {}
    for comb in ("Comb1", "Comb4"):
        res = run_experiment(
            ExperimentConfig.combination_sweep(
                comb, days=0.25, policies=("Uniform", "GreenHetero"), seed=args.seed
            )
        )
        comb_gains[comb] = res.gain("GreenHetero")
    checks.append(
        (
            "homogeneous-like Comb4 ~1.0x, heterogeneous Comb1 gains",
            abs(comb_gains["Comb4"] - 1.0) < 0.15 and comb_gains["Comb1"] > 1.2,
            f"Comb4 {comb_gains['Comb4']:.2f}x, Comb1 {comb_gains['Comb1']:.2f}x",
        )
    )

    # GPU rack ordering (Fig. 14).
    gpu_gains = {}
    for workload in ("Srad_v1", "Cfd"):
        res = run_experiment(
            ExperimentConfig.combination_sweep(
                "Comb6", workload, days=0.25,
                policies=("Uniform", "GreenHetero"), seed=args.seed,
            )
        )
        gpu_gains[workload] = res.gain("GreenHetero")
    checks.append(
        (
            "GPU rack: Srad_v1 gain > Cfd gain",
            gpu_gains["Srad_v1"] > gpu_gains["Cfd"],
            f"{gpu_gains['Srad_v1']:.2f}x vs {gpu_gains['Cfd']:.2f}x",
        )
    )

    failed = 0
    for label, ok, detail in checks:
        status = "PASS" if ok else "FAIL"
        if not ok:
            failed += 1
        print(f"[{status}] {label}: {detail}")
    print(f"\n{len(checks) - failed}/{len(checks)} anchors hold")
    return 0 if failed == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import AllocationDaemon, ServeConfig, ServeState

    config = ServeConfig(
        platforms=_parse_platforms(args.platforms),
        workload=args.workload,
        policy=args.policy,
        n_racks=args.racks,
        weather=_weather(args.weather),
        seed=args.seed,
        shared_grid_w=args.shared_grid,
        shift_horizon=args.shift_horizon,
    )
    if args.trace_log is not None:
        from repro.obs import set_trace_sink

        set_trace_sink(args.trace_log)
    state = ServeState.build(config, checkpoint_dir=args.checkpoint)
    daemon = AllocationDaemon(
        state,
        host=args.host,
        port=args.port,
        audit_log=args.audit_log,
        metrics_interval_s=args.metrics_interval,
    )

    async def serve() -> None:
        await daemon.start()
        restored = " (restored from checkpoint)" if state.restored else ""
        # Flushed readiness line: supervisors (and the CI smoke test)
        # wait for it before pointing the load generator here.
        print(
            f"serving {len(state.racks)} rack(s) on "
            f"{daemon.host}:{daemon.port}{restored}",
            flush=True,
        )
        await daemon.run_until_stopped()

    asyncio.run(serve())
    print("daemon stopped", flush=True)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import format_summary, run_loadgen

    result = run_loadgen(
        host=args.host,
        port=args.port,
        connections=args.connections,
        requests=args.requests,
        rack=args.rack,
        seed=args.seed,
        out=args.out,
    )
    print(format_summary(result))
    if args.out:
        print(f"\nwrote benchmark record to {args.out}")
    return 0


def cmd_shift(args: argparse.Namespace) -> int:
    from repro.shift.bench import format_shift_summary, run_shift_bench

    payload = run_shift_bench(
        days=args.days,
        seed=args.seed,
        horizon=args.horizon,
        n_jobs=args.jobs,
        weather=_weather(args.weather),
        faults=tuple(args.fault),
        out=args.out,
    )
    print(format_shift_summary(payload))
    if args.out:
        print(f"\nwrote benchmark record to {args.out}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    # Lazy: reference reaches into the engine, which imports repro.verify.
    from repro.verify import fuzz_round_trips, run_differential, run_strict_reference

    ok = True

    results = run_strict_reference(n_epochs=args.epochs, seed=args.seed)
    for result in results:
        print(result.summary())
        ok = ok and result.passed

    diff = run_differential(n_cases=args.cases, seed=args.seed)
    print(diff.summary())
    ok = ok and diff.passed

    fuzz = fuzz_round_trips(n_cases=args.fuzz_cases, seed=args.seed)
    print(fuzz.summary())
    ok = ok and fuzz.passed

    print("verify: PASS" if ok else "verify: FAIL")
    return 0 if ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    trace = synthesize_irradiance(
        days=args.days, weather=_weather(args.weather), seed=args.seed
    )
    trace.save_csv(args.out)
    print(
        f"wrote {len(trace.times_s)} samples ({args.days:g} days, "
        f"{args.weather} weather) to {args.out}"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GreenHetero: adaptive power allocation for heterogeneous green datacenters",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    all_policies = list(POLICY_NAMES) + ["OnOff", "GreenHetero+"]

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=2021)
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the policy fan-out (1 = serial, "
            "0 or negative is rejected); results are identical at any value",
        )
        p.add_argument(
            "--platforms",
            default="E5-2620:5,i5-4460:5",
            help="rack groups, e.g. 'E5-2620:5,i5-4460:5'",
        )
        p.add_argument(
            "--policies", nargs="+", default=list(POLICY_NAMES),
            choices=all_policies,
            help="Table III policies plus the OnOff and GreenHetero+ extensions",
        )
        p.add_argument(
            "--fault", action="append", default=[], metavar="SPEC",
            help="inject a supply fault, e.g. 'renewable:0.0:28800:36000' "
            "(kind:scale:start_s:end_s); repeatable",
        )
        p.add_argument(
            "--strict", action="store_true",
            help="audit every epoch's physics invariants and abort on "
            "the first violation (see `repro verify`)",
        )

    run_p = sub.add_parser("run", help="trace-driven experiment (Fig. 8/11 methodology)")
    common(run_p)
    run_p.add_argument("--workload", default="SPECjbb")
    run_p.add_argument("--weather", choices=("high", "low"), default="high")
    run_p.add_argument("--days", type=float, default=1.0)
    run_p.add_argument("--grid-budget", type=float, default=1000.0)
    run_p.add_argument(
        "--sustainability", action="store_true",
        help="append the carbon/cost rollup per policy",
    )
    run_p.add_argument(
        "--export", metavar="FILE",
        help="write the last policy's epoch telemetry as CSV",
    )
    run_p.add_argument(
        "--report", metavar="FILE",
        help="write a markdown experiment report",
    )
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="constrained-supply sweep (Fig. 9/10 methodology)")
    common(sweep_p)
    sweep_p.add_argument("--workloads", nargs="+", default=["SPECjbb"])
    sweep_p.set_defaults(func=cmd_sweep)

    case_p = sub.add_parser("case-study", help="fixed-budget PAR sweep (Fig. 3)")
    case_p.add_argument("--server-a", default="E5-2620")
    case_p.add_argument("--server-b", default="i5-4460")
    case_p.add_argument("--workload", default="SPECjbb")
    case_p.add_argument("--budget", type=float, default=220.0)
    case_p.add_argument("--step", type=int, default=5)
    case_p.set_defaults(func=cmd_case_study)

    combos_p = sub.add_parser("combos", help="Table IV server combinations (Fig. 13)")
    combos_p.add_argument("--names", nargs="+", default=[f"Comb{i}" for i in range(1, 6)])
    combos_p.add_argument("--workload", default="SPECjbb")
    combos_p.add_argument("--seed", type=int, default=2021)
    combos_p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the combination fan-out (1 = serial)",
    )
    combos_p.set_defaults(func=cmd_combos)

    figures_p = sub.add_parser(
        "figures", help="regenerate every figure's data series as CSV"
    )
    figures_p.add_argument("--out", required=True, help="output directory")
    figures_p.add_argument(
        "--quick", action="store_true", help="shrunken runs for smoke testing"
    )
    figures_p.set_defaults(func=cmd_figures)

    validate_p = sub.add_parser(
        "validate", help="self-check the substrate against the paper anchors"
    )
    validate_p.add_argument("--seed", type=int, default=2021)
    validate_p.set_defaults(func=cmd_validate)

    serve_p = sub.add_parser(
        "serve", help="run the control-plane allocation daemon"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7313,
                         help="listening port (0 lets the OS pick)")
    serve_p.add_argument(
        "--platforms",
        default="E5-2620:5,i5-4460:5",
        help="rack groups, e.g. 'E5-2620:5,i5-4460:5'",
    )
    serve_p.add_argument("--workload", default="SPECjbb")
    serve_p.add_argument(
        "--policy", default="GreenHetero", choices=all_policies,
    )
    serve_p.add_argument("--racks", type=int, default=1,
                         help="identical racks to host (seeded seed+i)")
    serve_p.add_argument("--weather", choices=("high", "low"), default="high")
    serve_p.add_argument("--seed", type=int, default=2021)
    serve_p.add_argument(
        "--checkpoint", metavar="DIR",
        help="checkpoint directory; restored on boot when it holds a "
        "manifest, written on SIGTERM/shutdown",
    )
    serve_p.add_argument(
        "--audit-log", metavar="FILE",
        help="append a JSONL event stream (epochs, checkpoints) here",
    )
    serve_p.add_argument(
        "--metrics-interval", type=float, default=None, metavar="SECONDS",
        help="dump a metrics snapshot into the audit log every SECONDS "
        "(requires --audit-log); the 'metrics' verb serves scrapes either way",
    )
    serve_p.add_argument(
        "--trace-log", metavar="FILE",
        help="append finished observability spans as JSONL here",
    )
    serve_p.add_argument(
        "--shared-grid-w", dest="shared_grid", type=float, default=None,
        help="coordinate racks against this shared grid budget",
    )
    serve_p.add_argument(
        "--shift-horizon", type=int, default=8,
        help="lookahead window (epochs) of each rack's shifting planner",
    )
    serve_p.set_defaults(func=cmd_serve)

    loadgen_p = sub.add_parser(
        "loadgen", help="benchmark a running daemon (writes BENCH_serve.json)"
    )
    loadgen_p.add_argument("--host", default="127.0.0.1")
    loadgen_p.add_argument("--port", type=int, default=7313)
    loadgen_p.add_argument("--connections", type=int, default=4)
    loadgen_p.add_argument("--requests", type=int, default=200)
    loadgen_p.add_argument("--rack", default=None,
                           help="target rack (default: the daemon's first)")
    loadgen_p.add_argument("--seed", type=int, default=0)
    loadgen_p.add_argument("--out", metavar="FILE",
                           help="write the benchmark record as JSON")
    loadgen_p.set_defaults(func=cmd_loadgen)

    shift_p = sub.add_parser(
        "shift",
        help="temporal-shifting benchmark: planner vs run-immediately "
        "baseline (writes BENCH_shift.json)",
    )
    shift_p.add_argument("--days", type=float, default=1.0)
    shift_p.add_argument("--seed", type=int, default=2021)
    shift_p.add_argument(
        "--horizon", type=int, default=8,
        help="planner lookahead window in epochs",
    )
    shift_p.add_argument(
        "--jobs", type=int, default=6,
        help="deferrable jobs submitted over the run",
    )
    shift_p.add_argument("--weather", choices=("high", "low"), default="high")
    shift_p.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="inject a supply fault into both arms, e.g. "
        "'renewable:0.0:28800:36000'; repeatable",
    )
    shift_p.add_argument("--out", metavar="FILE",
                         help="write the benchmark record as JSON")
    shift_p.set_defaults(func=cmd_shift)

    verify_p = sub.add_parser(
        "verify",
        help="run the correctness harness: strict-audit reference sims, "
        "the differential solver corpus, and checkpoint round-trip fuzzing",
    )
    verify_p.add_argument(
        "--cases", type=int, default=200,
        help="randomized solver programs in the differential corpus",
    )
    verify_p.add_argument(
        "--fuzz-cases", type=int, default=50,
        help="iterations of the checkpoint round-trip fuzzer",
    )
    verify_p.add_argument(
        "--epochs", type=int, default=16,
        help="length of each strict-audit reference simulation",
    )
    verify_p.add_argument("--seed", type=int, default=0)
    verify_p.set_defaults(func=cmd_verify)

    trace_p = sub.add_parser("trace", help="synthesize an irradiance trace to CSV")
    trace_p.add_argument("--weather", choices=("high", "low"), default="high")
    trace_p.add_argument("--days", type=float, default=7.0)
    trace_p.add_argument("--seed", type=int, default=2021)
    trace_p.add_argument("--out", required=True)
    trace_p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
