"""Input traces: synthetic NREL-style irradiance and diurnal rack load.

The paper drives its prototype with one-week solar irradiance traces from
NREL's Measurement and Instrumentation Data Center (15-minute sampling)
and a "typical datacenter server rack power pattern" from the SIGMETRICS
2012 energy-storage study [13].  Neither dataset ships with this
reproduction, so this subpackage synthesises statistically equivalent
traces: a clear-sky solar model with seeded stochastic cloud attenuation
(High and Low weather regimes), and a two-peak diurnal load curve.
Real CSV traces can be loaded through the same interfaces.
"""

from repro.traces.datacenter_load import DiurnalLoadPattern
from repro.traces.nrel import (
    IrradianceTrace,
    Weather,
    load_irradiance_csv,
    synthesize_irradiance,
)

__all__ = [
    "DiurnalLoadPattern",
    "IrradianceTrace",
    "Weather",
    "load_irradiance_csv",
    "synthesize_irradiance",
]
