"""Synthetic NREL-MIDC-style solar irradiance traces.

The paper replays two one-week NREL irradiance traces sampled every
15 minutes: a *High* trace (mostly clear skies, high generation) and a
*Low* trace (cloudy, strongly fluctuating generation) — Section V-A.2.
Without network access to the MIDC archive we synthesise equivalent
traces from first principles:

* **Clear-sky envelope** — global horizontal irradiance follows
  ``GHI_clear(t) = GHI_peak * max(0, sin(pi * (t - sunrise)/daylight))^1.3``
  which closely matches the mid-latitude summer clear-sky shape (the 1.3
  exponent accounts for air-mass losses near the horizon).
* **Cloud attenuation** — a mean-reverting AR(1) process on the
  clearness index, plus Poisson-arriving deep cloud events whose depth
  and duration depend on the weather regime.  *High* weather keeps the
  clearness index near 0.95 with rare shallow events; *Low* weather
  centres it near 0.55 with frequent deep events, reproducing the "more
  fluctuated" supply the paper observes in Fig. 11.

Everything is deterministic for a given seed.  Real MIDC CSV exports can
be loaded with :func:`load_irradiance_csv` and used interchangeably.
"""

from __future__ import annotations

import csv
import enum
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, minutes

#: Peak clear-sky global horizontal irradiance (W/m^2).
GHI_PEAK = 1000.0

#: Local solar day: sunrise and sunset hours.
SUNRISE_HOUR = 6.0
SUNSET_HOUR = 18.0

#: Native sampling interval of MIDC exports the paper uses.
SAMPLE_INTERVAL_S = int(minutes(15))


class Weather(enum.Enum):
    """Weather regime selecting the cloud-attenuation statistics."""

    HIGH = "high"  # the paper's High solar trace: clear, strong generation
    LOW = "low"    # the paper's Low solar trace: cloudy, fluctuating


@dataclass(frozen=True)
class _CloudParams:
    mean_clearness: float      # long-run mean of the clearness index
    reversion: float           # AR(1) mean-reversion rate per sample
    sigma: float               # innovation std-dev per sample
    event_rate_per_day: float  # Poisson rate of deep cloud events
    event_depth: tuple[float, float]     # uniform range of attenuation depth
    event_duration_s: tuple[float, float]  # uniform range of durations


_CLOUDS: dict[Weather, _CloudParams] = {
    Weather.HIGH: _CloudParams(
        mean_clearness=0.95,
        reversion=0.30,
        sigma=0.02,
        event_rate_per_day=2.0,
        event_depth=(0.15, 0.40),
        event_duration_s=(minutes(15), minutes(60)),
    ),
    Weather.LOW: _CloudParams(
        mean_clearness=0.55,
        reversion=0.15,
        sigma=0.08,
        event_rate_per_day=10.0,
        event_depth=(0.40, 0.90),
        event_duration_s=(minutes(30), minutes(150)),
    ),
}


class IrradianceTrace:
    """A regularly sampled irradiance time series.

    Parameters
    ----------
    times_s:
        Sample timestamps in seconds from trace start, strictly
        increasing and regularly spaced.
    values_w_m2:
        Irradiance at each timestamp (W/m^2), non-negative.
    name:
        Label used in reports (e.g. ``"high"``).
    """

    def __init__(self, times_s: np.ndarray, values_w_m2: np.ndarray, name: str = "trace") -> None:
        times = np.asarray(times_s, dtype=float)
        values = np.asarray(values_w_m2, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise TraceError("times and values must be 1-D arrays of equal length")
        if len(times) < 2:
            raise TraceError("a trace needs at least two samples")
        steps = np.diff(times)
        if not np.all(steps > 0):
            raise TraceError("trace timestamps must be strictly increasing")
        if not np.allclose(steps, steps[0]):
            raise TraceError("trace must be regularly sampled")
        if np.any(values < 0):
            raise TraceError("irradiance must be non-negative")
        self.times_s = times
        self.values_w_m2 = values
        self.name = name

    @property
    def interval_s(self) -> float:
        """Sampling interval (s)."""
        return float(self.times_s[1] - self.times_s[0])

    @property
    def duration_s(self) -> float:
        """Total covered duration (s)."""
        return float(self.times_s[-1] - self.times_s[0] + self.interval_s)

    @property
    def peak_w_m2(self) -> float:
        return float(self.values_w_m2.max())

    def at(self, time_s: float) -> float:
        """Irradiance at ``time_s`` (zero-order hold; wraps past the end).

        Wrapping lets a one-week trace drive an arbitrarily long run, the
        same way the paper replays its traces.
        """
        wrapped = (time_s - self.times_s[0]) % self.duration_s + self.times_s[0]
        idx = int((wrapped - self.times_s[0]) // self.interval_s)
        idx = min(idx, len(self.values_w_m2) - 1)
        return float(self.values_w_m2[idx])

    def mean_w_m2(self) -> float:
        return float(self.values_w_m2.mean())

    def window(self, start_s: float, end_s: float) -> "IrradianceTrace":
        """Sub-trace covering ``[start_s, end_s)``."""
        mask = (self.times_s >= start_s) & (self.times_s < end_s)
        if mask.sum() < 2:
            raise TraceError("window selects fewer than two samples")
        return IrradianceTrace(self.times_s[mask], self.values_w_m2[mask], self.name)

    def save_csv(self, path: str | Path) -> None:
        """Write the trace as a two-column ``time_s,ghi_w_m2`` CSV."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["time_s", "ghi_w_m2"])
            for t, v in zip(self.times_s, self.values_w_m2):
                writer.writerow([f"{t:.0f}", f"{v:.3f}"])


def clear_sky_irradiance(time_s: float) -> float:
    """Clear-sky GHI at local time ``time_s`` (W/m^2)."""
    hour = (time_s % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    if hour <= SUNRISE_HOUR or hour >= SUNSET_HOUR:
        return 0.0
    daylight = SUNSET_HOUR - SUNRISE_HOUR
    elevation = math.sin(math.pi * (hour - SUNRISE_HOUR) / daylight)
    return GHI_PEAK * elevation**1.3


def synthesize_irradiance(
    days: float = 7.0,
    weather: Weather = Weather.HIGH,
    seed: int = 2021,
    interval_s: int = SAMPLE_INTERVAL_S,
) -> IrradianceTrace:
    """Generate a synthetic NREL-style irradiance trace.

    Parameters
    ----------
    days:
        Trace length in days (the paper uses one week).
    weather:
        :class:`Weather.HIGH` or :class:`Weather.LOW` regime.
    seed:
        RNG seed; identical inputs give identical traces.
    interval_s:
        Sampling interval (default 15 minutes, like MIDC).

    Returns
    -------
    IrradianceTrace
    """
    if days <= 0:
        raise TraceError("days must be positive")
    params = _CLOUDS[weather]
    rng = np.random.default_rng(seed)
    n = int(days * SECONDS_PER_DAY // interval_s)
    times = np.arange(n, dtype=float) * interval_s

    # AR(1) clearness index, clamped to [0.05, 1].
    clearness = np.empty(n)
    x = params.mean_clearness
    for i in range(n):
        x += params.reversion * (params.mean_clearness - x)
        x += params.sigma * rng.standard_normal()
        x = min(max(x, 0.05), 1.0)
        clearness[i] = x

    # Poisson deep-cloud events multiply clearness down for their duration.
    expected_events = params.event_rate_per_day * days
    n_events = rng.poisson(expected_events)
    for _ in range(n_events):
        start = rng.uniform(0.0, days * SECONDS_PER_DAY)
        duration = rng.uniform(*params.event_duration_s)
        depth = rng.uniform(*params.event_depth)
        lo = int(start // interval_s)
        hi = int((start + duration) // interval_s) + 1
        clearness[lo:hi] *= 1.0 - depth

    values = np.array([clear_sky_irradiance(t) for t in times]) * clearness
    return IrradianceTrace(times, values, name=weather.value)


def load_midc_csv(
    path: str | Path,
    ghi_column: str = "Global Horizontal [W/m^2]",
    name: str | None = None,
) -> IrradianceTrace:
    """Load a real NREL MIDC export (the paper's actual data source).

    MIDC's daily CSV exports carry ``DATE (MM/DD/YYYY)`` and
    ``MST``/``HH:MM`` time columns plus one column per instrument; this
    reads the global-horizontal-irradiance column and converts the
    timestamps to seconds from the first sample.  Negative night-time
    sensor readings (a known MIDC artefact) are clamped to zero.

    Parameters
    ----------
    path:
        The CSV export.
    ghi_column:
        Column holding GHI; instruments differ per station, so pass the
        exact header from your export.
    name:
        Trace label; defaults to the file stem.

    Raises
    ------
    TraceError
        On missing columns, unparseable rows, or irregular sampling.
    """
    times: list[float] = []
    values: list[float] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None:
            raise TraceError(f"{path}: empty file")
        date_col = next(
            (c for c in reader.fieldnames if c.upper().startswith("DATE")), None
        )
        time_col = next(
            (c for c in reader.fieldnames if c in ("MST", "LST", "HH:MM", "Time")),
            None,
        )
        if date_col is None or time_col is None or ghi_column not in reader.fieldnames:
            raise TraceError(
                f"{path}: expected a DATE column, a time column (MST/LST/HH:MM) "
                f"and {ghi_column!r}; found {reader.fieldnames}"
            )
        import datetime as _dt

        first: _dt.datetime | None = None
        for row in reader:
            try:
                month, day, year = (int(x) for x in row[date_col].split("/"))
                hour, minute = (int(x) for x in row[time_col].split(":"))
                stamp = _dt.datetime(year, month, day, hour, minute)
                ghi = max(0.0, float(row[ghi_column]))
            except (TypeError, ValueError, KeyError) as exc:
                raise TraceError(f"{path}: bad row {row!r}") from exc
            if first is None:
                first = stamp
            times.append((stamp - first).total_seconds())
            values.append(ghi)
    return IrradianceTrace(
        np.array(times), np.array(values), name=name or Path(path).stem
    )


def load_irradiance_csv(path: str | Path, name: str | None = None) -> IrradianceTrace:
    """Load a two-column ``time_s,ghi_w_m2`` CSV (as written by ``save_csv``).

    Raises
    ------
    TraceError
        On missing columns or unparseable rows.
    """
    times: list[float] = []
    values: list[float] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames is None or not {"time_s", "ghi_w_m2"} <= set(reader.fieldnames):
            raise TraceError(f"{path}: expected columns time_s, ghi_w_m2")
        for row in reader:
            try:
                times.append(float(row["time_s"]))
                values.append(float(row["ghi_w_m2"]))
            except (TypeError, ValueError) as exc:
                raise TraceError(f"{path}: bad row {row!r}") from exc
    return IrradianceTrace(
        np.array(times), np.array(values), name=name or Path(path).stem
    )
