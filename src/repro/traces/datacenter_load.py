"""The "typical datacenter server rack power pattern" (paper Fig. 6, [13]).

Interactive datacenter demand follows a well-documented diurnal shape: a
morning ramp, a broad daytime plateau, an evening peak, and a deep
overnight trough.  The SIGMETRICS 2012 energy-storage study the paper
cites ([13]) reports rack utilisation swinging between roughly 55% and
100% of peak over a day.  :class:`DiurnalLoadPattern` reproduces that
shape as a smooth, deterministic function of time-of-day built from two
Gaussian bumps over a base level, normalised so the daily maximum is
exactly 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TraceError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class DiurnalLoadPattern:
    """Normalised diurnal load: ``at(t)`` in ``[trough, 1]``.

    Attributes
    ----------
    trough:
        Overnight minimum as a fraction of peak (default 0.55, per [13]).
    morning_peak_hour / evening_peak_hour:
        Centres of the two activity bumps.
    morning_width_h / evening_width_h:
        Gaussian widths of the bumps, in hours.
    evening_weight:
        Relative height of the evening bump vs the morning one (> 1 makes
        the evening the daily maximum, as in the paper's figure).
    weekend_scale:
        Multiplier applied on days 5 and 6 of each simulated week
        (Saturday/Sunday with day 0 = Monday); production interactive
        traffic drops at weekends.  1.0 (default) disables the weekly
        structure, matching the paper's single-day pattern.
    """

    trough: float = 0.55
    morning_peak_hour: float = 10.0
    evening_peak_hour: float = 20.0
    morning_width_h: float = 3.0
    evening_width_h: float = 2.5
    evening_weight: float = 1.15
    weekend_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trough < 1.0:
            raise TraceError(f"trough must be in [0, 1), got {self.trough}")
        if self.morning_width_h <= 0 or self.evening_width_h <= 0:
            raise TraceError("bump widths must be positive")
        if self.evening_weight <= 0:
            raise TraceError("evening weight must be positive")
        if not 0.0 < self.weekend_scale <= 1.0:
            raise TraceError("weekend scale must be in (0, 1]")

    def _raw(self, hour: float) -> float:
        """Un-normalised bump mixture at ``hour`` (cyclic distance)."""

        def bump(center: float, width: float) -> float:
            # Cyclic hour distance so the curve is continuous at midnight.
            d = min(abs(hour - center), 24.0 - abs(hour - center))
            return math.exp(-0.5 * (d / width) ** 2)

        return bump(self.morning_peak_hour, self.morning_width_h) + (
            self.evening_weight * bump(self.evening_peak_hour, self.evening_width_h)
        )

    def _peak_raw(self) -> float:
        # The maximum of the mixture occurs at (or extremely near) the
        # taller bump's centre; sample finely once to be exact.
        return max(self._raw(h / 10.0) for h in range(0, 240))

    def at(self, time_s: float) -> float:
        """Load fraction at simulation time ``time_s`` (wraps weekly)."""
        hour = (time_s % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        raw = self._raw(hour)
        value = self.trough + (1.0 - self.trough) * raw / self._peak_raw()
        day_of_week = int(time_s // SECONDS_PER_DAY) % 7
        if day_of_week >= 5:
            value *= self.weekend_scale
        return value

    def __call__(self, time_s: float) -> float:
        return self.at(time_s)

    def daily_peak_hour(self) -> float:
        """Hour of day at which the pattern attains its maximum."""
        best_h, best_v = 0.0, -1.0
        for tenth in range(0, 240):
            h = tenth / 10.0
            v = self.at(h * SECONDS_PER_HOUR)
            if v > best_v:
                best_h, best_v = h, v
        return best_h
