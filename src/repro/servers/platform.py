"""Server platform specifications (paper Table II) and the platform registry.

Each :class:`ServerSpec` captures the electrical and microarchitectural
envelope of one server configuration: nominal frequency, socket/core
counts, and measured peak/idle wall power.  The six entries below are the
exact rows of Table II in the paper.

The module also carries the Fig. 1 motivation data: the number of distinct
server configurations found in ten Google datacenters (2 to 5 per
datacenter, with 80% of datacenters running two or three configurations —
Section IV-B.3 cites this share when bounding the solver at three types).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownPlatformError


class DeviceClass(enum.Enum):
    """Coarse device family; constrains which workloads a platform can run."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class ServerSpec:
    """Static description of one server configuration (one Table II row).

    Attributes
    ----------
    name:
        Registry key, e.g. ``"E5-2620"``.
    device_class:
        :class:`DeviceClass.CPU` or :class:`DeviceClass.GPU`.
    base_frequency_hz:
        Nominal frequency of the part (Hz).
    sockets:
        Number of populated sockets (1 for the GPU card).
    cores:
        Total hardware cores (CUDA cores for the GPU).
    peak_power_w:
        Measured wall-power ceiling of the server (W).
    idle_power_w:
        Measured wall power when idle (W).  Allocating less than this to a
        powered-on server yields zero throughput (Section IV-B.3).
    min_frequency_hz:
        Lowest DVFS operating point.  Defaults to 40% of base frequency,
        matching commodity cpufreq ladders.
    dvfs_levels:
        Number of discrete frequency steps exposed by the platform.
    """

    name: str
    device_class: DeviceClass
    base_frequency_hz: float
    sockets: int
    cores: int
    peak_power_w: float
    idle_power_w: float
    min_frequency_hz: float = 0.0
    dvfs_levels: int = 10

    def __post_init__(self) -> None:
        if self.peak_power_w <= self.idle_power_w:
            raise ConfigurationError(
                f"{self.name}: peak power ({self.peak_power_w} W) must exceed "
                f"idle power ({self.idle_power_w} W)"
            )
        if self.idle_power_w < 0:
            raise ConfigurationError(f"{self.name}: idle power must be non-negative")
        if self.sockets < 1 or self.cores < 1:
            raise ConfigurationError(f"{self.name}: sockets and cores must be >= 1")
        if self.dvfs_levels < 2:
            raise ConfigurationError(f"{self.name}: need at least 2 DVFS levels")
        if self.min_frequency_hz <= 0:
            # Frozen dataclass: use object.__setattr__ for the derived default.
            object.__setattr__(self, "min_frequency_hz", 0.4 * self.base_frequency_hz)
        if self.min_frequency_hz >= self.base_frequency_hz:
            raise ConfigurationError(
                f"{self.name}: min frequency must be below base frequency"
            )

    @property
    def dynamic_range_w(self) -> float:
        """Peak-minus-idle power: the controllable dynamic envelope (W)."""
        return self.peak_power_w - self.idle_power_w

    @property
    def is_gpu(self) -> bool:
        """True for accelerator platforms."""
        return self.device_class is DeviceClass.GPU


def _spec(
    name: str,
    device_class: DeviceClass,
    freq_ghz: float,
    sockets: int,
    cores: int,
    peak_w: float,
    idle_w: float,
) -> ServerSpec:
    return ServerSpec(
        name=name,
        device_class=device_class,
        base_frequency_hz=freq_ghz * 1e9,
        sockets=sockets,
        cores=cores,
        peak_power_w=peak_w,
        idle_power_w=idle_w,
    )


#: The six server configurations of Table II.
PLATFORMS: dict[str, ServerSpec] = {
    spec.name: spec
    for spec in (
        _spec("E5-2620", DeviceClass.CPU, 2.0, 2, 12, 178.0, 88.0),
        _spec("E5-2650", DeviceClass.CPU, 2.0, 1, 8, 112.0, 66.0),
        _spec("E5-2603", DeviceClass.CPU, 1.8, 1, 4, 79.0, 58.0),
        _spec("i7-8700K", DeviceClass.CPU, 3.7, 1, 6, 88.0, 39.0),
        _spec("i5-4460", DeviceClass.CPU, 3.2, 1, 4, 96.0, 47.0),
        _spec("TitanXp", DeviceClass.GPU, 1.582, 1, 3840, 411.0, 149.0),
    )
}

#: Aliases accepted by :func:`get_platform` for convenience.
_ALIASES: dict[str, str] = {
    "xeon e5-2620": "E5-2620",
    "xeon e5-2650": "E5-2650",
    "xeon e5-2603": "E5-2603",
    "core i7-8700k": "i7-8700K",
    "core i5-4460": "i5-4460",
    "i7": "i7-8700K",
    "i5": "i5-4460",
    "titan xp": "TitanXp",
    "titanxp": "TitanXp",
    "nvidia titan xp": "TitanXp",
}

#: Fig. 1 motivation data: number of distinct server configurations in ten
#: Google datacenters.  Values range 2-5 and 80% of the datacenters run
#: two or three configurations, matching the paper's reading of [22].
GOOGLE_DC_CONFIG_COUNTS: tuple[int, ...] = (3, 2, 4, 3, 2, 5, 3, 2, 3, 2)


def platform_names() -> tuple[str, ...]:
    """Names of all registered platforms, in registration order."""
    return tuple(PLATFORMS)


def register_platform(spec: ServerSpec, aliases: tuple[str, ...] = ()) -> None:
    """Add a user-defined server platform to the registry.

    Lets adopters model their own hardware mix beyond Table II.

    Raises
    ------
    ConfigurationError
        If the name or an alias is already taken.
    """
    if spec.name in PLATFORMS:
        raise ConfigurationError(f"platform {spec.name!r} already registered")
    for alias in aliases:
        if alias.lower() in _ALIASES:
            raise ConfigurationError(f"alias {alias!r} already registered")
    PLATFORMS[spec.name] = spec
    for alias in aliases:
        _ALIASES[alias.lower()] = spec.name


def get_platform(name: str) -> ServerSpec:
    """Look up a platform by registry name (case-insensitive, with aliases).

    Raises
    ------
    UnknownPlatformError
        If ``name`` matches no registered platform or alias.
    """
    if name in PLATFORMS:
        return PLATFORMS[name]
    canonical = _ALIASES.get(name.lower())
    if canonical is not None:
        return PLATFORMS[canonical]
    for key in PLATFORMS:
        if key.lower() == name.lower():
            return PLATFORMS[key]
    raise UnknownPlatformError(name, platform_names())
