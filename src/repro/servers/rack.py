"""Racks: homogeneous groups of heterogeneous server types.

A rack in the paper holds a small number of *server groups* — e.g. five
E5-2620 machines plus five i5-4460 machines in the Fig. 8 runs — all
executing the same workload.  GreenHetero allocates one PAR share per
group and splits it evenly across the group's members ("we distribute the
same amount of power to the same type of servers by default",
Section IV-B.3).

The rack is the unit both the power tree (one PDU, one battery bank, one
solar feed per rack) and the controller operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.servers.platform import ServerSpec, get_platform
from repro.servers.power_model import ResponseCurve, ServerPowerModel
from repro.workloads.catalog import Workload, get_workload


@dataclass(frozen=True)
class ServerGroup:
    """``count`` identical servers of one platform running one workload.

    Attributes
    ----------
    spec:
        The platform.
    count:
        Number of servers in the group (>= 1).
    workload:
        The workload the group runs.
    """

    spec: ServerSpec
    count: int
    workload: Workload

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"group {self.spec.name}: count must be >= 1")

    @property
    def key(self) -> tuple[str, str]:
        """(platform, workload) identity used by the profiling database."""
        return (self.spec.name, self.workload.name)


class Rack:
    """A rack of heterogeneous server groups sharing one power feed.

    Parameters
    ----------
    groups:
        ``(platform_name, count)`` pairs; order defines PAR vector order.
    workload:
        Workload run by every group (the paper's evaluation runs one
        workload per experiment), or a list with one entry per group.

    Raises
    ------
    ConfigurationError
        On empty racks, more groups than the solver supports being a
        concern of the caller, duplicate platforms, or workload/platform
        incompatibility.
    """

    def __init__(
        self,
        groups: list[tuple[str, int]],
        workload: str | Workload | list[str | Workload],
    ) -> None:
        if not groups:
            raise ConfigurationError("a rack needs at least one server group")
        names = [name for name, _ in groups]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate platform in rack: {names}")
        if isinstance(workload, list):
            if len(workload) != len(groups):
                raise ConfigurationError(
                    "per-group workload list must match the number of groups"
                )
            workloads = [get_workload(w.name if isinstance(w, Workload) else w) for w in workload]
        else:
            shared = get_workload(workload.name if isinstance(workload, Workload) else workload)
            workloads = [shared] * len(groups)

        self.groups: list[ServerGroup] = []
        self._curves: list[ResponseCurve] = []
        for (name, count), wl in zip(groups, workloads):
            spec = get_platform(name)
            curve = ResponseCurve(spec, wl)  # raises IncompatibleWorkloadError
            self.groups.append(ServerGroup(spec=spec, count=count, workload=wl))
            self._curves.append(curve)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.groups)

    @property
    def n_servers(self) -> int:
        """Total number of machines in the rack."""
        return sum(g.count for g in self.groups)

    @property
    def platform_names(self) -> tuple[str, ...]:
        return tuple(g.spec.name for g in self.groups)

    def curve(self, index: int) -> ResponseCurve:
        """Ground-truth response curve of group ``index``."""
        return self._curves[index]

    def build_servers(self) -> list[list[ServerPowerModel]]:
        """Instantiate one :class:`ServerPowerModel` per machine, per group."""
        return [
            [ServerPowerModel(g.spec, g.workload) for _ in range(g.count)]
            for g in self.groups
        ]

    # ------------------------------------------------------------------
    # Power envelope
    # ------------------------------------------------------------------
    @property
    def max_draw_w(self) -> float:
        """Rack power demand with every server at full load (W)."""
        return sum(c.max_draw_w * g.count for c, g in zip(self._curves, self.groups))

    @property
    def envelope_w(self) -> float:
        """Rack hardware power envelope: sum of platform peak powers (W).

        Workload-independent — this is what the rack's power delivery
        (PDU, solar array, grid feed) is provisioned against.
        """
        return sum(g.spec.peak_power_w * g.count for g in self.groups)

    @property
    def idle_power_w(self) -> float:
        """Rack power with every server powered but idle (W)."""
        return sum(g.spec.idle_power_w * g.count for g in self.groups)

    @property
    def min_active_power_w(self) -> float:
        """Cheapest way to have one server doing work (W)."""
        return min(c.min_active_power_w for c in self._curves)

    @property
    def max_throughput(self) -> float:
        """Aggregate throughput with unlimited power."""
        return sum(c.max_throughput * g.count for c, g in zip(self._curves, self.groups))

    def group_demands_at_load(self, load_fraction: float) -> tuple[float, ...]:
        """Per-group power demand at ``load_fraction`` load (W).

        Same semantics as :meth:`demand_at_load`, kept separate so
        callers (the shift runtime) can cap individual groups.
        """
        demands = []
        for curve, group in zip(self._curves, self.groups):
            top = curve.states.active_states[-1]
            demands.append(curve.sample_at_state(top, load_fraction).power_w * group.count)
        return tuple(demands)

    def demand_at_load(self, load_fraction: float) -> float:
        """Rack power demand when every server sees ``load_fraction`` load (W)."""
        return sum(self.group_demands_at_load(load_fraction))

    def describe(self) -> str:
        """One-line human-readable rack summary."""
        parts = ", ".join(
            f"{g.count}x {g.spec.name} ({g.workload.name})" for g in self.groups
        )
        return f"Rack[{parts}; max {self.max_draw_w:.0f} W]"
