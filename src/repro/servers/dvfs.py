"""DVFS power-state ladders and the power-to-state mapping (Section IV-B.4).

The paper's Server Power Controller (SPC) enforces a per-server power
budget by picking a server power state: the state set :math:`S_N` for a
server of type *N* "consists of all server frequency levels and low power
states and is ordered from low power state to high power state", and "any
value between the power limits is linearly scaled to a position in the
state set".

We reproduce that exactly.  A :class:`PowerStateSet` is built from a
:class:`~repro.servers.platform.ServerSpec`: one OFF state (0 W, no
throughput), one SLEEP state (a few watts, no throughput), then the DVFS
frequency ladder from ``min_frequency_hz`` up to ``base_frequency_hz``.
Each DVFS state carries a *power cap*: the wall power the server may draw
when running at that frequency with the current workload at full load.
Power scales with frequency using the classical cubic-ish CMOS relation
(:math:`P \\propto f \\cdot V^2` with voltage roughly linear in frequency),
anchored so the lowest frequency maps to idle-plus-a-sliver and the
highest maps to peak power.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigurationError, PowerError
from repro.servers.platform import ServerSpec

#: Wall power of the SLEEP (suspend-to-RAM) state, watts.
SLEEP_POWER_W = 3.0

#: Exponent of the frequency -> dynamic-power relation.  3.0 is the ideal
#: CMOS cube law; real servers measure slightly below it because static
#: power does not scale, so we use 2.4 (within the range reported for
#: Xeon-class parts).
POWER_FREQ_EXPONENT = 2.4

#: Dynamic power burned by the lowest active DVFS state as a fraction of
#: the full dynamic envelope.  Commodity servers cannot run arbitrarily
#: close to idle: voltage floors, uncore clocks and fan steps mean the
#: lowest P-state still costs a sizeable step above idle.  This step is
#: what creates the paper's power-on cliff — allocating a server less
#: than its lowest active draw wastes the entire allocation.
MIN_STATE_DYNAMIC_FRACTION = 0.25


@dataclass(frozen=True)
class PowerState:
    """One entry of a server's ordered power-state set.

    Attributes
    ----------
    index:
        Position in the ordered set (0 = lowest power).
    label:
        Human-readable name (``"off"``, ``"sleep"``, or ``"p<k>"``).
    frequency_hz:
        Operating frequency; 0 for OFF/SLEEP.
    power_cap_w:
        Maximum wall power the server draws in this state at full load.
    active:
        True when the state can execute work (i.e. a DVFS state).
    """

    index: int
    label: str
    frequency_hz: float
    power_cap_w: float
    active: bool

    @property
    def is_off(self) -> bool:
        return self.label == "off"


class PowerStateSet:
    """The ordered power-state set :math:`S_N` for one server platform.

    Parameters
    ----------
    spec:
        Platform whose envelope anchors the ladder.
    levels:
        Number of DVFS states; defaults to ``spec.dvfs_levels``.

    Notes
    -----
    The mapping from a power budget to a state follows the paper: the
    budget is clamped to ``[0, peak]`` and the chosen state is the highest
    state whose power cap does not exceed the budget, which is exactly the
    "linear scaling to a position in the state set" with a floor to
    guarantee the cap is honoured.
    """

    def __init__(self, spec: ServerSpec, levels: int | None = None) -> None:
        self.spec = spec
        n_levels = spec.dvfs_levels if levels is None else levels
        if n_levels < 2:
            raise ConfigurationError("a DVFS ladder needs at least 2 levels")
        self._states: list[PowerState] = [
            PowerState(0, "off", 0.0, 0.0, active=False),
            PowerState(1, "sleep", 0.0, SLEEP_POWER_W, active=False),
        ]
        f_lo, f_hi = spec.min_frequency_hz, spec.base_frequency_hz
        for k in range(n_levels):
            frac = k / (n_levels - 1)
            freq = f_lo + frac * (f_hi - f_lo)
            power = self._power_at_frequency(freq)
            self._states.append(
                PowerState(
                    index=2 + k,
                    label=f"p{k}",
                    frequency_hz=freq,
                    power_cap_w=power,
                    active=True,
                )
            )
        self._caps = [s.power_cap_w for s in self._states]

    def _power_at_frequency(self, freq_hz: float) -> float:
        """Full-load wall power at ``freq_hz``, anchored to the spec envelope.

        ``P(f) = idle + dynamic_range * ((f - f_min)/(f_max - f_min) * span
        + floor)`` shaped by the CMOS exponent, so the lowest active state
        draws slightly above idle and the highest draws exactly peak.
        """
        spec = self.spec
        f_lo, f_hi = spec.min_frequency_hz, spec.base_frequency_hz
        x = (freq_hz - f_lo) / (f_hi - f_lo)
        x = min(max(x, 0.0), 1.0)
        dyn = MIN_STATE_DYNAMIC_FRACTION + (
            1.0 - MIN_STATE_DYNAMIC_FRACTION
        ) * x**POWER_FREQ_EXPONENT
        return spec.idle_power_w + dyn * spec.dynamic_range_w

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self):
        return iter(self._states)

    def __getitem__(self, index: int) -> PowerState:
        return self._states[index]

    @property
    def states(self) -> tuple[PowerState, ...]:
        """All states, ordered from lowest to highest power."""
        return tuple(self._states)

    @property
    def active_states(self) -> tuple[PowerState, ...]:
        """Only the DVFS (work-executing) states, low to high."""
        return tuple(s for s in self._states if s.active)

    @property
    def min_active_power_w(self) -> float:
        """Power cap of the lowest DVFS state."""
        return self.active_states[0].power_cap_w

    def state_for_budget(self, budget_w: float) -> PowerState:
        """Map a per-server power budget to the state the SPC enforces.

        The highest state whose full-load power cap fits within
        ``budget_w``.  A budget below the lowest active state's cap (i.e.
        the server cannot run even at minimum frequency) falls back to
        SLEEP if the sleep power fits, else OFF.

        Raises
        ------
        PowerError
            If ``budget_w`` is negative.
        """
        if budget_w < 0:
            raise PowerError(f"power budget must be non-negative, got {budget_w}")
        # caps are sorted ascending; find the rightmost cap <= budget.
        pos = bisect.bisect_right(self._caps, budget_w) - 1
        if pos < 0:
            return self._states[0]
        return self._states[pos]

    def frequency_for_budget(self, budget_w: float) -> float:
        """Convenience: operating frequency chosen for ``budget_w`` (Hz)."""
        return self.state_for_budget(budget_w).frequency_hz
