"""Ground-truth power-to-performance response surfaces.

This module is the simulated stand-in for the paper's *physical servers +
external power meter*.  For a (platform, workload) pair it answers: if the
Server Power Controller enforces power state ``s`` and the offered load is
``x``, what throughput does the server produce and how many watts does it
actually draw?

The model composes four pieces, each anchored in measurable behaviour:

1. **Capacity vs frequency** — throughput scales as
   ``(f / f_base) ** a`` with the workload's frequency sensitivity ``a``
   (compute-bound near 1, memory/network-bound well below).
2. **Power vs frequency** — wall power follows the DVFS ladder's
   CMOS-style ``f**2.4`` dynamic term on top of idle power
   (:mod:`repro.servers.dvfs`).
3. **Latency SLO** — interactive workloads only count throughput that
   meets the tail-latency bound (:mod:`repro.workloads.slo`).
4. **Utilisation feedback** — a partially loaded server draws less than
   its full-load cap; we use the standard linear utilisation-power model
   with a 35% activity floor.

Together these give a perf-vs-allocated-power curve that is zero below
idle power, concave in the operating range, and flat beyond the
workload's maximum draw — precisely the shape GreenHetero's quadratic
database fit presumes (Section IV-B.3).

The GreenHetero controller must never call the oracle methods directly;
it sees only the noisy samples the Monitor reports.  The oracle
(`perf_at_power`) exists for the Manual baseline (which measures every
allocation on real hardware in the paper) and for analysis plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IncompatibleWorkloadError, PowerError
from repro.servers.dvfs import PowerState, PowerStateSet
from repro.servers.platform import ServerSpec
from repro.workloads.catalog import Workload, get_workload
from repro.workloads.models import WorkloadResponse, response_for
from repro.workloads.slo import slo_constrained_throughput

#: Fraction of a state's dynamic power drawn by a completely idle-but-
#: powered core complex (clock/uncore activity floor).
ACTIVITY_FLOOR = 0.35


@dataclass(frozen=True)
class ServerSample:
    """One observed (power, performance) operating point.

    Attributes
    ----------
    power_w:
        Wall power actually drawn (W).
    throughput:
        Delivered SLO-compliant throughput (workload metric units).
    state_index:
        Index of the enforced power state.
    utilization:
        Served fraction of the state's compute capacity, in [0, 1].
        Batch workloads saturate (1.0); interactive servers run at the
        offered load.  EPU weighs drawn power by this — power a server
        burns beyond what its served throughput needs is not "directly
        used to generate workload throughput" (Eq. 1).
    """

    power_w: float
    throughput: float
    state_index: int
    utilization: float = 1.0


class ResponseCurve:
    """Ground truth for one (platform, workload) pair.

    Parameters
    ----------
    spec:
        Server platform.
    workload:
        Catalog entry or name.
    levels:
        DVFS ladder length override (default: the platform's).

    Raises
    ------
    IncompatibleWorkloadError
        If the workload cannot run on this device class.
    """

    def __init__(
        self, spec: ServerSpec, workload: Workload | str, levels: int | None = None
    ) -> None:
        self.spec = spec
        self.workload = get_workload(workload.name if isinstance(workload, Workload) else workload)
        self.response: WorkloadResponse = response_for(self.workload)
        if not self.response.runs_on(spec):
            raise IncompatibleWorkloadError(
                f"{self.workload.name!r} cannot run on {spec.name} "
                f"({spec.device_class.value})"
            )
        self.states = PowerStateSet(spec, levels=levels)
        self._t_max = self.response.max_throughput(spec)
        # Full-load wall draw of each state *for this workload*: the SPC's
        # power-to-state mapping is workload-aware (the Decision Output
        # component maps power values to frequency levels using the
        # profiled power limits, Section IV-B.4).
        self._state_draws = [
            self._draw(state, utilization=1.0) if state.active else state.power_cap_w
            for state in self.states
        ]

    # ------------------------------------------------------------------
    # Envelope properties
    # ------------------------------------------------------------------
    @property
    def max_throughput(self) -> float:
        """Throughput at full frequency and full load (metric units)."""
        return self._t_max

    @property
    def max_draw_w(self) -> float:
        """Maximum wall power this workload draws on this platform (W)."""
        return self._draw(self.states.active_states[-1], utilization=1.0)

    @property
    def idle_power_w(self) -> float:
        """Platform idle power (W); allocations below it yield nothing."""
        return self.spec.idle_power_w

    @property
    def min_active_power_w(self) -> float:
        """Smallest allocation at which the server can execute work (W)."""
        return self._state_draws[self.states.active_states[0].index]

    @property
    def peak_efficiency(self) -> float:
        """Throughput per watt at the workload's maximum draw."""
        return self.max_throughput / self.max_draw_w

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def _capacity(self, state: PowerState) -> float:
        """Raw service capacity at ``state`` (ops/s), before the SLO."""
        if not state.active:
            return 0.0
        rel = state.frequency_hz / self.spec.base_frequency_hz
        return self._t_max * rel**self.response.frequency_sensitivity

    def _draw(self, state: PowerState, utilization: float) -> float:
        """Wall power drawn at ``state`` and ``utilization`` (W)."""
        if not state.active:
            return state.power_cap_w  # 0 for OFF, sleep power for SLEEP
        dyn_cap = state.power_cap_w - self.spec.idle_power_w
        activity = ACTIVITY_FLOOR + (1.0 - ACTIVITY_FLOOR) * utilization
        return (
            self.spec.idle_power_w
            + self.response.power_intensity * activity * dyn_cap
        )

    def deliverable_capacity(self, state: PowerState) -> float:
        """SLO-compliant serving capacity at ``state`` (ops/s).

        For batch workloads this is the raw compute capacity; for
        interactive workloads the tail-latency headroom is subtracted.
        A rack-level load balancer routes requests against exactly this
        quantity.
        """
        if not state.active:
            return 0.0
        return slo_constrained_throughput(self._capacity(state), self.workload.slo)

    def serve(self, state: PowerState, offered_ops: float) -> ServerSample:
        """Run the server at ``state`` with an absolute offered rate.

        Parameters
        ----------
        state:
            The power state the SPC enforces.
        offered_ops:
            Request rate routed to this server (ops/s); ``math.inf``
            saturates it (batch execution).

        Returns
        -------
        ServerSample
            Noise-free throughput and wall power; the Monitor adds
            measurement noise.
        """
        if offered_ops < 0:
            raise PowerError(f"offered load must be non-negative, got {offered_ops}")
        if not state.active:
            return ServerSample(self._draw(state, 0.0), 0.0, state.index, 0.0)
        capacity = self._capacity(state)
        served = min(self.deliverable_capacity(state), offered_ops)
        utilization = 0.0 if capacity == 0.0 else min(served / capacity, 1.0)
        return ServerSample(self._draw(state, utilization), served, state.index, utilization)

    def sample_at_state(self, state: PowerState, load_fraction: float = 1.0) -> ServerSample:
        """Run the server at ``state`` under fractional offered load.

        ``load_fraction`` is relative to this server's own full-load
        throughput; rack-level load balancing (which routes by capacity,
        not by server size) lives in the controller.
        """
        if not 0.0 <= load_fraction <= 1.0:
            raise PowerError(f"load fraction must be in [0, 1], got {load_fraction}")
        return self.serve(state, load_fraction * self._t_max)

    # ------------------------------------------------------------------
    # State selection (the SPC's workload-aware power-to-state mapping)
    # ------------------------------------------------------------------
    def state_for_budget(self, budget_w: float) -> PowerState:
        """The highest state whose full-load draw *of this workload* fits.

        Falls back to SLEEP (then OFF) when even the lowest active
        state's draw exceeds the budget — the power-on cliff.
        """
        if budget_w < 0:
            raise PowerError(f"power budget must be non-negative, got {budget_w}")
        chosen = self.states[0]
        for state, draw in zip(self.states, self._state_draws):
            if draw <= budget_w:
                chosen = state
        return chosen

    # ------------------------------------------------------------------
    # Oracle views (Manual policy, case-study sweeps, analysis)
    # ------------------------------------------------------------------
    def perf_at_power(self, budget_w: float, load_fraction: float = 1.0) -> ServerSample:
        """Throughput/draw when the SPC enforces a ``budget_w`` power cap.

        This is the oracle the Manual baseline effectively queries by
        physically trying an allocation and measuring the outcome.
        """
        state = self.state_for_budget(budget_w)
        return self.sample_at_state(state, load_fraction)

    def curve(self, n_points: int = 200, load_fraction: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """Dense (allocated power, throughput) arrays for plotting/analysis."""
        budgets = np.linspace(0.0, 1.1 * self.spec.peak_power_w, n_points)
        perfs = np.array(
            [self.perf_at_power(float(b), load_fraction).throughput for b in budgets]
        )
        return budgets, perfs


class ServerPowerModel:
    """A single physical server: a platform bound to one workload.

    Thin stateful wrapper around :class:`ResponseCurve` that remembers the
    currently enforced power state, mirroring one machine in the paper's
    racks.
    """

    def __init__(self, spec: ServerSpec, workload: Workload | str) -> None:
        self.curve = ResponseCurve(spec, workload)
        self._state: PowerState = self.curve.states.active_states[-1]

    @property
    def spec(self) -> ServerSpec:
        return self.curve.spec

    @property
    def workload(self) -> Workload:
        return self.curve.workload

    @property
    def state(self) -> PowerState:
        """Currently enforced power state."""
        return self._state

    def enforce_budget(self, budget_w: float) -> PowerState:
        """Apply a power cap; returns the state the SPC selected."""
        self._state = self.curve.state_for_budget(budget_w)
        return self._state

    def run(self, load_fraction: float = 1.0) -> ServerSample:
        """Execute one interval at the enforced state."""
        return self.curve.sample_at_state(self._state, load_fraction)
