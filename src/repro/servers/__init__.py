"""Server substrate: platforms, DVFS ladders, ground-truth response models.

The paper's testbed (Table II) contains five Intel CPU platforms and one
Nvidia GPU.  This subpackage models each platform's electrical envelope
(idle/peak power), its DVFS power-state ladder, and — crucially — the
*ground-truth* power-to-performance response surface for every workload.
The GreenHetero controller never reads the ground truth directly; it only
observes noisy (power, performance) samples through the Monitor, exactly
as the real prototype observed its servers through power meters and
``perf``/``nvprof``.
"""

from repro.servers.dvfs import PowerState, PowerStateSet
from repro.servers.platform import (
    GOOGLE_DC_CONFIG_COUNTS,
    PLATFORMS,
    DeviceClass,
    ServerSpec,
    get_platform,
    platform_names,
    register_platform,
)
from repro.servers.power_model import ResponseCurve, ServerPowerModel
from repro.servers.rack import Rack, ServerGroup

__all__ = [
    "DeviceClass",
    "GOOGLE_DC_CONFIG_COUNTS",
    "PLATFORMS",
    "PowerState",
    "PowerStateSet",
    "Rack",
    "ResponseCurve",
    "ServerGroup",
    "ServerPowerModel",
    "ServerSpec",
    "get_platform",
    "platform_names",
    "register_platform",
]
