"""Strict-mode reference simulations for the verify CLI and CI smoke.

Runs the paper's standard stack end-to-end with the invariant auditor in
strict mode — once with the default grid-backed supply and once in the
constrained-supply (``supply_fractions``) regime — and reports the
audit roll-up.  A violation-free pass is the acceptance gate for the
physics accounting; any strict-mode raise propagates to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.policies import make_policy
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.traces.nrel import Weather
from repro.units import EPOCH_SECONDS

#: The two supply regimes the acceptance criteria name.
REFERENCE_MODES = ("default", "supply_fractions")

#: Fractions cycled by the constrained-supply reference (a deep, a
#: moderate, and an unconstrained epoch, like the Fig. 9/10 sweeps).
REFERENCE_FRACTIONS = (0.4, 0.7, 1.0)


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of one strict reference simulation."""

    mode: str
    policy: str
    n_epochs: int
    audit: dict[str, Any]

    @property
    def passed(self) -> bool:
        return self.audit["violations"] == 0

    def summary(self) -> str:
        status = "clean" if self.passed else "VIOLATIONS"
        return (
            f"reference[{self.mode}]: {self.n_epochs} epochs under "
            f"{self.policy} --strict, {status} "
            f"({self.audit['violations']} violations)"
        )


def run_strict_reference(
    n_epochs: int = 16,
    policy: str = "GreenHetero",
    weather: Weather = Weather.HIGH,
    seed: int = 2021,
) -> list[ReferenceResult]:
    """Run both reference modes to completion under ``strict=True``.

    Raises
    ------
    InvariantViolation
        As soon as any epoch of either mode breaks an invariant (strict
        mode does not collect-and-continue).
    """
    clock = SimClock(duration_s=n_epochs * EPOCH_SECONDS)
    results = []
    for mode in REFERENCE_MODES:
        kwargs: dict[str, Any] = {}
        if mode == "supply_fractions":
            kwargs["supply_fractions"] = REFERENCE_FRACTIONS
        sim = Simulation.assemble(
            policy=make_policy(policy),
            rack=Rack([("E5-2620", 5), ("i5-4460", 5)], "SPECjbb"),
            weather=weather,
            clock=clock,
            seed=seed,
            strict=True,
            **kwargs,
        )
        sim.run()
        assert sim.auditor is not None
        results.append(
            ReferenceResult(
                mode=mode,
                policy=policy,
                n_epochs=len(sim.log),
                audit=sim.auditor.summary(),
            )
        )
    return results
