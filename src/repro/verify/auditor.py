"""Per-epoch invariant auditing of the simulation's power accounting.

Every subsystem above the PDU trusts that the power arithmetic is right;
an accounting bug surfaces only as a silently-wrong EPU number.  The
:class:`InvariantAuditor` closes that gap: after each epoch it re-derives
the physics from the :class:`~repro.core.controller.EpochRecord` and the
live component state, and asserts — with explicit tolerances — that:

* **energy-conservation** — renewable power is fully accounted for
  (``to-load + curtailed <= available <= to-load + curtailed + charge``,
  exact when nothing charged), and useful power never exceeds what the
  sources delivered;
* **battery-soc** — the SoC delta matches the epoch's discharge and
  charge flows under the bank's round-trip efficiency (exact for the
  ideal Peukert-1.0 battery, one-sided for rate-dependent banks);
* **soc-floor** — the SoC never leaves ``[DoD floor, capacity]``;
* **grid-budget** — grid draw to the load never exceeds the feed's
  budget;
* **ratios** — the PAR vector satisfies ``sum(eta) <= 1`` with no
  negative entries;
* **epu-range** — EPU, useful power, and throughput are in range;
* **fit-bounds** — every solver-allocated per-server share sits inside
  its database fit's ``[idle, peak]`` operating box.

The auditor always runs every check and counts violations in the
``repro_verify_violations_total{check=...}`` metric; ``strict`` only
controls whether a violating epoch additionally raises
:class:`~repro.errors.InvariantViolation`.  Checks are pluggable: pass a
custom sequence to audit a subset or an extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import DatabaseMissError, InvariantViolation
from repro.obs.metrics import REGISTRY as _REGISTRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import EpochRecord, GreenHeteroController

_VIOLATIONS_TOTAL = _REGISTRY.counter(
    "repro_verify_violations_total",
    "Invariant-audit violations by check name",
    labelnames=("check",),
)

#: Base absolute tolerance (W / Wh) for the audit comparisons; scaled up
#: with the magnitude of the quantities involved (see :func:`_tol`).
BASE_TOL = 1e-6

#: Slack allowed on the PAR-vector sum and per-ratio sign checks.
RATIO_TOL = 1e-6

#: Relative slack on the fit-bounds box (meter noise never moves a bound
#: by less than this).
FIT_BOUND_REL_TOL = 1e-6


def _tol(*scales: float) -> float:
    """Absolute tolerance scaled to the magnitudes being compared."""
    return BASE_TOL * max(1.0, *(abs(s) for s in scales))


@dataclass(frozen=True)
class Violation:
    """One failed invariant check for one epoch."""

    check: str
    message: str
    time_s: float


@dataclass(frozen=True)
class AuditContext:
    """Everything a check needs to re-derive one epoch's physics.

    Attributes
    ----------
    record:
        The epoch's telemetry record.
    controller:
        The live controller (battery, grid, and database state are read
        from it — their post-epoch state corresponds to ``record``).
    epoch_s:
        Epoch length in seconds.
    soc_before_wh:
        Battery SoC captured immediately before the epoch executed
        (after fault injection), so the SoC delta can be checked.
    gating_active:
        True when per-group caps (the shift runtime) shaped this epoch's
        group budgets; the fit-bounds lower check is waived because caps
        legitimately push a group below its power-on point.
    """

    record: "EpochRecord"
    controller: "GreenHeteroController"
    epoch_s: float
    soc_before_wh: float
    gating_active: bool = False


Check = Callable[[AuditContext], "list[Violation]"]


# ----------------------------------------------------------------------
# Checks.  Each re-derives one invariant from the record and live state;
# all flow values in the record are epoch-mean watts, and every bound
# below holds exactly per PDU substep, hence for the means.
# ----------------------------------------------------------------------
def check_energy_conservation(ctx: AuditContext) -> list[Violation]:
    r = ctx.record
    out: list[Violation] = []
    tol = _tol(r.renewable_w, r.budget_w, r.charge_w)

    if r.renewable_to_load_w > r.renewable_w + tol:
        out.append(
            Violation(
                "energy-conservation",
                f"renewable-to-load {r.renewable_to_load_w:.6f} W exceeds "
                f"available renewable {r.renewable_w:.6f} W",
                r.time_s,
            )
        )

    # Available renewable splits into load, curtailment, and (when the
    # battery charged from it) storage input.  Epochs that charged from
    # the grid keep the charge term out of the identity, so the split is
    # a two-sided bound that collapses to an equality when nothing
    # charged (charge_w == 0 whenever charge_source is NONE).
    accounted = r.renewable_to_load_w + r.curtailed_w
    if accounted > r.renewable_w + tol:
        out.append(
            Violation(
                "energy-conservation",
                f"renewable-to-load + curtailed = {accounted:.6f} W exceeds "
                f"available renewable {r.renewable_w:.6f} W",
                r.time_s,
            )
        )
    # charge_source records the *last* charging source of the epoch; a
    # mixed epoch may have charged from both, so the sound upper bound
    # always includes the full charge term.
    upper = accounted + r.charge_w
    if r.renewable_w > upper + tol:
        out.append(
            Violation(
                "energy-conservation",
                f"available renewable {r.renewable_w:.6f} W is not accounted "
                f"for by to-load + curtailed + charge = {upper:.6f} W",
                r.time_s,
            )
        )

    delivered = (
        r.renewable_to_load_w + r.battery_to_load_w + r.grid_to_load_w
    )
    if r.useful_power_w > delivered + _tol(delivered, r.useful_power_w):
        out.append(
            Violation(
                "energy-conservation",
                f"useful power {r.useful_power_w:.6f} W exceeds delivered "
                f"supply {delivered:.6f} W",
                r.time_s,
            )
        )
    return out


def check_battery_soc(ctx: AuditContext) -> list[Violation]:
    battery = ctx.controller.pdu.battery
    if battery.is_unlimited:
        return []
    r = ctx.record
    hours = ctx.epoch_s / 3600.0
    stored_wh = r.charge_w * hours * battery.efficiency
    discharged_wh = r.battery_to_load_w * hours
    delta = r.battery_soc_wh - ctx.soc_before_wh
    expected = stored_wh - discharged_wh
    tol = _tol(battery.capacity_wh * 1e-3, stored_wh, discharged_wh)
    if battery.peukert_exponent == 1.0:
        if abs(delta - expected) > tol:
            return [
                Violation(
                    "battery-soc",
                    f"SoC delta {delta:.6f} Wh does not match flows "
                    f"(charge*eff - discharge = {expected:.6f} Wh)",
                    r.time_s,
                )
            ]
    elif delta > expected + tol:
        # Peukert debits at least the delivered energy, so the SoC may
        # fall faster than the ideal arithmetic but never slower.
        return [
            Violation(
                "battery-soc",
                f"SoC delta {delta:.6f} Wh exceeds the ideal-battery bound "
                f"{expected:.6f} Wh despite Peukert debiting",
                r.time_s,
            )
        ]
    return []


def check_soc_floor(ctx: AuditContext) -> list[Violation]:
    battery = ctx.controller.pdu.battery
    r = ctx.record
    tol = _tol(battery.capacity_wh * 1e-3)
    out: list[Violation] = []
    if r.battery_soc_wh < battery.floor_wh - tol:
        out.append(
            Violation(
                "soc-floor",
                f"SoC {r.battery_soc_wh:.6f} Wh is below the DoD floor "
                f"{battery.floor_wh:.6f} Wh",
                r.time_s,
            )
        )
    if r.battery_soc_wh > battery.capacity_wh + tol:
        out.append(
            Violation(
                "soc-floor",
                f"SoC {r.battery_soc_wh:.6f} Wh exceeds capacity "
                f"{battery.capacity_wh:.6f} Wh",
                r.time_s,
            )
        )
    return out


def check_grid_budget(ctx: AuditContext) -> list[Violation]:
    grid = ctx.controller.pdu.grid
    r = ctx.record
    if r.grid_to_load_w > grid.budget_w + _tol(grid.budget_w):
        return [
            Violation(
                "grid-budget",
                f"grid-to-load {r.grid_to_load_w:.6f} W exceeds the grid "
                f"budget {grid.budget_w:.6f} W",
                r.time_s,
            )
        ]
    return []


def check_ratios(ctx: AuditContext) -> list[Violation]:
    r = ctx.record
    out: list[Violation] = []
    total = sum(r.ratios)
    if total > 1.0 + RATIO_TOL:
        out.append(
            Violation(
                "ratios",
                f"PAR vector sums to {total:.9f} > 1",
                r.time_s,
            )
        )
    for i, eta in enumerate(r.ratios):
        if eta < -RATIO_TOL:
            out.append(
                Violation(
                    "ratios",
                    f"PAR ratio {i} is negative ({eta:.9f})",
                    r.time_s,
                )
            )
    return out


def check_epu_range(ctx: AuditContext) -> list[Violation]:
    r = ctx.record
    out: list[Violation] = []
    if not 0.0 <= r.epu <= 1.0 + RATIO_TOL:
        out.append(
            Violation("epu-range", f"EPU {r.epu:.9f} outside [0, 1]", r.time_s)
        )
    if r.useful_power_w < -BASE_TOL:
        out.append(
            Violation(
                "epu-range",
                f"useful power is negative ({r.useful_power_w:.6f} W)",
                r.time_s,
            )
        )
    if r.throughput < -BASE_TOL:
        out.append(
            Violation(
                "epu-range",
                f"throughput is negative ({r.throughput:.6f})",
                r.time_s,
            )
        )
    return out


def check_fit_bounds(ctx: AuditContext) -> list[Violation]:
    r = ctx.record
    # projected_perf marks solver-produced allocations; fallback epochs
    # (uniform ratios after a SolverError) carry no fit semantics.
    if r.projected_perf is None:
        return []
    database = ctx.controller.scheduler.database
    groups = ctx.controller.rack.groups
    counts = (
        r.powered_counts
        if r.powered_counts is not None
        else tuple(g.count for g in groups)
    )
    out: list[Violation] = []
    for i, group in enumerate(groups):
        budget = r.group_budgets_w[i]
        count = counts[i]
        if budget <= 0.0 or count <= 0:
            continue
        try:
            fit = database.projection(group.key)
        except DatabaseMissError:
            continue
        per_server = budget / count
        hi = fit.max_power_w * (1.0 + FIT_BOUND_REL_TOL) + BASE_TOL
        if per_server > hi:
            out.append(
                Violation(
                    "fit-bounds",
                    f"group {group.spec.name}: per-server allocation "
                    f"{per_server:.6f} W exceeds the fit peak "
                    f"{fit.max_power_w:.6f} W",
                    r.time_s,
                )
            )
        lo = fit.min_power_w * (1.0 - FIT_BOUND_REL_TOL) - BASE_TOL
        if not ctx.gating_active and per_server < lo:
            out.append(
                Violation(
                    "fit-bounds",
                    f"group {group.spec.name}: per-server allocation "
                    f"{per_server:.6f} W is below the fit power-on point "
                    f"{fit.min_power_w:.6f} W",
                    r.time_s,
                )
            )
    return out


#: The full default check suite, in report order.
DEFAULT_CHECKS: tuple[Check, ...] = (
    check_energy_conservation,
    check_battery_soc,
    check_soc_floor,
    check_grid_budget,
    check_ratios,
    check_epu_range,
    check_fit_bounds,
)


class InvariantAuditor:
    """Runs the invariant checks against each epoch of a simulation.

    Parameters
    ----------
    strict:
        When True, an epoch with any violation raises
        :class:`~repro.errors.InvariantViolation`.  Violations are
        counted (per-instance and in the
        ``repro_verify_violations_total`` metric) either way.
    checks:
        Override the default check suite (pluggability hook).
    """

    def __init__(
        self, strict: bool = False, checks: Sequence[Check] | None = None
    ) -> None:
        self.strict = strict
        self.checks: tuple[Check, ...] = (
            tuple(checks) if checks is not None else DEFAULT_CHECKS
        )
        self.epochs_audited = 0
        self.violations: list[Violation] = []

    def audit(self, ctx: AuditContext) -> tuple[Violation, ...]:
        """Check one epoch; returns (and accumulates) its violations.

        Raises
        ------
        InvariantViolation
            In strict mode, when any check fails.
        """
        found: list[Violation] = []
        for check in self.checks:
            found.extend(check(ctx))
        self.epochs_audited += 1
        for violation in found:
            _VIOLATIONS_TOTAL.labels(violation.check).inc()
        self.violations.extend(found)
        if found and self.strict:
            raise InvariantViolation(found)
        return tuple(found)

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def summary(self) -> dict[str, object]:
        """Roll-up for status endpoints and the verify CLI."""
        by_check: dict[str, int] = {}
        for violation in self.violations:
            by_check[violation.check] = by_check.get(violation.check, 0) + 1
        return {
            "epochs_audited": self.epochs_audited,
            "violations": self.violation_count,
            "by_check": by_check,
            "strict": self.strict,
        }
