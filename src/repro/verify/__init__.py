"""repro.verify: the correctness layer.

Two complementary harnesses:

* :mod:`repro.verify.auditor` — per-epoch invariant auditing of the
  simulation's power accounting (wired into
  :class:`~repro.sim.engine.Simulation` behind ``strict=``/``--strict``);
* :mod:`repro.verify.differential` — cross-checking the PAR solver's
  three mechanisms on a seeded randomized corpus;
* :mod:`repro.verify.fuzz` — checkpoint round-trip fuzzing for
  serve/shift state;
* :mod:`repro.verify.reference` — strict-mode end-to-end reference
  simulations (the CI acceptance gate).

``fuzz`` and ``reference`` are loaded lazily: they reach into the serve
stack and the engine, which themselves import this package.
"""

from __future__ import annotations

from repro.verify.auditor import (
    DEFAULT_CHECKS,
    AuditContext,
    InvariantAuditor,
    Violation,
)
from repro.verify.differential import (
    CaseOutcome,
    DifferentialReport,
    run_differential,
)

__all__ = [
    "AuditContext",
    "CaseOutcome",
    "DEFAULT_CHECKS",
    "DifferentialReport",
    "InvariantAuditor",
    "Violation",
    "run_differential",
    "FuzzReport",
    "fuzz_round_trips",
    "ReferenceResult",
    "run_strict_reference",
]

_LAZY = {
    "FuzzReport": ("repro.verify.fuzz", "FuzzReport"),
    "fuzz_round_trips": ("repro.verify.fuzz", "fuzz_round_trips"),
    "ReferenceResult": ("repro.verify.reference", "ReferenceResult"),
    "run_strict_reference": ("repro.verify.reference", "run_strict_reference"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
