"""Checkpoint round-trip fuzzing for serve/shift state.

The serve daemon's restore promise is bit-identical learned state; this
module stress-tests it with seeded randomized instances of every
serialized component — Holt predictors, job queues, shift runtimes,
profiling databases, and serve configs — asserting that
``serialize -> restore -> serialize`` is a fixed point (canonical-JSON
equality, the same representation the checkpoint files use).

The serve/shift imports are function-local: the verify package is
imported by the simulation engine, and pulling :mod:`repro.serve.state`
at module import time would close an import cycle through the engine.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FuzzReport:
    """Result of :func:`fuzz_round_trips`."""

    n_cases: int
    failures: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.passed:
            return f"fuzz: {self.n_cases} round-trips, all fixed points"
        lines = [f"fuzz: {len(self.failures)}/{self.n_cases} round-trips FAILED"]
        lines.extend(f"  {failure}" for failure in self.failures[:10])
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        return "\n".join(lines)


def _canon(document: object) -> str:
    """Canonical JSON — the equality the checkpoint files actually use."""
    return json.dumps(document, sort_keys=True)


# ----------------------------------------------------------------------
# Per-component round trips.  Each returns an error string or None.
# ----------------------------------------------------------------------
def _round_trip_predictor(rng: random.Random) -> str | None:
    from repro.core.predictor import HoltPredictor

    predictor = HoltPredictor(
        alpha=rng.random(), beta=rng.random(), nonnegative=rng.random() < 0.5
    )
    for _ in range(rng.randint(0, 12)):
        predictor.observe(rng.uniform(0.0, 2000.0))
    before = predictor.state_dict()
    restored = HoltPredictor.from_state_dict(before)
    after = restored.state_dict()
    if _canon(before) != _canon(after):
        return f"HoltPredictor: {before!r} != {after!r}"
    if predictor.ready and predictor.predict() != restored.predict():
        return "HoltPredictor: restored forecast differs"
    return None


def _random_job(rng: random.Random, job_id: str):
    from repro.shift.queue import ShiftJob

    start = rng.uniform(0.0, 86400.0)
    return ShiftJob(
        job_id=job_id,
        energy_wh=rng.uniform(10.0, 500.0),
        power_w=rng.uniform(50.0, 400.0),
        earliest_start_s=start,
        deadline_s=start + rng.uniform(3600.0, 86400.0),
        value=rng.uniform(0.0, 10.0),
    )


def _round_trip_queue(rng: random.Random) -> str | None:
    from repro.shift.queue import JobQueue, JobStatus

    epoch_s = 900.0
    queue = JobQueue()
    for i in range(rng.randint(0, 6)):
        job = _random_job(rng, f"job-{i}")
        queue.submit(job)
        roll = rng.random()
        if roll < 0.4:
            queue.mark_running(job.job_id, job.earliest_start_s)
            for _ in range(rng.randint(0, job.n_epochs(epoch_s))):
                if queue.status(job.job_id) == JobStatus.RUNNING:
                    queue.advance(
                        job.job_id, epoch_s, job.earliest_start_s + epoch_s
                    )
        elif roll < 0.5:
            queue.expire(job.deadline_s + epoch_s, epoch_s)
    before = queue.state_dict()
    restored = JobQueue.from_state_dict(before)
    after = restored.state_dict()
    if _canon(before) != _canon(after):
        return f"JobQueue: state diverged after restore ({len(queue)} jobs)"
    return None


def _round_trip_shift_runtime(rng: random.Random) -> str | None:
    from repro.shift.runtime import ShiftRuntime

    runtime = ShiftRuntime()
    for i in range(rng.randint(0, 4)):
        runtime.submit(_random_job(rng, f"job-{i}"))
    for _ in range(rng.randint(0, 8)):
        runtime._interactive_predictor.observe(rng.uniform(0.0, 1500.0))
    runtime._start_baseline_wh = {
        f"job-{i}": rng.uniform(0.0, 100.0) for i in range(rng.randint(0, 3))
    }
    before = runtime.state_dict()
    restored = ShiftRuntime()
    restored.load_state_dict(before)
    after = restored.state_dict()
    if _canon(before) != _canon(after):
        return "ShiftRuntime: state diverged after restore"
    return None


def _round_trip_database(rng: random.Random) -> str | None:
    from repro.core.database import ProfilingDatabase
    from repro.core.persistence import database_from_dict, database_to_dict

    database = ProfilingDatabase()
    for i in range(rng.randint(1, 3)):
        key = (f"platform-{i}", f"workload-{i % 2}")
        idle = rng.uniform(20.0, 60.0)
        samples = []
        for _ in range(rng.randint(4, 8)):
            power = idle + rng.uniform(5.0, 150.0)
            samples.append((power, rng.uniform(1.0, 500.0)))
        database.ingest_training_run(key, idle, samples)
    before = database_to_dict(database)
    restored = database_from_dict(before)
    after = database_to_dict(restored)
    if _canon(before) != _canon(after):
        return "ProfilingDatabase: document diverged after restore"
    return None


def _round_trip_serve_config(rng: random.Random) -> str | None:
    from repro.serve.state import ServeConfig
    from repro.traces.nrel import Weather

    config = ServeConfig(
        platforms=(("E5-2620", rng.randint(1, 8)), ("i5-4460", rng.randint(1, 8))),
        workload=rng.choice(["SPECjbb", "Memcached"]),
        policy=rng.choice(["GreenHetero", "Uniform"]),
        n_racks=rng.randint(1, 4),
        weather=rng.choice(list(Weather)),
        seed=rng.randint(0, 10_000),
        shared_grid_w=rng.choice([None, rng.uniform(500.0, 5000.0)]),
        epoch_s=rng.choice([300.0, 900.0]),
        shift_horizon=rng.randint(1, 16),
    )
    before = config.to_dict()
    restored = ServeConfig.from_dict(before)
    after = restored.to_dict()
    if _canon(before) != _canon(after):
        return f"ServeConfig: {before!r} != {after!r}"
    return None


_ROUND_TRIPS = (
    _round_trip_predictor,
    _round_trip_queue,
    _round_trip_shift_runtime,
    _round_trip_database,
    _round_trip_serve_config,
)


def fuzz_round_trips(n_cases: int = 50, seed: int = 0) -> FuzzReport:
    """Run ``n_cases`` seeded round trips across every component kind.

    Deterministic for a given (n_cases, seed): failure ``i`` reproduces
    from ``random.Random(seed * 7919 + i)``.
    """
    failures: list[str] = []
    total = 0
    for i in range(n_cases):
        rng = random.Random(seed * 7919 + i)
        for round_trip in _ROUND_TRIPS:
            total += 1
            try:
                error = round_trip(rng)
            except Exception as exc:  # pragma: no cover - defect path
                error = f"{round_trip.__name__}: raised {exc!r}"
            if error is not None:
                failures.append(f"case {i}: {error}")
    return FuzzReport(n_cases=total, failures=tuple(failures))
