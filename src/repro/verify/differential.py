"""Differential checking of the PAR solver's three mechanisms.

The solver combines an analytic KKT enumeration, a dense grid sweep, and
an SLSQP polish, and normally reports only the arbitrated winner — so a
bug in one mechanism hides behind the others.  This module solves seeded
randomized programs with each mechanism *forced*
(:meth:`~repro.core.solver.PARSolver.solve_via`) and cross-checks them:

* every returned solution must be feasible (budget and per-server box);
* the grid sweep may never beat the exact KKT enumeration (the programs
  are strictly concave quadratics, for which KKT is provably optimal);
* SLSQP must agree with KKT to :data:`SLSQP_REL_TOL`;
* the grid may lag KKT by at most :data:`GRID_REL_SLACK` (its step is
  coarse, but a larger gap means a mechanism is broken).

Cases are generated from a deterministic seed, so the corpus doubles as
a regression suite: a failure reproduces bit-identically from its case
seed.  Budgets are floored well above the subset's power-on cliff —
right at the cliff the coarse grid legitimately loses whole groups,
which would drown real failures in step-size noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.database import FitKind, PerfPowerFit
from repro.core.solver import FEASIBILITY_SLACK_W, GroupModel, PARSolver

#: Required relative agreement between the SLSQP path and exact KKT.
SLSQP_REL_TOL = 1e-3

#: The coarse grid sweep may lag the exact optimum by at most this
#: fraction (empirical over the deterministic corpus; generous because
#: 3-group racks sweep at the coarse granularity).
GRID_REL_SLACK = 0.25

#: Tight tolerance for "grid must not beat exact KKT" (pure float slack).
EXACT_REL_TOL = 1e-9


@dataclass(frozen=True)
class CaseOutcome:
    """One differential case: the program, the per-method scores, and
    any cross-check failures (empty means the case passed)."""

    case_seed: int
    n_groups: int
    budget_w: float
    perf: tuple[tuple[str, float], ...]
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class DifferentialReport:
    """Corpus-level result of :func:`run_differential`."""

    n_cases: int
    seed: int
    failures: tuple[CaseOutcome, ...]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.passed:
            return f"differential: {self.n_cases} cases, all mechanisms agree"
        lines = [
            f"differential: {len(self.failures)}/{self.n_cases} cases FAILED"
        ]
        for outcome in self.failures[:10]:
            lines.append(
                f"  case seed={outcome.case_seed} "
                f"(k={outcome.n_groups}, budget={outcome.budget_w:.1f} W): "
                + "; ".join(outcome.failures)
            )
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        return "\n".join(lines)


def random_case(
    rng: random.Random, safety_margin: float = 0.05
) -> tuple[tuple[GroupModel, ...], float]:
    """One seeded random PAR program with a strictly concave objective.

    Each group gets a concave increasing quadratic (vertex at or beyond
    the plateau, positive performance at the power-on point), so the KKT
    enumeration is provably exact and every cross-mechanism disagreement
    indicts a mechanism, not the program.  The budget is floored at 1.4x
    the all-groups power-on total to stay clear of the cliffs where the
    coarse grid legitimately drops groups.
    """
    k = rng.randint(1, 3)
    groups = []
    for i in range(k):
        count = rng.randint(1, 6)
        min_p = rng.uniform(40.0, 120.0)
        max_p = min_p * rng.uniform(1.5, 3.0)
        l = -rng.uniform(0.01, 0.5)
        vertex = max_p * rng.uniform(1.0, 1.5)
        m = -2.0 * l * vertex
        perf_at_min = rng.uniform(10.0, 100.0)
        n = perf_at_min - (l * min_p**2 + m * min_p)
        fit = PerfPowerFit(
            coefficients=(l, m, n),
            min_power_w=min_p,
            max_power_w=max_p,
            kind=FitKind.QUADRATIC,
        )
        groups.append(GroupModel(name=f"g{i}", count=count, fit=fit))
    power_on_total = sum(
        g.count * g.fit.min_power_w * (1.0 + safety_margin) for g in groups
    )
    budget = power_on_total * rng.uniform(1.4, 3.0)
    return tuple(groups), budget


def check_case(
    solver: PARSolver,
    groups: tuple[GroupModel, ...],
    budget_w: float,
    case_seed: int,
) -> CaseOutcome:
    """Solve one program three ways and cross-check the results."""
    solutions = {
        method: solver.solve_via(groups, budget_w, method)
        for method in PARSolver.METHODS
    }
    failures: list[str] = []

    for method, sol in solutions.items():
        total = sum(g.count * p for g, p in zip(groups, sol.per_server_w))
        if total > budget_w + FEASIBILITY_SLACK_W:
            failures.append(
                f"{method}: infeasible, allocates {total:.6f} W "
                f"over budget {budget_w:.6f} W"
            )
        for g, p in zip(groups, sol.per_server_w):
            if p > 0 and p > g.fit.max_power_w + 1e-9:
                failures.append(
                    f"{method}: group {g.name} allocated {p:.6f} W above "
                    f"its plateau {g.fit.max_power_w:.6f} W"
                )

    kkt = solutions["kkt"].expected_perf
    grid = solutions["grid"].expected_perf
    slsqp = solutions["slsqp"].expected_perf

    # For strictly concave quadratics KKT is exact — nothing may beat it.
    ceiling = kkt * (1.0 + EXACT_REL_TOL) + 1e-6
    if grid > ceiling:
        failures.append(
            f"grid ({grid:.9f}) beats the exact KKT optimum ({kkt:.9f})"
        )
    if abs(slsqp - kkt) > SLSQP_REL_TOL * max(abs(kkt), 1.0):
        failures.append(
            f"slsqp ({slsqp:.9f}) disagrees with KKT ({kkt:.9f}) "
            f"beyond rel tol {SLSQP_REL_TOL}"
        )
    if grid < (1.0 - GRID_REL_SLACK) * kkt:
        failures.append(
            f"grid ({grid:.9f}) lags KKT ({kkt:.9f}) by more than "
            f"{GRID_REL_SLACK:.0%}"
        )

    return CaseOutcome(
        case_seed=case_seed,
        n_groups=len(groups),
        budget_w=budget_w,
        perf=tuple((m, solutions[m].expected_perf) for m in PARSolver.METHODS),
        failures=tuple(failures),
    )


def run_differential(n_cases: int = 200, seed: int = 0) -> DifferentialReport:
    """Run the seeded corpus; deterministic for a given (n_cases, seed)."""
    solver = PARSolver(cache_size=0)
    failures: list[CaseOutcome] = []
    for i in range(n_cases):
        case_seed = seed * 1_000_003 + i
        rng = random.Random(case_seed)
        groups, budget_w = random_case(rng, safety_margin=solver.safety_margin)
        outcome = check_case(solver, groups, budget_w, case_seed)
        if not outcome.ok:
            failures.append(outcome)
    return DifferentialReport(
        n_cases=n_cases, seed=seed, failures=tuple(failures)
    )
