"""Profiling-database and predictor persistence.

The paper's database "provides the power consumption and throughput
projection for all workloads and server configurations *it has ever
executed*" — knowledge that must survive controller restarts, or every
reboot pays the training-run cost again for every pair.  This module
serialises a :class:`~repro.core.database.ProfilingDatabase` to a
versioned JSON document and restores it bit-for-bit (samples, envelopes,
and the current fits), and does the same for the Holt predictors so a
long-lived deployment (the :mod:`repro.serve` daemon) can checkpoint its
entire learned state.

The format is deliberately plain JSON: operators can inspect and diff
the learned projections, and foreign tools can consume them.  All
serialisation goes through the database's public snapshot API
(:meth:`~repro.core.database.ProfilingDatabase.snapshot` /
:meth:`~repro.core.database.ProfilingDatabase.restore_entry`); nothing
here touches private state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.database import (
    DatabaseEntry,
    FitKind,
    PerfPowerFit,
    ProfilingDatabase,
)
from repro.core.predictor import HoltPredictor
from repro.errors import ConfigurationError

#: Format version written into every document; bump on breaking changes.
FORMAT_VERSION = 1


def database_to_dict(db: ProfilingDatabase) -> dict[str, Any]:
    """Serialise ``db`` into a JSON-ready dictionary."""
    entries = []
    for entry in db.snapshot():
        record: dict[str, Any] = {
            "platform": entry.key[0],
            "workload": entry.key[1],
            "idle_power_w": entry.idle_power_w,
            "max_power_w": entry.max_power_w,
            "min_active_power_w": (
                None
                if entry.min_active_power_w == float("inf")
                else entry.min_active_power_w
            ),
            "powers": list(entry.powers),
            "perfs": list(entry.perfs),
        }
        if entry.fit is not None:
            record["fit"] = {
                "coefficients": list(entry.fit.coefficients),
                "min_power_w": entry.fit.min_power_w,
                "max_power_w": entry.fit.max_power_w,
                "kind": entry.fit.kind.name,
                "n_samples": entry.fit.n_samples,
            }
        entries.append(record)
    return {
        "format_version": FORMAT_VERSION,
        "fit_kind": db.fit_kind.name,
        "max_samples": db.max_samples,
        "entries": entries,
    }


def database_from_dict(data: dict[str, Any]) -> ProfilingDatabase:
    """Rebuild a database from :func:`database_to_dict` output.

    Raises
    ------
    ConfigurationError
        On version mismatch or malformed documents.
    """
    try:
        version = data["format_version"]
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported database format version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        db = ProfilingDatabase(
            fit_kind=FitKind[data["fit_kind"]],
            max_samples=int(data["max_samples"]),
        )
        for record in data["entries"]:
            fit_doc = record.get("fit")
            fit = None
            if fit_doc is not None:
                fit = PerfPowerFit(
                    coefficients=tuple(fit_doc["coefficients"]),
                    min_power_w=fit_doc["min_power_w"],
                    max_power_w=fit_doc["max_power_w"],
                    kind=FitKind[fit_doc["kind"]],
                    n_samples=int(fit_doc["n_samples"]),
                )
            min_active = record["min_active_power_w"]
            db.restore_entry(
                DatabaseEntry(
                    key=(record["platform"], record["workload"]),
                    idle_power_w=record["idle_power_w"],
                    max_power_w=record["max_power_w"],
                    min_active_power_w=(
                        float("inf") if min_active is None else float(min_active)
                    ),
                    powers=tuple(float(p) for p in record["powers"]),
                    perfs=tuple(float(p) for p in record["perfs"]),
                    fit=fit,
                )
            )
        return db
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed database document: {exc}") from exc


def save_database(db: ProfilingDatabase, path: str | Path) -> None:
    """Write ``db`` as pretty-printed JSON at ``path``."""
    document = database_to_dict(db)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_database(path: str | Path) -> ProfilingDatabase:
    """Read a database JSON document from ``path``.

    Raises
    ------
    ConfigurationError
        If the file is not valid JSON or not a database document.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read database from {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path} does not contain a database document")
    return database_from_dict(data)


# ----------------------------------------------------------------------
# Predictor state
# ----------------------------------------------------------------------


def predictor_to_dict(predictor: HoltPredictor) -> dict[str, Any]:
    """Serialise a Holt predictor (constants + streaming state)."""
    return {"format_version": FORMAT_VERSION, **predictor.state_dict()}


def predictor_from_dict(data: dict[str, Any]) -> HoltPredictor:
    """Rebuild a predictor from :func:`predictor_to_dict` output.

    Raises
    ------
    ConfigurationError
        On version mismatch or malformed documents.
    """
    if not isinstance(data, dict):
        raise ConfigurationError("predictor document must be a JSON object")
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported predictor format version {version} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return HoltPredictor.from_state_dict(data)
