"""Cluster-level coordination across racks (the paper's future work).

GreenHetero deploys one controller per rack, and the paper notes the
cost: "the renewable power and energy storage systems for each rack ...
are independent and cannot share their capacities" (Section IV-A), with
cross-rack coordination left as future work.  This module implements the
natural next step: a :class:`ClusterCoordinator` that owns a *shared*
grid budget and re-divides it across rack controllers every epoch.

Two division strategies are provided:

``GridSplit.EQUAL``
    Every rack gets the same share — the cluster-level analogue of the
    Uniform policy, blind to how starved each rack is.

``GridSplit.SHORTFALL``
    Each rack's share is proportional to its predicted *green shortfall*
    (demand minus renewable minus battery capability, floored at zero) —
    heterogeneity-awareness one level up: racks whose green supply
    covers them cede grid budget to racks in the dark.

The ablation bench quantifies the gap between the two, mirroring the
paper's rack-level result at cluster scale.
"""

from __future__ import annotations

import enum

from repro.core.controller import EpochRecord, GreenHeteroController
from repro.errors import ConfigurationError, PowerError


class GridSplit(enum.Enum):
    """How the shared grid budget is divided across racks."""

    EQUAL = "equal"
    SHORTFALL = "shortfall"


class ClusterCoordinator:
    """Drives several rack controllers against one shared grid budget.

    Parameters
    ----------
    controllers:
        One :class:`GreenHeteroController` per rack.  Each keeps its own
        solar feed and battery (the distributed design of Fig. 2); only
        the grid is shared.
    shared_grid_budget_w:
        Total grid power available to the cluster at any instant.
    split:
        Division strategy applied at the start of every epoch.
    """

    def __init__(
        self,
        controllers: list[GreenHeteroController],
        shared_grid_budget_w: float,
        split: GridSplit = GridSplit.SHORTFALL,
    ) -> None:
        if not controllers:
            raise ConfigurationError("a cluster needs at least one rack controller")
        if shared_grid_budget_w < 0:
            raise PowerError("shared grid budget must be non-negative")
        self.controllers = list(controllers)
        self.shared_grid_budget_w = shared_grid_budget_w
        self.split = split

    # ------------------------------------------------------------------
    def _predicted_shortfall_w(self, controller: GreenHeteroController, time_s: float) -> float:
        """Green shortfall forecast for one rack (>= 0 W).

        Uses the rack's own Holt forecasts when primed, falling back to
        current metered values on the very first epoch.
        """
        scheduler = controller.scheduler
        if scheduler.renewable_predictor.ready and scheduler.demand_predictor.ready:
            renewable, demand = scheduler.forecast()
        else:
            renewable = controller.pdu.renewable.power_at(time_s)
            demand = controller.rack.demand_at_load(1.0)
        battery_power = controller.pdu.battery.max_discharge_power_w(controller.epoch_s)
        return max(0.0, demand - renewable - battery_power)

    def grid_shares_w(self, time_s: float) -> list[float]:
        """This epoch's per-rack grid budgets under the active strategy."""
        n = len(self.controllers)
        if self.split is GridSplit.EQUAL:
            return [self.shared_grid_budget_w / n] * n
        shortfalls = [
            self._predicted_shortfall_w(c, time_s) for c in self.controllers
        ]
        total = sum(shortfalls)
        if total <= 0.0:
            return [self.shared_grid_budget_w / n] * n
        return [self.shared_grid_budget_w * s / total for s in shortfalls]

    # ------------------------------------------------------------------
    def run_epoch(
        self, time_s: float, load_fractions: list[float] | None = None
    ) -> list[EpochRecord]:
        """Divide the grid, then run every rack's epoch.

        Parameters
        ----------
        time_s:
            Epoch start time (shared across racks).
        load_fractions:
            Per-rack offered load; defaults to full load everywhere.
        """
        if load_fractions is None:
            load_fractions = [1.0] * len(self.controllers)
        if len(load_fractions) != len(self.controllers):
            raise ConfigurationError(
                "need one load fraction per rack controller"
            )
        shares = self.grid_shares_w(time_s)
        records: list[EpochRecord] = []
        # The per-epoch share is a temporary overlay on each rack's
        # provisioned grid budget; restore the provisioned value after
        # the epoch so the racks are unchanged outside coordination.
        provisioned = [c.pdu.grid.budget_w for c in self.controllers]
        try:
            for controller, share, load in zip(
                self.controllers, shares, load_fractions, strict=True
            ):
                controller.pdu.grid.budget_w = share
                records.append(controller.run_epoch(time_s, load_fraction=load))
        finally:
            for controller, budget in zip(
                self.controllers, provisioned, strict=True
            ):
                controller.pdu.grid.budget_w = budget
        return records

    # ------------------------------------------------------------------
    def aggregate_throughput(self, records: list[EpochRecord]) -> float:
        """Cluster throughput for one epoch's records."""
        if len(records) != len(self.controllers):
            raise ConfigurationError("records must match the controller list")
        return sum(r.throughput for r in records)
