"""The Enforcer: Power Source Controller + Server Power Controller (Fig. 4).

Once the scheduler has decided the power sources and the PAR, the
Enforcer implements both decisions:

* :class:`PowerSourceController` (PSC) drives the PDU/ATS: which sources
  feed the rack, whether the battery may discharge, and who charges it.
* :class:`ServerPowerController` (SPC) converts each group's power share
  into a per-server budget and maps that budget onto the platform's
  ordered power-state set (DVFS level, sleep, or off) — the paper's
  linear power-to-state mapping (Section IV-B.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sources import SourceDecision
from repro.errors import PowerError
from repro.power.pdu import PDU, EpochFlows
from repro.servers.power_model import ServerPowerModel


@dataclass(frozen=True)
class EnforcedAllocation:
    """What the SPC actually set, per group.

    Attributes
    ----------
    per_server_budget_w:
        The power cap handed to each server of each group.
    state_indices:
        The power state each group's servers were switched to.
    """

    per_server_budget_w: tuple[float, ...]
    state_indices: tuple[int, ...]


class ServerPowerController:
    """Maps group power shares onto per-server DVFS states."""

    @staticmethod
    def apply(
        server_groups: list[list[ServerPowerModel]],
        group_budgets_w: tuple[float, ...] | list[float],
        powered_counts: tuple[int, ...] | None = None,
    ) -> EnforcedAllocation:
        """Enforce ``group_budgets_w`` (total watts per group).

        By default the budget is split evenly inside each group — the
        paper distributes the same power to same-type servers — and each
        server's SPC picks the highest power state whose full-load draw
        fits the per-server share.  With ``powered_counts`` (the
        partial-group extension) only the first ``k`` servers of each
        group share the budget; the rest are switched off.

        Raises
        ------
        PowerError
            On a negative budget, a group-count mismatch, or a powered
            count outside ``[0, len(group)]``.
        """
        if len(server_groups) != len(group_budgets_w):
            raise PowerError(
                f"{len(group_budgets_w)} budgets for {len(server_groups)} groups"
            )
        if powered_counts is not None and len(powered_counts) != len(server_groups):
            raise PowerError("powered_counts must match the group count")
        per_server: list[float] = []
        states: list[int] = []
        for g, (servers, budget) in enumerate(zip(server_groups, group_budgets_w)):
            if budget < 0:
                raise PowerError(f"group budget must be non-negative, got {budget}")
            k = len(servers) if powered_counts is None else powered_counts[g]
            if not 0 <= k <= len(servers):
                raise PowerError(
                    f"powered count {k} outside [0, {len(servers)}]"
                )
            share = 0.0 if k == 0 else budget / k
            state_index = 0
            for i, server in enumerate(servers):
                state = server.enforce_budget(share if i < k else 0.0)
                if i < k or k == 0:
                    state_index = state.index if i < k else 0
            per_server.append(share)
            states.append(state_index)
        return EnforcedAllocation(tuple(per_server), tuple(states))


class PowerSourceController:
    """Executes a :class:`SourceDecision` against the rack's PDU."""

    def __init__(self, pdu: PDU) -> None:
        self.pdu = pdu

    def apply(
        self,
        decision: SourceDecision,
        actual_load_w: float,
        time_s: float,
        duration_s: float,
    ) -> EpochFlows:
        """Supply ``actual_load_w`` under the decided source plan."""
        return self.pdu.supply(
            load_w=actual_load_w,
            time_s=time_s,
            duration_s=duration_s,
            use_battery=decision.use_battery,
            grid_charges_battery=decision.grid_charges_battery,
            battery_cap_w=decision.battery_cap_w,
        )


class Enforcer:
    """PSC + SPC bundle, one per rack controller."""

    def __init__(self, pdu: PDU) -> None:
        self.psc = PowerSourceController(pdu)
        self.spc = ServerPowerController()
