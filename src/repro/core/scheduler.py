"""The Adaptive Scheduler (paper Fig. 5).

The scheduler is the decision core of GreenHetero.  Each epoch it:

1. forecasts next-epoch renewable supply and rack demand with two Holt
   predictors (Eq. 2-4), trained on history (Eq. 5);
2. selects the power sources and the rack power budget (Cases A/B/C);
3. checks the profiling database and requests a training run for any
   (configuration, workload) pair it has never seen (Algorithm 1,
   lines 3-5);
4. asks the active policy for the PAR vector; and
5. after execution, feeds the observed samples back into the database
   and re-fits (Algorithm 1, lines 8-10) — when the policy enables the
   optimisation.

The scheduler is deliberately free of simulation concerns: it consumes
observations and emits decisions, so it could drive real hardware.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.database import PairKey, ProfilingDatabase
from repro.core.monitor import ServerObservation
from repro.core.policies import (
    AllocationContext,
    AllocationPlan,
    GroupInfo,
    Policy,
)
from repro.core.predictor import HoltPredictor
from repro.core.sources import SourceDecision, SourceSelector
from repro.errors import ConfigurationError
from repro.obs.tracing import trace
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource


class AdaptiveScheduler:
    """Predictor + database + solver-policy + source selection.

    Parameters
    ----------
    policy:
        The allocation policy (any Table III entry).
    database:
        The profiling database; shared with nobody else.
    renewable_predictor / demand_predictor:
        Holt forecasters; fresh defaults are created when omitted.
    selector:
        The Case A/B/C source selector.
    """

    def __init__(
        self,
        policy: Policy,
        database: ProfilingDatabase | None = None,
        renewable_predictor: HoltPredictor | None = None,
        demand_predictor: HoltPredictor | None = None,
        selector: SourceSelector | None = None,
    ) -> None:
        self.policy = policy
        self.database = database if database is not None else ProfilingDatabase()
        self.renewable_predictor = renewable_predictor or HoltPredictor(alpha=0.7, beta=0.2)
        self.demand_predictor = demand_predictor or HoltPredictor(alpha=0.6, beta=0.1)
        self.selector = selector or SourceSelector()
        #: When set, :meth:`forecast` reports this demand instead of the
        #: Holt forecast.  A Holt predictor extrapolates trends, so the
        #: step changes a temporal-shifting plan imposes (batch groups
        #: starting and stopping at full power) would swing its forecast
        #: wildly; the shift runtime knows the planned draw exactly and
        #: injects it here for the epochs it gates.
        self.demand_override_w: float | None = None

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def pretrain_predictors(
        self,
        renewable_history: Sequence[float],
        demand_history: Sequence[float],
    ) -> None:
        """Train alpha/beta on past records (Eq. 5) and prime the state."""
        self.renewable_predictor = HoltPredictor.fit(renewable_history)
        self.demand_predictor = HoltPredictor.fit(demand_history)

    def observe(self, renewable_w: float, demand_w: float) -> None:
        """Absorb this epoch's metered renewable output and rack demand."""
        self.renewable_predictor.observe(renewable_w)
        self.demand_predictor.observe(demand_w)

    def forecast(self) -> tuple[float, float]:
        """(renewable, demand) forecasts for the next epoch.

        Raises
        ------
        ConfigurationError
            Before the first observation; prime with
            :meth:`pretrain_predictors` or :meth:`observe` first.
        """
        with trace("scheduler.forecast"):
            if not self.renewable_predictor.ready or not self.demand_predictor.ready:
                raise ConfigurationError(
                    "predictors have no history; call observe() or "
                    "pretrain_predictors() first"
                )
            demand_hat = (
                self.demand_override_w
                if self.demand_override_w is not None
                else self.demand_predictor.predict()
            )
            return self.renewable_predictor.predict(), demand_hat

    # ------------------------------------------------------------------
    # Source selection
    # ------------------------------------------------------------------
    def plan_sources(
        self, battery: BatteryBank, grid: GridSource, duration_s: float
    ) -> SourceDecision:
        """Case A/B/C selection from the current forecasts."""
        with trace("scheduler.select"):
            renewable_hat, demand_hat = self.forecast()
            return self.selector.decide(
                predicted_renewable_w=renewable_hat,
                predicted_demand_w=demand_hat,
                battery=battery,
                grid=grid,
                duration_s=duration_s,
            )

    # ------------------------------------------------------------------
    # Database interaction (Algorithm 1)
    # ------------------------------------------------------------------
    def missing_pairs(self, groups: Sequence[GroupInfo]) -> list[PairKey]:
        """Pairs with no relational equation yet (Algorithm 1 line 3)."""
        return [g.key for g in groups if g.key not in self.database]

    def ingest_training_run(
        self, key: PairKey, idle_power_w: float, samples: list[tuple[float, float]]
    ) -> None:
        """Algorithm 1 lines 4-5: add a new relational projection."""
        self.database.ingest_training_run(key, idle_power_w, samples)

    def feed_back(self, observations: Sequence[ServerObservation], groups: Sequence[GroupInfo]) -> None:
        """Algorithm 1 lines 8-10: absorb execution feedback and re-fit.

        No-op when the active policy disables the optimisation
        (GreenHetero-a) or an observation carries no useful signal
        (sleeping server).
        """
        if not self.policy.updates_database:
            return
        touched: set[PairKey] = set()
        for obs in observations:
            if obs.throughput <= 0.0:
                continue
            key = groups[obs.group_index].key
            self.database.add_sample(key, obs.power_w, obs.throughput)
            touched.add(key)
        for key in touched:
            self.database.refit(key)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_plan(
        self,
        budget_w: float,
        groups: Sequence[GroupInfo],
        oracle: Callable[[tuple[float, ...]], float] | None = None,
    ) -> AllocationPlan:
        """Ask the policy for this epoch's full allocation plan."""
        with trace("scheduler.solve"):
            ctx = AllocationContext(
                budget_w=budget_w,
                groups=tuple(groups),
                database=self.database,
                oracle=oracle,
            )
            return self.policy.allocate_plan(ctx)

    def allocate(
        self,
        budget_w: float,
        groups: Sequence[GroupInfo],
        oracle: Callable[[tuple[float, ...]], float] | None = None,
    ) -> tuple[float, ...]:
        """Ask the policy for this epoch's PAR vector."""
        return self.allocate_plan(budget_w, groups, oracle).ratios
