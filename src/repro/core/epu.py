"""Effective Power Utilization (paper Eq. 1).

    EPU = sum(P_throughput) / sum(P_supply)

``P_throughput`` is the green power *directly used to generate workload
throughput* — the wall power drawn by servers that are actually producing
output — and ``P_supply`` is the power supplied to the rack.  EPU is 1.0
when every supplied watt turns into computation; it drops when power is
allocated to servers that cannot use it (below idle power, above the
workload's maximum draw, or to servers parked asleep).

Unlike PUE, which measures facility overhead, EPU measures *allocation*
quality, which is why the paper introduces it (Section III-A).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import PowerError


def useful_power(draws_w: Sequence[float], throughputs: Sequence[float]) -> float:
    """Power drawn by servers producing non-zero throughput (W).

    Parameters
    ----------
    draws_w:
        Wall power drawn by each server.
    throughputs:
        Corresponding delivered throughput; a server contributes its draw
        to ``P_throughput`` only when this is positive.
    """
    if len(draws_w) != len(throughputs):
        raise PowerError("draws and throughputs must have equal length")
    total = 0.0
    for draw, perf in zip(draws_w, throughputs):
        if draw < 0:
            raise PowerError(f"negative power draw: {draw}")
        if perf > 0.0:
            total += draw
    return total


def effective_power_utilization(
    p_throughput_w: float | Iterable[float],
    p_supply_w: float | Iterable[float],
) -> float:
    """EPU over one interval or a whole run (Eq. 1).

    Accepts scalars (one interval) or iterables (summed over a run).
    Returns 0.0 when no power was supplied.

    Raises
    ------
    PowerError
        If throughput power exceeds supplied power (allocation accounting
        must never create energy) or either quantity is negative.
    """
    throughput = (
        float(p_throughput_w)
        if isinstance(p_throughput_w, (int, float))
        else float(sum(p_throughput_w))
    )
    supply = (
        float(p_supply_w)
        if isinstance(p_supply_w, (int, float))
        else float(sum(p_supply_w))
    )
    if throughput < 0 or supply < 0:
        raise PowerError("power totals must be non-negative")
    if supply == 0.0:
        return 0.0
    if throughput > supply * (1.0 + 1e-9):
        raise PowerError(
            f"P_throughput ({throughput:.3f} W) exceeds P_supply ({supply:.3f} W)"
        )
    return min(throughput / supply, 1.0)
