"""The PAR problem solver (paper Section IV-B.3, Eq. 6-8).

Given the profiling database's quadratic projections
``Perf_i = f(l_i, m_i, n_i, Power_i)`` for each server group, the solver
finds the power allocation ratio (PAR) vector that maximises aggregate
rack performance:

    maximize   sum_i  count_i * f_i(eta_i * P / count_i)
    subject to sum_i eta_i <= 1,  eta_i >= 0

with the paper's boundary semantics baked into every projection: a server
allocated less than its idle power produces nothing, and performance
plateaus beyond the workload's maximum draw.  Power the solver leaves
unallocated (``1 - sum eta_i``) flows to the battery when the renewable
supply is sufficient (Section IV-B.3).

Equal shares within a group are implicit — the paper distributes the same
power to same-type servers — so the decision variable is the *per-server*
power ``p_i`` in the box ``[min_i, max_i]``, with group totals
``count_i * p_i`` bounded by the budget.

Three mechanisms are combined for robustness:

1. **Subset enumeration** — powering a server below idle wastes the whole
   allocation, so the solver explicitly considers switching entire groups
   off (all 2^k - 1 non-empty subsets; the paper bounds k at 3).
2. **KKT candidate enumeration** — inside a subset the objective is a
   pure quadratic over a box intersected with one budget hyperplane, so
   every KKT point is the solution of a tiny linear system: each group is
   at its lower bound, upper bound, or free with equal marginal
   throughput-per-watt (the water-filling condition
   ``f_i'(p_i) = lambda``).  All candidates are enumerated and scored;
   this is exact for quadratic projections.
3. **Grid safety net** — a simplex sweep at configurable granularity
   guards against degenerate fits (non-concave parabolas from noisy
   samples, linear fall-backs) where the KKT enumeration may miss the
   global maximum.

The same machinery at 10% granularity with the *measured* objective is
exactly the paper's Manual baseline (:meth:`PARSolver.compositions`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import optimize

from repro.core.database import PerfPowerFit
from repro.errors import SolverError
from repro.obs.metrics import REGISTRY as _REGISTRY

# Process-wide solver telemetry (per-instance counters stay authoritative
# for cache_info(); these aggregate across every solver in the process).
_SOLVE_SECONDS = _REGISTRY.histogram(
    "repro_solver_solve_seconds", "PARSolver.solve wall time (cache hits included)"
)
_SOLVES_TOTAL = _REGISTRY.counter(
    "repro_solver_solves_total", "Solves by winning mechanism", labelnames=("method",)
)
_CACHE_LOOKUPS = _REGISTRY.counter(
    "repro_solver_cache_lookups_total", "Solve-cache lookups", labelnames=("result",)
)
_CACHE_HIT = _CACHE_LOOKUPS.labels("hit")
_CACHE_MISS = _CACHE_LOOKUPS.labels("miss")
_CACHE_STALE = _CACHE_LOOKUPS.labels("stale")

#: Feasibility slack shared by every mechanism: a solution may exceed the
#: budget by at most this many watts (floating-point headroom, far below
#: meter noise).
FEASIBILITY_SLACK_W = 1e-6


@dataclass(frozen=True)
class GroupModel:
    """One server group as the solver sees it.

    Attributes
    ----------
    name:
        Group label (platform name) for reporting.
    count:
        Number of identical servers in the group.
    fit:
        The database projection for (platform, workload).
    """

    name: str
    count: int
    fit: PerfPowerFit

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SolverError(f"group {self.name}: count must be >= 1")


@dataclass(frozen=True)
class PARSolution:
    """A solved allocation.

    Attributes
    ----------
    ratios:
        PAR vector: fraction of the total budget granted to each group
        (``sum <= 1``; the remainder is unallocated).
    per_server_w:
        Power cap for each server in each group (W).
    expected_perf:
        Projected aggregate performance under the database fits.
    method:
        Which mechanism produced the winner (``"kkt"``, ``"grid"``, or
        ``"uniform-fallback"``).
    """

    ratios: tuple[float, ...]
    per_server_w: tuple[float, ...]
    expected_perf: float
    method: str
    #: How many of each group's servers are powered; ``None`` means all
    #: (the paper's same-power-per-type rule).  Set by
    #: :class:`PartialGroupSolver`.
    powered_counts: tuple[int, ...] | None = None

    @property
    def allocated_fraction(self) -> float:
        """Share of the budget actually handed to servers."""
        return sum(self.ratios)


class PARSolver:
    """Finds the optimal PAR for up to a handful of server groups.

    Parameters
    ----------
    granularity:
        Step of the grid safety net for <= 2 groups (finer) — 3-group
        racks use ``coarse_granularity`` to keep the sweep cheap.
    coarse_granularity:
        Simplex step used when there are 3 or more groups.
    max_groups:
        Sanity bound; the paper's rack-level deployment caps at 3 types.
    cache_size:
        Capacity of the per-instance solve memoization cache (``0``
        disables it).  Solutions are keyed on the group fits'
        coefficients and bounds, the group counts, and the budget
        quantized to :data:`CACHE_BUDGET_QUANTUM_W` — so the cyclic
        budgets of a constrained-supply sweep, which re-pose the exact
        same program dozens of times per run, solve once.
    """

    #: Budget quantization step (W) for the memoization key.  Far below
    #: meter noise, so only numerically identical programs ever collide.
    CACHE_BUDGET_QUANTUM_W = 1e-6

    def __init__(
        self,
        granularity: float = 0.01,
        coarse_granularity: float = 0.04,
        max_groups: int = 4,
        safety_margin: float = 0.05,
        scipy_polish: bool = True,
        cache_size: int = 1024,
    ) -> None:
        if not 0.0 < granularity <= 0.5:
            raise SolverError("granularity must be in (0, 0.5]")
        if not 0.0 < coarse_granularity <= 0.5:
            raise SolverError("coarse granularity must be in (0, 0.5]")
        if safety_margin < 0:
            raise SolverError("safety margin must be non-negative")
        if cache_size < 0:
            raise SolverError("cache size must be non-negative")
        self.granularity = granularity
        self.coarse_granularity = coarse_granularity
        self.max_groups = max_groups
        self.safety_margin = safety_margin
        self.scipy_polish = scipy_polish
        self.cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stale_hits = 0
        self._cache: dict[tuple, PARSolution] = {}

    def _lo(self, fit: PerfPowerFit) -> float:
        """Effective lower power bound for allocation decisions.

        The database's power-on boundary is learned from noisy meter
        samples; allocating *exactly* at it risks landing just below the
        server's true lowest active draw and wasting the whole share (the
        power-on cliff).  A small relative margin keeps allocations
        safely above the cliff.
        """
        return min(fit.min_power_w * (1.0 + self.safety_margin), fit.max_power_w)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self, groups: Sequence[GroupModel], total_power_w: float) -> PARSolution:
        """Maximise projected rack performance under ``total_power_w``.

        Solutions are memoized per instance (see ``cache_size``): a call
        whose groups carry the same fitted coefficients/bounds and counts
        under the same quantized budget returns the cached
        :class:`PARSolution` (frozen, so sharing is safe) without
        re-running the enumeration.

        Raises
        ------
        SolverError
            On empty input, too many groups, or a negative budget.
        """
        self._validate_inputs(groups, total_power_w)
        start = perf_counter()
        try:
            if self.cache_size == 0:
                solution = self._solve_impl(groups, total_power_w)
                _SOLVES_TOTAL.labels(solution.method).inc()
                return solution
            key = self._cache_key(groups, total_power_w)
            cached = self._cache.get(key)
            if cached is not None:
                if self._feasible_for(cached, groups, total_power_w):
                    self.cache_hits += 1
                    _CACHE_HIT.inc()
                    _SOLVES_TOTAL.labels("cached").inc()
                    return cached
                # Stale hit: the quantized key collided with a solve done
                # under a (slightly) larger budget, so replaying the cached
                # allocation would overdraw this one.  Re-solve at the
                # exact budget and overwrite the entry — the replacement is
                # feasible for this and any larger budget in the quantum.
                self.cache_stale_hits += 1
                _CACHE_STALE.inc()
                solution = self._solve_impl(groups, total_power_w)
                _SOLVES_TOTAL.labels(solution.method).inc()
                self._cache[key] = solution
                return solution
            self.cache_misses += 1
            _CACHE_MISS.inc()
            solution = self._solve_impl(groups, total_power_w)
            _SOLVES_TOTAL.labels(solution.method).inc()
            if len(self._cache) >= self.cache_size:
                # FIFO eviction: dict preserves insertion order and the
                # adaptive policies retire old fits monotonically.
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = solution
            return solution
        finally:
            _SOLVE_SECONDS.observe(perf_counter() - start)

    #: Mechanisms :meth:`solve_via` can force.
    METHODS = ("kkt", "grid", "slsqp")

    def solve_via(
        self, groups: Sequence[GroupModel], total_power_w: float, method: str
    ) -> PARSolution:
        """Solve with exactly one mechanism — the differential-check API.

        ``method`` is one of :data:`METHODS`: ``"kkt"`` runs only the
        analytic KKT candidate enumeration, ``"grid"`` only the dense
        simplex sweep, and ``"slsqp"`` forces the scipy path (one SLSQP
        run per powered subset from a feasible interior start).  No
        memoization, no cross-mechanism arbitration — so
        :mod:`repro.verify.differential` can compare the mechanisms
        against each other.

        Raises
        ------
        SolverError
            On invalid inputs or an unknown ``method``.
        """
        self._validate_inputs(groups, total_power_w)
        if method not in self.METHODS:
            raise SolverError(
                f"unknown solve method {method!r}; expected one of {self.METHODS}"
            )
        k = len(groups)
        zero = PARSolution((0.0,) * k, (0.0,) * k, 0.0, method)
        if total_power_w == 0:
            return zero

        if method == "kkt":
            best_p: tuple[float, ...] = (0.0,) * k
            best_score = 0.0
            for candidate in self._kkt_candidates(groups, total_power_w):
                score = self._score(groups, candidate)
                if score > best_score:
                    best_p, best_score = candidate, score
        elif method == "grid":
            best_p, best_score = self._grid_best(groups, total_power_w)
        else:
            best_p, best_score = self._slsqp_best(groups, total_power_w)

        if best_score <= 0.0:
            return zero
        return self._to_solution(
            groups, tuple(best_p), best_score, method, total_power_w
        )

    def _slsqp_best(
        self, groups: Sequence[GroupModel], budget_w: float
    ) -> tuple[tuple[float, ...], float]:
        """Best SLSQP result over all feasible powered subsets."""
        k = len(groups)
        best_p: tuple[float, ...] = (0.0,) * k
        best_score = 0.0
        for powered in itertools.product((False, True), repeat=k):
            if not any(powered):
                continue
            on = [i for i in range(k) if powered[i]]
            lo = {i: self._lo(groups[i].fit) for i in on}
            min_total = sum(groups[i].count * lo[i] for i in on)
            if min_total > budget_w + FEASIBILITY_SLACK_W:
                continue
            # Feasible interior start: walk each group halfway from its
            # lower bound toward its plateau, scaled so the subset stays
            # inside the budget.
            span = {i: max(0.0, groups[i].fit.max_power_w - lo[i]) for i in on}
            denom = sum(groups[i].count * span[i] for i in on)
            t = 1.0 if denom <= 0 else min(1.0, (budget_w - min_total) / denom)
            start = [0.0] * k
            for i in on:
                start[i] = lo[i] + 0.5 * t * span[i]
            polished = self._polish(groups, budget_w, tuple(start))
            if polished is not None:
                p, score = polished
                if score > best_score:
                    best_p, best_score = p, score
        return best_p, best_score

    # ------------------------------------------------------------------
    # Memoization
    # ------------------------------------------------------------------
    def _validate_inputs(
        self, groups: Sequence[GroupModel], total_power_w: float
    ) -> None:
        if not groups:
            raise SolverError("need at least one group")
        if len(groups) > self.max_groups:
            raise SolverError(
                f"{len(groups)} groups exceeds max_groups={self.max_groups}"
            )
        if total_power_w < 0:
            raise SolverError(f"budget must be non-negative, got {total_power_w}")

    def _cache_key(
        self, groups: Sequence[GroupModel], total_power_w: float
    ) -> tuple:
        return (
            tuple(
                (g.count, g.fit.coefficients, g.fit.min_power_w, g.fit.max_power_w)
                for g in groups
            ),
            round(total_power_w / self.CACHE_BUDGET_QUANTUM_W),
        )

    @staticmethod
    def _feasible_for(
        solution: PARSolution, groups: Sequence[GroupModel], total_power_w: float
    ) -> bool:
        """Whether ``solution``'s allocation fits under ``total_power_w``.

        The budget quantization of :meth:`_cache_key` means a cached
        solution may have been produced under a budget up to half a
        quantum larger than the one now posed; replaying it would then
        allocate more than the rack is actually granted.  Validated with
        the solver's own :data:`FEASIBILITY_SLACK_W`, so a fresh solve
        (which is allowed that same slack) always validates.
        """
        counts = (
            solution.powered_counts
            if solution.powered_counts is not None
            else tuple(g.count for g in groups)
        )
        total = sum(k * p for k, p in zip(counts, solution.per_server_w))
        return total <= total_power_w + FEASIBILITY_SLACK_W

    def cache_info(self) -> dict[str, float]:
        """Hit/miss/stale counters and the current hit rate of the solve cache."""
        total = self.cache_hits + self.cache_misses + self.cache_stale_hits
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "stale_hits": self.cache_stale_hits,
            "size": len(self._cache),
            "hit_rate": self.cache_hits / total if total else 0.0,
        }

    def clear_cache(self) -> None:
        """Drop all memoized solutions and reset the counters."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stale_hits = 0

    def _solve_impl(
        self, groups: Sequence[GroupModel], total_power_w: float
    ) -> PARSolution:
        k = len(groups)
        zero = PARSolution((0.0,) * k, (0.0,) * k, 0.0, "kkt")
        if total_power_w == 0:
            return zero

        best_p: tuple[float, ...] = (0.0,) * k
        best_score = 0.0
        best_method = "kkt"

        for candidate in self._kkt_candidates(groups, total_power_w):
            score = self._score(groups, candidate)
            if score > best_score:
                best_p, best_score, best_method = candidate, score, "kkt"

        grid_p, grid_score = self._grid_best(groups, total_power_w)
        if grid_score > best_score + 1e-12:
            best_p, best_score, best_method = grid_p, grid_score, "grid"

        if self.scipy_polish and best_score > 0.0:
            polished = self._polish(groups, total_power_w, best_p)
            if polished is not None:
                p, score = polished
                if score > best_score + 1e-9:
                    best_p, best_score, best_method = p, score, "slsqp"

        if best_score <= 0.0:
            return zero
        return self._to_solution(groups, best_p, best_score, best_method, total_power_w)

    @staticmethod
    def compositions(k: int, granularity: float = 0.1) -> list[tuple[float, ...]]:
        """All PAR vectors summing to exactly 1 at ``granularity`` steps.

        This is the search space of the paper's Manual baseline (10%
        granularity, Table III).
        """
        if k < 1:
            raise SolverError("k must be >= 1")
        steps = round(1.0 / granularity)
        if abs(steps * granularity - 1.0) > 1e-9:
            raise SolverError("granularity must divide 1 evenly")
        out: list[tuple[float, ...]] = []
        for combo in itertools.combinations_with_replacement(range(k), steps):
            counts = [0] * k
            for idx in combo:
                counts[idx] += 1
            out.append(tuple(c * granularity for c in counts))
        return out

    @classmethod
    def exhaustive(
        cls,
        k: int,
        objective: Callable[[tuple[float, ...]], float],
        granularity: float = 0.1,
    ) -> tuple[tuple[float, ...], float]:
        """Try every composition and return the best (Manual's procedure).

        ``objective`` receives a PAR vector and returns measured rack
        performance; in the paper this is a physical trial run.
        """
        best_ratios: tuple[float, ...] | None = None
        best_value = -np.inf
        for ratios in cls.compositions(k, granularity):
            value = objective(ratios)
            if value > best_value:
                best_value = value
                best_ratios = ratios
        if best_ratios is None:  # pragma: no cover - compositions never empty
            raise SolverError("no composition evaluated")
        return best_ratios, float(best_value)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @staticmethod
    def _score(groups: Sequence[GroupModel], per_server_w: Sequence[float]) -> float:
        """Projected aggregate performance (clamped fits)."""
        return sum(
            g.count * g.fit.predict(p) for g, p in zip(groups, per_server_w)
        )

    def _to_solution(
        self,
        groups: Sequence[GroupModel],
        per_server_w: tuple[float, ...],
        score: float,
        method: str,
        total_power_w: float,
    ) -> PARSolution:
        # Never hand a server more than its plateau: trimming to max_w
        # keeps performance identical and releases power to the battery.
        trimmed = tuple(
            min(p, g.fit.max_power_w) if p > 0 else 0.0
            for g, p in zip(groups, per_server_w)
        )
        ratios = tuple(
            g.count * p / total_power_w for g, p in zip(groups, trimmed)
        )
        return PARSolution(
            ratios=ratios,
            per_server_w=trimmed,
            expected_perf=score,
            method=method,
        )

    # ------------------------------------------------------------------
    # KKT enumeration
    # ------------------------------------------------------------------
    def _kkt_candidates(
        self, groups: Sequence[GroupModel], budget_w: float
    ) -> Iterable[tuple[float, ...]]:
        k = len(groups)
        indices = range(k)
        for powered in itertools.product((False, True), repeat=k):
            if not any(powered):
                continue
            on = [i for i in indices if powered[i]]
            min_total = sum(groups[i].count * self._lo(groups[i].fit) for i in on)
            if min_total > budget_w:
                continue
            yield from self._subset_candidates(groups, on, budget_w)

    def _subset_candidates(
        self, groups: Sequence[GroupModel], on: list[int], budget_w: float
    ) -> Iterable[tuple[float, ...]]:
        """KKT points for a fixed powered subset."""
        k = len(groups)

        def assemble(values: dict[int, float]) -> tuple[float, ...] | None:
            p = [0.0] * k
            total = 0.0
            for i in on:
                v = values[i]
                fit = groups[i].fit
                lo = self._lo(fit)
                if v < lo - 1e-9 or v > fit.max_power_w + 1e-9:
                    return None
                v = min(max(v, lo), fit.max_power_w)
                p[i] = v
                total += groups[i].count * v
            if total > budget_w + FEASIBILITY_SLACK_W:
                return None
            return tuple(p)

        # Each powered group is at LO, HI, or FREE.
        for assignment in itertools.product(("lo", "hi", "free"), repeat=len(on)):
            fixed: dict[int, float] = {}
            free: list[int] = []
            for i, tag in zip(on, assignment):
                fit = groups[i].fit
                if tag == "lo":
                    fixed[i] = self._lo(fit)
                elif tag == "hi":
                    fixed[i] = fit.max_power_w
                else:
                    free.append(i)

            fixed_total = sum(groups[i].count * fixed[i] for i in fixed)
            if not free:
                candidate = assemble(fixed)
                if candidate is not None:
                    yield candidate
                continue

            # Budget-slack stationary point: f_i'(p_i) = 0 for free i.
            interior: dict[int, float] = dict(fixed)
            ok = True
            for i in free:
                fit = groups[i].fit
                if abs(fit.l) < 1e-15:
                    ok = False  # linear fit: no interior stationary point
                    break
                interior[i] = -fit.m / (2.0 * fit.l)
            if ok:
                candidate = assemble(interior)
                if candidate is not None:
                    yield candidate

            # Budget-tight stationary point: f_i'(p_i) = lambda for free i,
            # sum count_i p_i = budget.  Solve the 1-D linear system for
            # lambda: p_i = (lambda - m_i) / (2 l_i).
            denom = 0.0
            offset = 0.0
            degenerate = False
            for i in free:
                fit = groups[i].fit
                if abs(fit.l) < 1e-15:
                    degenerate = True
                    break
                denom += groups[i].count / (2.0 * fit.l)
                offset += groups[i].count * fit.m / (2.0 * fit.l)
            if degenerate or abs(denom) < 1e-15:
                continue
            remaining = budget_w - fixed_total
            lam = (remaining + offset) / denom
            tight: dict[int, float] = dict(fixed)
            for i in free:
                fit = groups[i].fit
                tight[i] = (lam - fit.m) / (2.0 * fit.l)
            candidate = assemble(tight)
            if candidate is not None:
                yield candidate

    # ------------------------------------------------------------------
    # SLSQP polish: refine the winning candidate within its powered
    # subset's box.  Exact KKT already handles pure quadratics; the
    # polish pays off when the grid's coarse step won (3-group racks,
    # degenerate fits).
    # ------------------------------------------------------------------
    def _polish(
        self,
        groups: Sequence[GroupModel],
        budget_w: float,
        start: tuple[float, ...],
    ) -> tuple[tuple[float, ...], float] | None:
        on = [i for i, p in enumerate(start) if p > 0.0]
        if not on:
            return None
        bounds = [
            (self._lo(groups[i].fit), max(self._lo(groups[i].fit), groups[i].fit.max_power_w))
            for i in on
        ]
        counts = np.array([groups[i].count for i in on], dtype=float)
        x0 = np.array([min(max(start[i], b[0]), b[1]) for i, b in zip(on, bounds)])
        if counts @ x0 > budget_w + FEASIBILITY_SLACK_W:
            return None

        def negative_perf(x: np.ndarray) -> float:
            return -sum(
                groups[i].count * groups[i].fit.predict(float(xi))
                for i, xi in zip(on, x)
            )

        result = optimize.minimize(
            negative_perf,
            x0=x0,
            bounds=bounds,
            constraints=[
                {"type": "ineq", "fun": lambda x: budget_w - float(counts @ x)}
            ],
            method="SLSQP",
        )
        if not result.success:
            return None
        if float(counts @ result.x) > budget_w + FEASIBILITY_SLACK_W:
            return None
        p = [0.0] * len(groups)
        for i, xi in zip(on, result.x):
            p[i] = float(xi)
        return tuple(p), self._score(groups, p)

    # ------------------------------------------------------------------
    # Grid safety net (vectorised: the 3-group simplex has ~10^4 points)
    # ------------------------------------------------------------------
    def _predict_array(self, fit: PerfPowerFit, p: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`PerfPowerFit.predict` with the safety margin."""
        clamped = np.minimum(p, fit.max_power_w)
        values = np.maximum(np.polyval(fit.coefficients, clamped), 0.0)
        return np.where(p < self._lo(fit), 0.0, values)

    def _grid_best(
        self, groups: Sequence[GroupModel], budget_w: float
    ) -> tuple[tuple[float, ...], float]:
        k = len(groups)
        step = self.granularity if k <= 2 else self.coarse_granularity
        n_steps = int(round(1.0 / step))
        fractions = np.linspace(0.0, 1.0, n_steps + 1)

        grids = np.meshgrid(*([fractions] * k), indexing="ij")
        etas = np.stack([g.ravel() for g in grids], axis=0)  # (k, n_points)
        feasible = etas.sum(axis=0) <= 1.0 + 1e-12
        etas = etas[:, feasible]

        scores = np.zeros(etas.shape[1])
        for i, group in enumerate(groups):
            per_server = etas[i] * budget_w / group.count
            scores += group.count * self._predict_array(group.fit, per_server)

        best_idx = int(np.argmax(scores))
        best_p = tuple(
            float(etas[i, best_idx] * budget_w / groups[i].count) for i in range(k)
        )
        return best_p, float(scores[best_idx])


class PartialGroupSolver(PARSolver):
    """PAR optimisation with per-group partial power-on (beyond the paper).

    The paper distributes "the same amount of power to the same type of
    servers by default" — a group is all-on or all-off.  That loses
    exactly at the power-on cliffs: a budget that cannot lift all five
    Xeons above their minimum active draw wastes the whole group, even
    when it could have run three of them well.

    This solver additionally chooses *how many* servers of each group to
    power (``k_i`` of ``count_i``, each powered server still receiving an
    equal share):

        maximize   sum_i  k_i * f_i(p_i)
        subject to sum_i  k_i * p_i <= P,   p_i in [lo_i, hi_i],
                   k_i in {0 .. count_i}

    For each of the (count_i + 1)-way per-group choices — at most
    6^3 = 216 combinations at the paper's rack sizes — the inner problem
    is the base class's exact KKT enumeration with counts ``k``.
    """

    def _solve_impl(
        self, groups: Sequence[GroupModel], total_power_w: float
    ) -> PARSolution:
        """Maximise projected performance, also choosing powered counts.

        Returns a :class:`PARSolution` whose ``powered_counts`` states
        how many servers of each group share that group's budget.
        Reached through the base class's :meth:`solve`, which validates
        inputs and memoizes solutions.
        """
        combinations = 1
        for g in groups:
            combinations *= g.count + 1
        if combinations > 20_000:
            raise SolverError(
                f"{combinations} powered-count combinations exceed the "
                "exact enumeration budget; use PARSolver (group-granular) "
                "for racks this large"
            )

        n = len(groups)
        zero = PARSolution(
            (0.0,) * n, (0.0,) * n, 0.0, "kkt", powered_counts=(0,) * n
        )
        if total_power_w == 0:
            return zero

        best_p: tuple[float, ...] = (0.0,) * n
        best_k: tuple[int, ...] = (0,) * n
        best_score = 0.0

        for k in itertools.product(*(range(g.count + 1) for g in groups)):
            if not any(k):
                continue
            min_total = sum(
                ki * self._lo(g.fit) for ki, g in zip(k, groups) if ki > 0
            )
            if min_total > total_power_w:
                continue
            scaled = [
                GroupModel(g.name, ki, g.fit)
                for g, ki in zip(groups, k)
                if ki > 0
            ]
            on = list(range(len(scaled)))
            for candidate in self._subset_candidates(scaled, on, total_power_w):
                score = self._score(scaled, candidate)
                if score > best_score + 1e-12:
                    # Re-expand the candidate onto the original group axes.
                    expanded = [0.0] * n
                    j = 0
                    for i, ki in enumerate(k):
                        if ki > 0:
                            expanded[i] = candidate[j]
                            j += 1
                    best_p = tuple(expanded)
                    best_k = tuple(k)
                    best_score = score

        if best_score <= 0.0:
            return zero
        trimmed = tuple(
            min(p, g.fit.max_power_w) if p > 0 else 0.0
            for g, p in zip(groups, best_p)
        )
        ratios = tuple(
            ki * p / total_power_w for ki, p in zip(best_k, trimmed)
        )
        return PARSolution(
            ratios=ratios,
            per_server_w=trimmed,
            expected_perf=best_score,
            method="kkt-partial",
            powered_counts=best_k,
        )
