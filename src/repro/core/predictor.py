"""Power prediction: Holt double exponential smoothing (paper Eq. 2-5).

The paper notes that "any other proven prediction approaches can be
integrated into our prediction framework"; this module also ships two
classical baselines behind the same streaming interface —
:class:`PersistencePredictor` (tomorrow equals today) and
:class:`MovingAveragePredictor` — used by the predictor ablation bench.


At each scheduling epoch the scheduler predicts next-epoch renewable
generation and rack demand with Holt's linear method:

    Level:      S_t = alpha * O_t + (1 - alpha) * (S_{t-1} + B_{t-1})
    Trend:      B_t = beta  * (S_t - S_{t-1}) + (1 - beta) * B_{t-1}
    Prediction: P_{t+1} = S_t + B_t

The smoothing constants are trained on historical records by minimising
the sum of squared one-step prediction errors (Eq. 5) over the unit box
``0 <= alpha, beta <= 1``, using a coarse grid to seed a bounded
quasi-Newton refinement.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import optimize

from repro.errors import ConfigurationError
from repro.obs.metrics import REGISTRY as _REGISTRY

_FITS_TOTAL = _REGISTRY.counter(
    "repro_predictor_fits_total", "HoltPredictor.fit invocations"
)
_FIT_SECONDS = _REGISTRY.histogram(
    "repro_predictor_fit_seconds", "HoltPredictor.fit wall time"
)


class HoltPredictor:
    """Streaming Holt (double exponential smoothing) forecaster.

    Parameters
    ----------
    alpha:
        Level smoothing constant in [0, 1].
    beta:
        Trend smoothing constant in [0, 1].
    nonnegative:
        Clamp forecasts at zero — appropriate for power series, which
        cannot go negative (solar output, rack demand).
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.3, nonnegative: bool = True) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.nonnegative = nonnegative
        self._level: float | None = None
        self._trend: float = 0.0
        self._n_observed = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True once at least one observation has been absorbed."""
        return self._level is not None

    @property
    def level(self) -> float | None:
        """Current level estimate ``S_t``."""
        return self._level

    @property
    def trend(self) -> float:
        """Current trend estimate ``B_t``."""
        return self._trend

    def observe(self, value: float) -> None:
        """Absorb the epoch's observation ``O_t`` (Eq. 2-3).

        Standard Holt initialisation: the first observation seeds the
        level, the second seeds the trend (first difference), and the
        smoothing recurrences run from the second observation onward —
        identical to the scoring recursion in :meth:`sse`.
        """
        if self._level is None:
            self._level = float(value)
            self._trend = 0.0
        else:
            if self._n_observed == 1:
                self._trend = float(value) - self._level
            prev_level = self._level
            self._level = self.alpha * float(value) + (1.0 - self.alpha) * (
                prev_level + self._trend
            )
            self._trend = self.beta * (self._level - prev_level) + (
                1.0 - self.beta
            ) * self._trend
        self._n_observed += 1

    def predict(self, horizon: int = 1) -> float:
        """Forecast ``horizon`` epochs ahead (Eq. 4: level + h * trend).

        Raises
        ------
        ConfigurationError
            If called before any observation, or with ``horizon < 1``.
        """
        if self._level is None:
            raise ConfigurationError("predictor has no observations yet")
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        forecast = self._level + horizon * self._trend
        if self.nonnegative:
            forecast = max(0.0, forecast)
        return forecast

    def reset(self) -> None:
        """Forget all state but keep the trained constants."""
        self._level = None
        self._trend = 0.0
        self._n_observed = 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The predictor's full state as plain JSON-ready values.

        Captures the trained constants *and* the streaming state, so a
        restored predictor forecasts bit-identically to the original.
        """
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "nonnegative": self.nonnegative,
            "level": self._level,
            "trend": self._trend,
            "n_observed": self._n_observed,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "HoltPredictor":
        """Rebuild a predictor captured by :meth:`state_dict`.

        Raises
        ------
        ConfigurationError
            On missing keys or out-of-range constants.
        """
        try:
            predictor = cls(
                alpha=float(state["alpha"]),
                beta=float(state["beta"]),
                nonnegative=bool(state["nonnegative"]),
            )
            level = state["level"]
            predictor._level = None if level is None else float(level)
            predictor._trend = float(state["trend"])
            predictor._n_observed = int(state["n_observed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed predictor state: {exc}") from exc
        return predictor

    # ------------------------------------------------------------------
    # Training (Eq. 5)
    # ------------------------------------------------------------------
    @staticmethod
    def sse(history: Sequence[float], alpha: float, beta: float) -> float:
        """Sum of squared one-step-ahead errors over ``history``."""
        data = np.asarray(history, dtype=float)
        if len(data) < 3:
            raise ConfigurationError("need at least 3 observations to score")
        level = data[0]
        trend = data[1] - data[0]
        total = 0.0
        for obs in data[1:]:
            prediction = level + trend
            total += (obs - prediction) ** 2
            prev_level = level
            level = alpha * obs + (1.0 - alpha) * (level + trend)
            trend = beta * (level - prev_level) + (1.0 - beta) * trend
        return float(total)

    @staticmethod
    def sse_batch(
        history: Sequence[float],
        alphas: np.ndarray,
        betas: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`sse` over parallel arrays of (alpha, beta).

        Runs the scoring recursion once over the history with the whole
        candidate set as a vector, instead of once per candidate — the
        same floating-point operations in the same order per element, so
        each entry is bit-identical to the scalar :meth:`sse`.
        """
        data = np.asarray(history, dtype=float)
        if len(data) < 3:
            raise ConfigurationError("need at least 3 observations to score")
        alphas = np.asarray(alphas, dtype=float)
        betas = np.asarray(betas, dtype=float)
        if alphas.shape != betas.shape:
            raise ConfigurationError("alphas and betas must have the same shape")
        level = np.full(alphas.shape, data[0])
        trend = np.full(alphas.shape, data[1] - data[0])
        total = np.zeros(alphas.shape)
        for obs in data[1:]:
            prediction = level + trend
            total += (obs - prediction) ** 2
            prev_level = level
            level = alphas * obs + (1.0 - alphas) * (level + trend)
            trend = betas * (level - prev_level) + (1.0 - betas) * trend
        return total

    @classmethod
    def fit(
        cls,
        history: Sequence[float],
        nonnegative: bool = True,
        grid_steps: int = 11,
    ) -> "HoltPredictor":
        """Train alpha and beta on past records (Eq. 5) and return a
        predictor primed with the history.

        A coarse grid over the unit box seeds an L-BFGS-B refinement,
        which is robust against the SSE surface's flat regions.
        """
        data = np.asarray(history, dtype=float)
        if len(data) < 3:
            raise ConfigurationError("need at least 3 observations to fit")
        _FITS_TOTAL.inc()
        with _FIT_SECONDS.time():
            return cls._fit_impl(data, nonnegative, grid_steps)

    @classmethod
    def _fit_impl(
        cls, data: np.ndarray, nonnegative: bool, grid_steps: int
    ) -> "HoltPredictor":
        # One vectorised scoring pass over the whole (alpha, beta) grid;
        # argmin keeps the first minimum, matching the scalar scan's
        # strict-improvement rule in the same (alpha-major) order.
        grid = np.linspace(0.0, 1.0, grid_steps)
        alphas = np.repeat(grid, grid_steps)
        betas = np.tile(grid, grid_steps)
        scores = cls.sse_batch(data, alphas, betas)
        winner = int(np.argmin(scores))
        best = (float(alphas[winner]), float(betas[winner]))
        best_sse = float(scores[winner])

        result = optimize.minimize(
            lambda x: cls.sse(data, x[0], x[1]),
            x0=np.array(best),
            bounds=[(0.0, 1.0), (0.0, 1.0)],
            method="L-BFGS-B",
        )
        alpha, beta = (result.x if result.fun <= best_sse else best)
        predictor = cls(alpha=float(alpha), beta=float(beta), nonnegative=nonnegative)
        for obs in data:
            predictor.observe(float(obs))
        return predictor


class PersistencePredictor:
    """Naive baseline: the next epoch repeats the last observation.

    Shares :class:`HoltPredictor`'s streaming interface so the scheduler
    accepts it interchangeably (the ablation bench quantifies what the
    Holt trend term buys over this).
    """

    def __init__(self, nonnegative: bool = True) -> None:
        self.nonnegative = nonnegative
        self._last: float | None = None

    @property
    def ready(self) -> bool:
        return self._last is not None

    def observe(self, value: float) -> None:
        self._last = float(value)

    def predict(self, horizon: int = 1) -> float:
        if self._last is None:
            raise ConfigurationError("predictor has no observations yet")
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        return max(0.0, self._last) if self.nonnegative else self._last

    def reset(self) -> None:
        self._last = None


class MovingAveragePredictor:
    """Sliding-window mean baseline.

    Parameters
    ----------
    window:
        Number of recent observations averaged (>= 1).
    nonnegative:
        Clamp forecasts at zero, as for power series.
    """

    def __init__(self, window: int = 4, nonnegative: bool = True) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.window = window
        self.nonnegative = nonnegative
        self._values: list[float] = []

    @property
    def ready(self) -> bool:
        return bool(self._values)

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        if len(self._values) > self.window:
            self._values.pop(0)

    def predict(self, horizon: int = 1) -> float:
        if not self._values:
            raise ConfigurationError("predictor has no observations yet")
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        forecast = sum(self._values) / len(self._values)
        return max(0.0, forecast) if self.nonnegative else forecast

    def reset(self) -> None:
        self._values = []
