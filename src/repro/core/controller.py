"""The GreenHetero Controller (paper Fig. 4): Monitor + Scheduler + Enforcer.

One controller instance manages one rack and its power tree, exactly as
the paper deploys it ("the GreenHetero Controller at the rack level in a
distributed deployment", Section IV-A).  Each call to :meth:`run_epoch`
executes one 15-minute scheduling epoch:

1. meter renewable output and rack demand (Monitor);
2. run a training run for any (configuration, workload) pair the
   database has never seen (Algorithm 1, lines 3-5);
3. forecast next-epoch supply/demand and select power sources
   (Cases A/B/C);
4. obtain the PAR vector from the active policy and enforce it — group
   shares split evenly per server, each server's budget mapped to a DVFS
   state (SPC);
5. execute the epoch in 2.5-minute sub-steps, metering (power, perf)
   samples, flowing energy through the PDU, and accounting EPU;
6. feed execution samples back into the database and re-fit when the
   policy enables the runtime optimisation (Algorithm 1, lines 8-10).

The returned :class:`EpochRecord` carries everything the telemetry layer
and the paper's figures need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.enforcer import Enforcer
from repro.core.monitor import Monitor, ServerObservation
from repro.core.policies import GroupInfo, Policy
from repro.core.scheduler import AdaptiveScheduler
from repro.core.sources import PowerCase, SourceDecision
from repro.errors import ConfigurationError
from repro.obs.tracing import trace
from repro.power.pdu import PDU
from repro.power.sources import ChargeSource
from repro.servers.rack import Rack
from repro.units import EPOCH_SECONDS

#: Sub-steps per epoch; 15 min / 6 = 2.5 min, matching the paper's
#: ~2-minute profiling cadence.
N_SUBSTEPS = 6

#: Power levels sampled during a training run.  The ~10-minute training
#: run yields a handful of samples (one every 2 minutes).
TRAINING_SAMPLES = 5

#: Fraction of the DVFS ladder the training run's lowest sample reaches.
#: The training run executes under the *ondemand* governor at full load
#: (Section IV-B.2), so the sampled operating points cluster in the upper
#: half of the frequency range — the initial fit extrapolates below that,
#: which is exactly the inaccuracy the online update (GreenHetero vs
#: GreenHetero-a) exists to repair.
TRAINING_LADDER_FLOOR = 0.5


@dataclass(frozen=True)
class EpochRecord:
    """Telemetry for one scheduling epoch.

    Power values are epoch-mean watts; throughput is the epoch-mean
    aggregate rack performance in the workload's metric.
    """

    time_s: float
    case: PowerCase
    budget_w: float
    demand_w: float
    renewable_w: float
    load_fraction: float
    ratios: tuple[float, ...]
    group_budgets_w: tuple[float, ...]
    state_indices: tuple[int, ...]
    throughput: float
    epu: float
    useful_power_w: float
    renewable_to_load_w: float
    battery_to_load_w: float
    grid_to_load_w: float
    charge_w: float
    charge_source: ChargeSource
    battery_soc_wh: float
    curtailed_w: float
    trained_pairs: tuple[tuple[str, str], ...]
    brownout: bool
    #: Epoch-mean of the Monitor's per-substep renewable meter readings —
    #: the value the predictor feedback consumes (``renewable_w`` is the
    #: noise-free mean).  Defaults to 0.0 for records built by hand.
    renewable_metered_w: float = 0.0
    #: Servers powered per group (the partial-group extension); ``None``
    #: means all servers shared their group's budget.
    powered_counts: tuple[int, ...] | None = None
    #: The database-projected performance of the chosen allocation
    #: (solver policies only); compare against ``throughput`` to measure
    #: projection quality.
    projected_perf: float | None = None


class GreenHeteroController:
    """Rack-level controller binding a policy to a rack and its PDU.

    Parameters
    ----------
    rack:
        The heterogeneous rack to manage.
    pdu:
        The rack's power tree (solar + battery + grid).
    policy:
        Any Table III policy.
    monitor:
        Sensing layer; a default seeded Monitor is created when omitted.
    scheduler:
        The adaptive scheduler; constructed around ``policy`` by default.
    epoch_s:
        Scheduling epoch length (paper: 15 minutes).
    """

    def __init__(
        self,
        rack: Rack,
        pdu: PDU,
        policy: Policy,
        monitor: Monitor | None = None,
        scheduler: AdaptiveScheduler | None = None,
        epoch_s: float = EPOCH_SECONDS,
    ) -> None:
        if epoch_s <= 0:
            raise ConfigurationError("epoch length must be positive")
        self.rack = rack
        self.pdu = pdu
        self.policy = policy
        self.monitor = monitor or Monitor()
        self.scheduler = scheduler or AdaptiveScheduler(policy)
        self.enforcer = Enforcer(pdu)
        self.epoch_s = epoch_s
        self.servers = rack.build_servers()
        self.groups = tuple(
            GroupInfo(name=g.spec.name, count=g.count, key=g.key) for g in rack.groups
        )
        #: Optional constrained-supply hook ``(time_s, demand_w) -> budget_w``.
        #: When set, the epoch's rack budget is forced to its return value
        #: (the Section III-B fixed-budget methodology, used by the
        #: Fig. 9/10/13/14 sweeps); source dynamics are bypassed.
        self.budget_override: Callable[[float, float], float] | None = None
        #: Optional per-group power caps (W), one entry per group;
        #: ``math.inf`` leaves a group uncapped.  Caps shape both the
        #: metered demand and the enforced group budgets — the shift
        #: runtime sets them each epoch to gate deferrable groups to
        #: their planned draw while interactive groups run untouched.
        self.group_caps_w: tuple[float, ...] | None = None

    # ------------------------------------------------------------------
    # Workload switching (Algorithm 1's arrival path over time)
    # ------------------------------------------------------------------
    def switch_workload(self, workload) -> None:
        """Swap the rack's workload(s) at an epoch boundary.

        The database persists across switches — it holds projections for
        "all workloads and server configurations it has ever executed"
        (Section IV-B.2) — so returning to a previously-seen workload
        skips the training run, while a new (platform, workload) pair
        triggers one at the next epoch (Algorithm 1, line 3).

        Parameters
        ----------
        workload:
            A workload name/object shared by all groups, or a list with
            one entry per group (co-location).
        """
        self.rack = Rack(
            [(g.spec.name, g.count) for g in self.rack.groups], workload
        )
        self.servers = self.rack.build_servers()
        self.groups = tuple(
            GroupInfo(name=g.spec.name, count=g.count, key=g.key)
            for g in self.rack.groups
        )

    # ------------------------------------------------------------------
    # Priming
    # ------------------------------------------------------------------
    def prime_predictors(
        self, renewable_history: list[float], demand_history: list[float]
    ) -> None:
        """Train the Holt constants on past records (Eq. 5)."""
        self.scheduler.pretrain_predictors(renewable_history, demand_history)

    # ------------------------------------------------------------------
    # Training run (Algorithm 1, lines 4-5)
    # ------------------------------------------------------------------
    def _training_run(self, group_index: int, time_s: float) -> None:
        """Profile one group across its DVFS ladder and seed the database.

        The paper's training run executes the workload under the
        ondemand governor with ample power for ~10 minutes, logging a
        (power, perf) sample every 2 minutes; at full load the governor
        keeps to the upper frequency range, so we sample
        :data:`TRAINING_SAMPLES` states from the top half of the ladder
        (the initial fit must extrapolate below — see
        :data:`TRAINING_LADDER_FLOOR`).
        """
        curve = self.rack.curve(group_index)
        states = curve.states.active_states
        lo = TRAINING_LADDER_FLOOR * (len(states) - 1)
        picks = np.unique(
            np.linspace(lo, len(states) - 1, TRAINING_SAMPLES).round().astype(int)
        )
        samples: list[tuple[float, float]] = []
        for idx in picks:
            raw = curve.sample_at_state(states[int(idx)], load_fraction=1.0)
            obs = self.monitor.observe_server(raw, group_index, time_s)
            samples.append((obs.power_w, obs.throughput))
        self.scheduler.ingest_training_run(
            self.groups[group_index].key, curve.idle_power_w, samples
        )

    def ensure_profiled(self, time_s: float = 0.0) -> tuple[tuple[str, str], ...]:
        """Run training runs for every pair the database has never seen.

        Algorithm 1, line 3, factored out of the epoch loop so a serving
        deployment (:mod:`repro.serve`) can answer allocation queries
        before its first epoch executes.  No-op for policies that do not
        consult the database.  Returns the pairs that were trained.
        """
        if not self.policy.uses_database:
            return ()
        with trace("scheduler.profile"):
            missing = self.scheduler.missing_pairs(self.groups)
            for key in missing:
                group_index = next(
                    i for i, g in enumerate(self.groups) if g.key == key
                )
                self._training_run(group_index, time_s)
            return tuple(missing)

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------
    def _capped_demand(self, load_fraction: float) -> float:
        """Rack demand with the per-group caps applied."""
        demands = self.rack.group_demands_at_load(load_fraction)
        if self.group_caps_w is None:
            return sum(demands)
        if len(self.group_caps_w) != len(demands):
            raise ConfigurationError(
                f"group_caps_w has {len(self.group_caps_w)} entries for "
                f"{len(demands)} groups"
            )
        return sum(min(d, cap) for d, cap in zip(demands, self.group_caps_w))

    @trace("controller.epoch")
    def run_epoch(self, time_s: float, load_fraction: float = 1.0) -> EpochRecord:
        """Execute one scheduling epoch starting at ``time_s``."""
        if not 0.0 <= load_fraction <= 1.0:
            raise ConfigurationError("load fraction must be in [0, 1]")

        demand_now = self.monitor.observe_demand(self._capped_demand(load_fraction))
        renewable_now = self.monitor.observe_renewable(self.pdu.renewable.power_at(time_s))
        if not self.scheduler.renewable_predictor.ready:
            # First epoch with no history: seed the predictors with the
            # current metered values so a forecast exists.
            self.scheduler.observe(renewable_now, demand_now)

        # Algorithm 1, line 3: unseen pairs trigger a training run.
        trained = self.ensure_profiled(time_s)

        decision = self.scheduler.plan_sources(
            self.pdu.battery, self.pdu.grid, self.epoch_s
        )
        if self.budget_override is not None:
            decision = replace(
                decision,
                case=PowerCase.B,
                rack_budget_w=self.budget_override(time_s, demand_now),
                use_battery=True,
                grid_charges_battery=False,
            )
        budget_w = decision.rack_budget_w

        oracle = self._make_oracle(budget_w, load_fraction) if self.policy.requires_oracle else None
        plan = self.scheduler.allocate_plan(budget_w, self.groups, oracle)
        ratios = plan.ratios
        group_budgets = tuple(r * budget_w for r in ratios)
        if self.group_caps_w is not None:
            group_budgets = tuple(
                min(b, cap) for b, cap in zip(group_budgets, self.group_caps_w)
            )
            ratios = tuple(
                b / budget_w if budget_w > 0 else 0.0 for b in group_budgets
            )
        enforced = self.enforcer.spc.apply(
            self.servers, group_budgets, plan.powered_counts
        )

        record = self._execute_substeps(
            time_s, load_fraction, decision, budget_w, ratios, group_budgets,
            enforced.state_indices, trained, plan.powered_counts,
            plan.projected_perf,
        )

        # End-of-epoch observation feeds the next forecast.  Each substep
        # was metered exactly once inside `_execute_substeps`; feeding the
        # mean of those readings avoids jittering an already-averaged
        # value a second time.
        self.scheduler.observe(record.renewable_metered_w, demand_now)
        return record

    # ------------------------------------------------------------------
    # Rack execution with load balancing
    # ------------------------------------------------------------------
    def _effective_counts(self, powered_counts: tuple[int, ...] | None) -> list[int]:
        """Servers actually executing per group this epoch."""
        if powered_counts is None:
            return [g.count for g in self.rack.groups]
        return list(powered_counts)

    def _samples_for_states(self, states, load_fraction: float, counts=None):
        """One noise-free sample per group at the given power states.

        Batch/HPC workloads saturate every powered server.  Interactive
        workloads see the rack's offered request rate, which a load
        balancer routes proportionally to each server's SLO-compliant
        capacity — so load from powered-down servers is absorbed by the
        survivors when they have headroom (this is what bounds the gains
        on low-utilisation services like Memcached).  Mixed racks are
        supported: balancing happens within each interactive workload's
        groups; batch groups are independent.
        """
        n = len(self.rack.groups)
        if counts is None:
            counts = [g.count for g in self.rack.groups]
        curves = [self.rack.curve(g) for g in range(n)]
        samples: list = [None] * n
        interactive_groups: dict[str, list[int]] = {}
        for g, group in enumerate(self.rack.groups):
            if group.workload.is_interactive:
                interactive_groups.setdefault(group.workload.name, []).append(g)
            else:
                samples[g] = curves[g].serve(states[g], math.inf)
        for indices in interactive_groups.values():
            caps = {g: curves[g].deliverable_capacity(states[g]) for g in indices}
            total_cap = sum(caps[g] * counts[g] for g in indices)
            # Offered load is sized against the rack's nominal capacity
            # (all servers) — powering fewer servers does not shrink the
            # request stream, only the capacity serving it.
            offered = load_fraction * sum(
                curves[g].max_throughput * self.rack.groups[g].count for g in indices
            )
            frac = 1.0 if total_cap <= 0 else min(1.0, offered / total_cap)
            for g in indices:
                samples[g] = curves[g].serve(states[g], caps[g] * frac)
        return samples

    def _measure_rack(
        self, group_budgets_w: tuple[float, ...], load_fraction: float
    ) -> float:
        """Aggregate rack throughput if ``group_budgets_w`` were enforced."""
        states = [
            self.rack.curve(i).state_for_budget(budget / group.count)
            for i, (group, budget) in enumerate(zip(self.rack.groups, group_budgets_w))
        ]
        samples = self._samples_for_states(states, load_fraction)
        return sum(
            group.count * sample.throughput
            for group, sample in zip(self.rack.groups, samples)
        )

    def _make_oracle(self, budget_w: float, load_fraction: float):
        """The Manual policy's physical trial run: enforce, run, meter.

        Like the paper's physical trials, the measurement carries the
        Monitor's throughput noise.
        """

        def measure(ratios: tuple[float, ...]) -> float:
            budgets = tuple(r * budget_w for r in ratios)
            return self.monitor.observe_throughput(
                self._measure_rack(budgets, load_fraction)
            )

        return measure

    def _execute_substeps(
        self,
        time_s: float,
        load_fraction: float,
        decision: SourceDecision,
        budget_w: float,
        ratios: tuple[float, ...],
        group_budgets: tuple[float, ...],
        state_indices: tuple[int, ...],
        trained: tuple[tuple[str, str], ...],
        powered_counts: tuple[int, ...] | None = None,
        projected_perf: float | None = None,
    ) -> EpochRecord:
        sub_s = self.epoch_s / N_SUBSTEPS
        observations: list[ServerObservation] = []
        perf_sum = 0.0
        useful_sum = 0.0
        renewable_sum = 0.0
        metered_renewable_sum = 0.0
        r2l = b2l = g2l = charge = curtailed = 0.0
        charge_source = ChargeSource.NONE
        brownout = False
        soc_wh = self.pdu.battery.soc_wh

        states = [group_servers[0].state for group_servers in self.servers]
        effective = self._effective_counts(powered_counts)
        for i in range(N_SUBSTEPS):
            t_sub = time_s + i * sub_s
            draw_total = 0.0
            perf_total = 0.0
            useful = 0.0
            samples = self._samples_for_states(states, load_fraction, effective)
            for g, sample in enumerate(samples):
                count = effective[g]
                draw_total += count * sample.power_w
                perf_total += count * sample.throughput
                if sample.throughput > 0.0:
                    useful += count * sample.power_w * sample.utilization
                observations.append(
                    self.monitor.observe_server(sample, g, t_sub)
                )
            flows = self.enforcer.psc.apply(decision, draw_total, t_sub, sub_s)
            if flows.delivered_w < draw_total - 1e-6:
                # Sources under-delivered against the plan (forecast
                # error): the rack browns out proportionally.
                scale = flows.delivered_w / draw_total if draw_total > 0 else 0.0
                perf_total *= scale
                useful *= scale
                brownout = True
            perf_sum += perf_total
            useful_sum += useful
            renewable_sum += flows.renewable_available_w
            # The PV sensor is read once per substep, like every other
            # meter; the epoch aggregate is the mean of those readings.
            metered_renewable_sum += self.monitor.observe_renewable(
                flows.renewable_available_w
            )
            r2l += flows.breakdown.renewable_to_load_w
            b2l += flows.breakdown.battery_to_load_w
            g2l += flows.breakdown.grid_to_load_w
            charge += flows.breakdown.charge_w
            curtailed += flows.curtailed_w
            if flows.breakdown.charge_source is not ChargeSource.NONE:
                charge_source = flows.breakdown.charge_source
            soc_wh = flows.battery_soc_wh

        self.scheduler.feed_back(observations, self.groups)

        n = float(N_SUBSTEPS)
        useful_mean = useful_sum / n
        epu = 0.0 if budget_w <= 0 else min(useful_mean / budget_w, 1.0)
        return EpochRecord(
            time_s=time_s,
            case=decision.case,
            budget_w=budget_w,
            demand_w=decision.predicted_demand_w,
            renewable_w=renewable_sum / n,
            load_fraction=load_fraction,
            ratios=ratios,
            group_budgets_w=group_budgets,
            state_indices=state_indices,
            throughput=perf_sum / n,
            epu=epu,
            useful_power_w=useful_mean,
            renewable_to_load_w=r2l / n,
            battery_to_load_w=b2l / n,
            grid_to_load_w=g2l / n,
            charge_w=charge / n,
            charge_source=charge_source,
            battery_soc_wh=soc_wh,
            curtailed_w=curtailed / n,
            trained_pairs=trained,
            brownout=brownout,
            renewable_metered_w=metered_renewable_sum / n,
            powered_counts=powered_counts,
            projected_perf=projected_perf,
        )
