"""The performance-power profiling database (paper Fig. 7, Algorithm 1).

The database is the scheduler's only knowledge of the heterogeneous
hardware: for every (server configuration, workload type) pair it keeps
the observed (power, performance) samples and a fitted relational
equation ``Perf = f(Power)``.

* **Training run** — the first time a pair is seen, the server runs for
  ~10 minutes with ample power under the ondemand governor, and a
  (power, perf) sample is recorded every 2 minutes (Section IV-B.2).
  Those few samples seed the first curve fit.
* **Curve fitting** — the paper fits a *quadratic* within the power
  demand range: cheap for the solver, and accurate enough because the
  true response is concave with a plateau at the workload's maximum
  draw.  Linear and cubic fits are kept for the ablation benches.
* **Online update (Algorithm 1)** — at every subsequent epoch the
  feedback samples from actual execution are appended and the equation
  is re-fit from both new and old profiling data, so the projection
  sharpens around the operating points the solver actually visits.

Entries also record the pair's power envelope (idle power and maximum
observed draw): predictions are zero below idle and plateau beyond the
maximum draw, the two boundary behaviours Section IV-B.3 specifies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DatabaseMissError

#: (platform name, workload name) — the database key.
PairKey = tuple[str, str]


class FitKind(enum.Enum):
    """Polynomial degree of the relational equation (quadratic in the paper)."""

    LINEAR = 1
    QUADRATIC = 2
    CUBIC = 3


@dataclass(frozen=True)
class PerfPowerFit:
    """A fitted relational equation ``Perf = f(Power)`` with its validity box.

    Attributes
    ----------
    coefficients:
        Polynomial coefficients, highest power first (``np.polyval``
        convention).
    min_power_w:
        Below this (the server's idle power) performance is zero.
    max_power_w:
        Beyond this (the workload's maximum draw) performance plateaus.
    kind:
        The polynomial family used.
    n_samples:
        How many profiling samples produced this fit.
    """

    coefficients: tuple[float, ...]
    min_power_w: float
    max_power_w: float
    kind: FitKind = FitKind.QUADRATIC
    n_samples: int = 0

    def __post_init__(self) -> None:
        if self.min_power_w < 0:
            raise ConfigurationError("min power must be non-negative")
        if self.max_power_w <= self.min_power_w:
            raise ConfigurationError("max power must exceed min power")

    # Quadratic convenience accessors (the paper's l, m, n of Eq. 6-7).
    @property
    def l(self) -> float:  # noqa: E743 - paper notation
        """Quadratic coefficient (0 for lower-degree fits)."""
        pad = 3 - len(self.coefficients)
        return 0.0 if pad > 0 else self.coefficients[-3]

    @property
    def m(self) -> float:
        pad = 2 - len(self.coefficients)
        return 0.0 if pad > 0 else self.coefficients[-2]

    @property
    def n(self) -> float:
        return self.coefficients[-1]

    def raw(self, power_w: float) -> float:
        """Unclamped polynomial value (internal solver use)."""
        return float(np.polyval(self.coefficients, power_w))

    def predict(self, power_w: float) -> float:
        """Projected performance at an allocated ``power_w`` (Section IV-B.3).

        Zero below the idle boundary, plateau above the maximum draw,
        clamped at zero everywhere (a fitted parabola can dip negative
        near the boundary of sparse training data).
        """
        if power_w < self.min_power_w:
            return 0.0
        clamped = min(power_w, self.max_power_w)
        return max(0.0, self.raw(clamped))

    def derivative(self, power_w: float) -> float:
        """d(perf)/d(power) of the unclamped polynomial."""
        deriv = np.polyder(np.asarray(self.coefficients))
        return float(np.polyval(deriv, power_w))

    def efficiency(self) -> float:
        """Throughput per watt at the maximum draw (GreenHetero-p's sort key)."""
        return self.predict(self.max_power_w) / self.max_power_w


@dataclass
class _Entry:
    """Mutable per-pair record: envelope, samples, and the current fit."""

    idle_power_w: float
    max_power_w: float
    #: Lowest power ever observed to produce throughput — the empirical
    #: power-on boundary (below it the projection is zero).
    min_active_power_w: float = float("inf")
    powers: deque[float] = field(default_factory=deque)
    perfs: deque[float] = field(default_factory=deque)
    fit: PerfPowerFit | None = None


@dataclass(frozen=True)
class DatabaseEntry:
    """Immutable public view of one (platform, workload) record.

    The snapshot carries everything a serialiser or checkpointer needs —
    envelope, retained samples, and the current fit — without exposing
    the database's mutable internals.  :meth:`ProfilingDatabase.entry`
    produces these and :meth:`ProfilingDatabase.restore_entry` rebuilds a
    record from one bit-for-bit.

    Attributes
    ----------
    key:
        (platform, workload).
    idle_power_w / max_power_w:
        The pair's power envelope.
    min_active_power_w:
        Empirical power-on boundary; ``inf`` when no active sample has
        ever been observed.
    powers / perfs:
        The retained profiling samples, oldest first.
    fit:
        The current relational equation, or ``None`` before any refit.
    """

    key: PairKey
    idle_power_w: float
    max_power_w: float
    min_active_power_w: float
    powers: tuple[float, ...]
    perfs: tuple[float, ...]
    fit: PerfPowerFit | None


class ProfilingDatabase:
    """Performance-power projections for every pair ever executed.

    Parameters
    ----------
    fit_kind:
        Polynomial family (paper: quadratic).
    max_samples:
        Ring-buffer cap on retained samples per pair.  Training samples
        plus the most recent feedback; old feedback ages out, which keeps
        re-fitting O(1) per epoch.
    """

    def __init__(self, fit_kind: FitKind = FitKind.QUADRATIC, max_samples: int = 256) -> None:
        if max_samples < 4:
            raise ConfigurationError("max_samples must be at least 4")
        self.fit_kind = fit_kind
        self.max_samples = max_samples
        self._entries: dict[PairKey, _Entry] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __contains__(self, key: PairKey) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.fit is not None

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> tuple[PairKey, ...]:
        return tuple(self._entries)

    def has(self, platform: str, workload: str) -> bool:
        """Algorithm 1 line 3: does a relational equation exist?"""
        return (platform, workload) in self

    def sample_count(self, key: PairKey) -> int:
        entry = self._entries.get(key)
        return 0 if entry is None else len(entry.powers)

    # ------------------------------------------------------------------
    # Snapshots (the public serialisation surface)
    # ------------------------------------------------------------------
    def entry(self, key: PairKey) -> DatabaseEntry:
        """Immutable snapshot of one pair's record.

        Raises
        ------
        DatabaseMissError
            When the pair has never been seen (no :meth:`ensure_entry`).
        """
        entry = self._entries.get(key)
        if entry is None:
            raise DatabaseMissError(*key)
        return DatabaseEntry(
            key=key,
            idle_power_w=entry.idle_power_w,
            max_power_w=entry.max_power_w,
            min_active_power_w=entry.min_active_power_w,
            powers=tuple(entry.powers),
            perfs=tuple(entry.perfs),
            fit=entry.fit,
        )

    def snapshot(self) -> tuple[DatabaseEntry, ...]:
        """Snapshots of every record, in insertion order."""
        return tuple(self.entry(key) for key in self._entries)

    def restore_entry(self, snapshot: DatabaseEntry) -> None:
        """Rebuild one record exactly as captured by :meth:`entry`.

        The snapshot's samples, envelope, and fit are installed verbatim
        (no refit), so a save → restore round trip is bit-identical.  An
        existing record under the same key is replaced.
        """
        if snapshot.max_power_w <= snapshot.idle_power_w:
            raise ConfigurationError(
                f"{snapshot.key}: max power ({snapshot.max_power_w}) must "
                f"exceed idle ({snapshot.idle_power_w})"
            )
        if len(snapshot.powers) != len(snapshot.perfs):
            raise ConfigurationError(
                f"{snapshot.key}: powers and perfs must have equal length"
            )
        self._entries[snapshot.key] = _Entry(
            idle_power_w=float(snapshot.idle_power_w),
            max_power_w=float(snapshot.max_power_w),
            min_active_power_w=float(snapshot.min_active_power_w),
            powers=deque(float(p) for p in snapshot.powers),
            perfs=deque(float(p) for p in snapshot.perfs),
            fit=snapshot.fit,
        )

    # ------------------------------------------------------------------
    # Population and updating
    # ------------------------------------------------------------------
    def ensure_entry(self, key: PairKey, idle_power_w: float, max_power_w: float) -> None:
        """Create the pair's record with its measured power envelope."""
        if max_power_w <= idle_power_w:
            raise ConfigurationError(
                f"{key}: max power ({max_power_w}) must exceed idle ({idle_power_w})"
            )
        if key not in self._entries:
            self._entries[key] = _Entry(idle_power_w=idle_power_w, max_power_w=max_power_w)

    def add_sample(self, key: PairKey, power_w: float, perf: float) -> None:
        """Append one observed (power, performance) point.

        The entry must have been created with :meth:`ensure_entry` first
        (the Monitor knows the envelope before any sample arrives).
        """
        entry = self._entries.get(key)
        if entry is None:
            raise DatabaseMissError(*key)
        if power_w < 0 or perf < 0:
            raise ConfigurationError("samples must be non-negative")
        entry.powers.append(float(power_w))
        entry.perfs.append(float(perf))
        while len(entry.powers) > self.max_samples:
            entry.powers.popleft()
            entry.perfs.popleft()
        # Feedback can reveal a wider active power range than the initial
        # envelope guess; track both boundaries so the projection's
        # power-on cliff and plateau follow reality.
        if perf > 0:
            if power_w > entry.max_power_w:
                entry.max_power_w = float(power_w)
            if power_w < entry.min_active_power_w:
                entry.min_active_power_w = float(power_w)

    def refit(self, key: PairKey) -> PerfPowerFit:
        """Reconstruct the relational equation from all retained samples
        (Algorithm 1 line 9).

        Falls back to a lower polynomial degree when there are too few
        distinct power levels to identify the requested one.
        """
        entry = self._entries.get(key)
        if entry is None or not entry.powers:
            raise DatabaseMissError(*key)
        powers = np.asarray(entry.powers)
        perfs = np.asarray(entry.perfs)
        # Only points inside the active range inform the curve; zero-perf
        # points below idle would drag the parabola down artificially.
        mask = perfs > 0
        if mask.sum() < 2:
            raise DatabaseMissError(*key)
        x, y = powers[mask], perfs[mask]
        degree = min(self.fit_kind.value, max(1, len(np.unique(np.round(x, 6))) - 1))
        coeffs = np.polyfit(x, y, degree)
        min_power = (
            entry.min_active_power_w
            if np.isfinite(entry.min_active_power_w)
            else entry.idle_power_w
        )
        fit = PerfPowerFit(
            coefficients=tuple(float(c) for c in coeffs),
            min_power_w=min_power,
            max_power_w=entry.max_power_w,
            kind=FitKind(degree) if degree in (1, 2, 3) else self.fit_kind,
            n_samples=int(mask.sum()),
        )
        entry.fit = fit
        return fit

    def ingest_training_run(
        self,
        key: PairKey,
        idle_power_w: float,
        samples: list[tuple[float, float]],
    ) -> PerfPowerFit:
        """Algorithm 1 lines 4-5: absorb a training run and fit the pair.

        Parameters
        ----------
        key:
            (platform, workload).
        idle_power_w:
            The platform's measured idle power (the zero boundary).
        samples:
            (power, perf) points collected every 2 minutes during the
            ~10-minute training run.
        """
        if len(samples) < 2:
            raise ConfigurationError("a training run needs at least 2 samples")
        max_power = max(p for p, _ in samples)
        self.ensure_entry(key, idle_power_w, max_power)
        for power_w, perf in samples:
            self.add_sample(key, power_w, perf)
        return self.refit(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def projection(self, key: PairKey) -> PerfPowerFit:
        """The current relational equation for ``key``.

        Raises
        ------
        DatabaseMissError
            When no training run has populated the pair yet (Algorithm 1
            line 3 takes the training branch in that case).
        """
        entry = self._entries.get(key)
        if entry is None or entry.fit is None:
            raise DatabaseMissError(*key)
        return entry.fit

    def efficiency(self, key: PairKey) -> float:
        """Peak throughput-per-watt projection (GreenHetero-p's ordering)."""
        return self.projection(key).efficiency()
