"""Power-source selection: the paper's Cases A, B, C (Fig. 6).

At the start of each scheduling epoch the scheduler compares the
*predicted* renewable supply against the *predicted* rack demand and
picks the sources for the epoch:

* **Case A** — renewable covers demand.  Renewable alone powers the
  rack; the surplus charges the battery.
* **Case B** — renewable is present but short.  The battery discharges
  to cover the gap (down to its DoD floor); once the battery is drained
  the grid, the last resort, supplements within its budget and also
  recharges the battery.
* **Case C** — renewable is absent (night).  The battery alone sustains
  the load until the DoD floor, after which the grid takes over — both
  powering the rack (budget-capped, hence *insufficient*, which is when
  PAR matters most) and charging the battery for the next shortage.

The selector also computes the epoch's *rack power budget*: how much
power the allocation policy may distribute.  The budget is the portion
of demand the chosen sources can actually sustain — it is what makes the
Fig. 8/11 timelines show degraded-but-optimised epochs instead of
brownouts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PowerError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource


class PowerCase(enum.Enum):
    """The three renewable-supply regimes of Fig. 6."""

    A = "A"  # renewable sufficient
    B = "B"  # renewable insufficient, battery/grid supplement
    C = "C"  # renewable unavailable


@dataclass(frozen=True)
class SourceDecision:
    """The scheduler's source plan for one epoch.

    Attributes
    ----------
    case:
        Which Fig. 6 regime the epoch falls in.
    rack_budget_w:
        Power the allocation policy may distribute to servers.
    use_battery:
        Whether the PDU may discharge the battery this epoch.
    grid_charges_battery:
        Whether leftover grid budget should recharge the battery (only
        when the battery has hit its DoD floor, per Section IV-B.1).
    predicted_renewable_w / predicted_demand_w:
        The forecasts the decision was based on (for telemetry).
    """

    case: PowerCase
    rack_budget_w: float
    use_battery: bool
    grid_charges_battery: bool
    predicted_renewable_w: float
    predicted_demand_w: float
    #: Optional per-epoch cap on battery discharge power (W); ``None``
    #: lets the battery cover the whole shortfall (the paper's greedy
    #: behaviour).  Used by :class:`RationedSourceSelector`.
    battery_cap_w: float | None = None

    @property
    def sufficient(self) -> bool:
        """True when the budget covers the predicted demand."""
        return self.rack_budget_w >= self.predicted_demand_w - 1e-9


class SourceSelector:
    """Implements the Case A/B/C decision table with grid-mode hysteresis.

    The paper's rule is "the grid will be the last resort only when the
    battery drains out": the battery supplements shortfalls until it *can
    no longer sustain the power demand*, at which point the grid takes
    over — both powering the rack (within its budget) and recharging the
    battery.  Grid mode is sticky: flip-flopping between a freshly
    trickle-charged battery and the grid would thrash the battery and
    shorten its life, so the selector stays on the grid until either the
    renewable supply covers demand again (Case A) or the battery is full.

    Parameters
    ----------
    renewable_floor_w:
        Below this the renewable supply counts as "unavailable"
        (Case C); PV inverters cut out at a few watts anyway.
    resume_usable_fraction:
        Grid mode also ends once the battery has recharged this fraction
        of its usable (DoD-depth) capacity — enough autonomy to be worth
        discharging again.  This is what produces the multiple
        discharge/charge episodes per day the paper observes on the
        fluctuating Low trace (Fig. 11b).
    """

    def __init__(
        self,
        renewable_floor_w: float = 5.0,
        resume_usable_fraction: float = 0.4,
    ) -> None:
        if renewable_floor_w < 0:
            raise PowerError("renewable floor must be non-negative")
        if not 0.0 < resume_usable_fraction <= 1.0:
            raise PowerError("resume fraction must be in (0, 1]")
        self.renewable_floor_w = renewable_floor_w
        self.resume_usable_fraction = resume_usable_fraction
        self._grid_mode = False

    @property
    def grid_mode(self) -> bool:
        """True while the grid has taken over from a drained battery."""
        return self._grid_mode

    def decide(
        self,
        predicted_renewable_w: float,
        predicted_demand_w: float,
        battery: BatteryBank,
        grid: GridSource,
        duration_s: float,
    ) -> SourceDecision:
        """Choose sources and the rack power budget for the next epoch.

        Parameters
        ----------
        predicted_renewable_w / predicted_demand_w:
            Holt forecasts from the Predictor.
        battery:
            The rack's battery bank (queried, not mutated).
        grid:
            The rack's grid feed (queried, not mutated).
        duration_s:
            Epoch length, which bounds battery energy per epoch.
        """
        if predicted_demand_w < 0 or predicted_renewable_w < 0:
            raise PowerError("forecasts must be non-negative")

        renewable = predicted_renewable_w
        demand = predicted_demand_w
        battery_power = battery.max_discharge_power_w(duration_s)
        resume_wh = (
            self.resume_usable_fraction
            * battery.depth_of_discharge
            * battery.capacity_wh
        )
        if self._grid_mode and (battery.is_full or battery.usable_wh >= resume_wh):
            self._grid_mode = False

        if renewable >= demand and renewable > self.renewable_floor_w:
            # Case A: renewable sustains the load; surplus charges battery.
            self._grid_mode = False
            return SourceDecision(
                case=PowerCase.A,
                rack_budget_w=demand,
                use_battery=False,
                grid_charges_battery=False,
                predicted_renewable_w=renewable,
                predicted_demand_w=demand,
            )

        if renewable > self.renewable_floor_w:
            # Case B: renewable + battery while the battery can cover the
            # gap; otherwise the grid supplements and recharges it.
            gap = demand - renewable
            if not self._grid_mode and battery_power >= gap:
                return SourceDecision(
                    case=PowerCase.B,
                    rack_budget_w=demand,
                    use_battery=True,
                    grid_charges_battery=False,
                    predicted_renewable_w=renewable,
                    predicted_demand_w=demand,
                )
            self._grid_mode = True
            budget = min(demand, renewable + grid.budget_w)
            return SourceDecision(
                case=PowerCase.B,
                rack_budget_w=budget,
                use_battery=False,
                grid_charges_battery=True,
                predicted_renewable_w=renewable,
                predicted_demand_w=demand,
            )

        # Case C: no renewable.  Battery alone while it can sustain the
        # demand, then the grid takes over — powering the rack within its
        # budget and recharging the battery with any leftover headroom.
        if not self._grid_mode and battery_power >= demand:
            return SourceDecision(
                case=PowerCase.C,
                rack_budget_w=demand,
                use_battery=True,
                grid_charges_battery=False,
                predicted_renewable_w=renewable,
                predicted_demand_w=demand,
            )
        self._grid_mode = True
        budget = min(demand, grid.budget_w)
        return SourceDecision(
            case=PowerCase.C,
            rack_budget_w=budget,
            use_battery=False,
            grid_charges_battery=True,
            predicted_renewable_w=renewable,
            predicted_demand_w=demand,
        )


class RationedSourceSelector(SourceSelector):
    """Night-aware battery rationing (an extension beyond the paper).

    The paper's selector discharges greedily: full demand from the
    battery until the DoD floor, then the under-provisioned grid.
    Because throughput is *concave* in power, spreading the same energy
    evenly across the dark hours yields more total work than a
    full-power burst followed by starvation (Jensen's inequality).

    This selector rations Case C battery power to
    ``usable energy / estimated remaining night``, tracking how long the
    renewable supply has been absent.  Everything else (Cases A/B, grid
    takeover and hysteresis) defers to the base class.

    Parameters
    ----------
    night_length_s:
        Planning estimate of a dark period's total length (default 12 h;
        a mid-latitude night).  An underestimate degrades gracefully
        toward the paper's greedy behaviour.
    """

    def __init__(
        self,
        renewable_floor_w: float = 5.0,
        resume_usable_fraction: float = 0.4,
        night_length_s: float = 12 * 3600.0,
    ) -> None:
        super().__init__(renewable_floor_w, resume_usable_fraction)
        if night_length_s <= 0:
            raise PowerError("night length must be positive")
        self.night_length_s = night_length_s
        self._dark_elapsed_s = 0.0

    def decide(
        self,
        predicted_renewable_w: float,
        predicted_demand_w: float,
        battery: BatteryBank,
        grid: GridSource,
        duration_s: float,
    ) -> SourceDecision:
        decision = super().decide(
            predicted_renewable_w, predicted_demand_w, battery, grid, duration_s
        )
        if predicted_renewable_w > self.renewable_floor_w:
            self._dark_elapsed_s = 0.0
            return decision
        self._dark_elapsed_s += duration_s
        if decision.case is PowerCase.C and decision.use_battery:
            remaining_s = max(
                self.night_length_s - self._dark_elapsed_s, duration_s
            )
            ration_w = battery.usable_wh * 3600.0 / remaining_s
            # The grid runs as a continuous base all night; the battery
            # tops it up at the ration rate.  Total energy through the
            # dark hours is thereby maximised *and* delivered at a
            # steady power level, which concavity rewards.
            budget = min(predicted_demand_w, ration_w + grid.budget_w)
            return SourceDecision(
                case=PowerCase.C,
                rack_budget_w=budget,
                use_battery=True,
                grid_charges_battery=False,
                predicted_renewable_w=predicted_renewable_w,
                predicted_demand_w=predicted_demand_w,
                battery_cap_w=ration_w,
            )
        return decision


class CarbonAwareSelector(SourceSelector):
    """Carbon-first source selection (an extension beyond the paper).

    The paper maximises performance under whatever sources are live; a
    sustainability-first operator would rather *shed performance* than
    burn grid carbon.  This selector changes exactly one decision: when
    the battery drains and the base class would hand the rack to the
    grid, it instead caps the grid's contribution at ``grid_cap_fraction``
    of its budget — running the rack degraded-but-green until renewables
    return (the GreenSlot/GreenHadoop philosophy from the paper's
    related work, applied at the power layer).

    Grid-sourced battery charging is disabled entirely: the battery
    refills only from renewable surplus.

    Parameters
    ----------
    grid_cap_fraction:
        Share of the grid budget the rack may use while in grid mode
        (0 = pure green: the rack browns out at night after the battery
        empties).
    """

    def __init__(
        self,
        renewable_floor_w: float = 5.0,
        resume_usable_fraction: float = 0.4,
        grid_cap_fraction: float = 0.3,
    ) -> None:
        super().__init__(renewable_floor_w, resume_usable_fraction)
        if not 0.0 <= grid_cap_fraction <= 1.0:
            raise PowerError("grid cap fraction must be in [0, 1]")
        self.grid_cap_fraction = grid_cap_fraction

    def decide(
        self,
        predicted_renewable_w: float,
        predicted_demand_w: float,
        battery: BatteryBank,
        grid: GridSource,
        duration_s: float,
    ) -> SourceDecision:
        decision = super().decide(
            predicted_renewable_w, predicted_demand_w, battery, grid, duration_s
        )
        if not decision.grid_charges_battery and decision.use_battery:
            return decision
        # The base class reached for the grid: cap its share and refuse
        # grid charging.
        grid_share = self.grid_cap_fraction * grid.budget_w
        budget = min(
            predicted_demand_w, predicted_renewable_w + grid_share
        )
        return SourceDecision(
            case=decision.case,
            rack_budget_w=budget,
            use_battery=False,
            grid_charges_battery=False,
            predicted_renewable_w=predicted_renewable_w,
            predicted_demand_w=predicted_demand_w,
        )
