"""The five power-allocation policies of Table III.

=================  ==========================================================
Policy             Behaviour
=================  ==========================================================
Uniform            Heterogeneity-oblivious: every server gets the same share
                   of the rack budget (the homogeneous-datacenter default;
                   the paper's baseline).
Manual             Tries every PAR composition at 10% granularity, measuring
                   each on the live rack, and keeps the best trial.
GreenHetero-p      Heterogeneity-aware greedy: feeds server groups in
                   descending database energy-efficiency order, each up to
                   its maximum draw; the remainder spills into the next
                   group even when it cannot power it on (the unbalanced
                   waste the paper observes on Streamcluster).
GreenHetero-a      The PAR solver on the training-run database, *without*
                   the online update optimisation.
GreenHetero        The full system: solver + dynamically updated database.
=================  ==========================================================

Policies are pure deciders: they see an :class:`AllocationContext` (the
epoch budget, the group structure, the profiling database, and — for
Manual — a measurement oracle standing in for a physical trial run) and
return a PAR vector.  Enforcement and database updates happen in the
controller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.core.database import ProfilingDatabase
from repro.core.solver import GroupModel, PARSolver
from repro.errors import ConfigurationError, SolverError


@dataclass(frozen=True)
class GroupInfo:
    """Static facts a policy may use about one rack group.

    Attributes
    ----------
    name:
        Platform name.
    count:
        Servers in the group.
    key:
        (platform, workload) database key.
    """

    name: str
    count: int
    key: tuple[str, str]


@dataclass(frozen=True)
class AllocationContext:
    """Everything a policy may look at when allocating one epoch.

    Attributes
    ----------
    budget_w:
        The rack power budget from the source selector.
    groups:
        Rack group structure.
    database:
        The profiling database (populated for every group's key).
    oracle:
        Measured rack performance for a trial PAR vector; only the
        Manual policy uses it (in the paper this is a physical trial).
    """

    budget_w: float
    groups: tuple[GroupInfo, ...]
    database: ProfilingDatabase
    oracle: Callable[[tuple[float, ...]], float] | None = None

    @property
    def n_servers(self) -> int:
        return sum(g.count for g in self.groups)

    def group_models(self) -> list[GroupModel]:
        """Solver inputs built from the database projections."""
        return [
            GroupModel(name=g.name, count=g.count, fit=self.database.projection(g.key))
            for g in self.groups
        ]


@dataclass(frozen=True)
class AllocationPlan:
    """A policy's full decision for one epoch.

    Attributes
    ----------
    ratios:
        PAR vector (fractions of the budget per group, sum <= 1).
    powered_counts:
        How many servers of each group receive the group's share;
        ``None`` means all (the paper's same-power-per-type rule).
        Only the partial-group extension sets this.
    """

    ratios: tuple[float, ...]
    powered_counts: tuple[int, ...] | None = None
    #: The database-projected rack performance of this allocation, when
    #: the policy solved for one (solver policies only).  Comparing it
    #: against measured throughput quantifies the projection quality
    #: Algorithm 1's updates are meant to improve.
    projected_perf: float | None = None


class Policy(abc.ABC):
    """A power-allocation policy (one Table III row).

    Class attributes
    ----------------
    name:
        The Table III name, used in every report.
    updates_database:
        Whether the controller should feed execution samples back into
        the database and re-fit (Algorithm 1 lines 8-10).
    requires_oracle:
        Whether :meth:`allocate` needs ``ctx.oracle``.
    """

    name: str = "abstract"
    updates_database: bool = False
    requires_oracle: bool = False
    uses_database: bool = False

    @abc.abstractmethod
    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        """Return the PAR vector (fractions of ``ctx.budget_w``, sum <= 1)."""

    def allocate_plan(self, ctx: AllocationContext) -> AllocationPlan:
        """Full decision; the default wraps :meth:`allocate` (all-on)."""
        return AllocationPlan(ratios=self.allocate(ctx))

    def _validate(self, ctx: AllocationContext) -> None:
        if ctx.budget_w < 0:
            raise ConfigurationError("budget must be non-negative")
        if not ctx.groups:
            raise ConfigurationError("no groups to allocate to")
        if self.requires_oracle and ctx.oracle is None:
            raise ConfigurationError(f"{self.name} needs a measurement oracle")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class UniformPolicy(Policy):
    """Equal power per *server* — the heterogeneity-unaware baseline."""

    name = "Uniform"

    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        self._validate(ctx)
        total = ctx.n_servers
        return tuple(g.count / total for g in ctx.groups)


class ManualPolicy(Policy):
    """Exhaustive measured trials at 10% granularity (Table III).

    Parameters
    ----------
    granularity:
        Trial step; the paper fixes 10%.
    """

    name = "Manual"
    requires_oracle = True

    def __init__(self, granularity: float = 0.1) -> None:
        if not 0.0 < granularity <= 0.5:
            raise ConfigurationError("granularity must be in (0, 0.5]")
        self.granularity = granularity

    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        self._validate(ctx)
        assert ctx.oracle is not None  # _validate guarantees it
        ratios, _ = PARSolver.exhaustive(
            len(ctx.groups), ctx.oracle, granularity=self.granularity
        )
        return ratios


class GreenHeteroPriorityPolicy(Policy):
    """Greedy by energy efficiency (GreenHetero-p).

    Groups are served in descending throughput-per-watt order, each
    receiving up to its saturation power.  Whatever is left spills into
    the next group *even if it cannot power that group on* — this is the
    waste mode the paper demonstrates with Streamcluster.
    """

    name = "GreenHetero-p"
    uses_database = True

    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        self._validate(ctx)
        order = sorted(
            range(len(ctx.groups)),
            key=lambda i: ctx.database.efficiency(ctx.groups[i].key),
            reverse=True,
        )
        ratios = [0.0] * len(ctx.groups)
        if ctx.budget_w == 0:
            return tuple(ratios)
        remaining = ctx.budget_w
        for i in order:
            if remaining <= 0:
                break
            fit = ctx.database.projection(ctx.groups[i].key)
            want = ctx.groups[i].count * fit.max_power_w
            grant = min(remaining, want)
            ratios[i] = grant / ctx.budget_w
            remaining -= grant
        return tuple(ratios)


class OnOffPolicy(Policy):
    """GreenGear-style on-off baseline (paper Section VI).

    The related work's GreenGear "adopts an on-off server strategy and
    always turns on only one server [type] in each composite
    heterogeneous node"; the paper argues an all-on, ratio-tuned
    strategy wins when supply is sufficient.  This baseline powers the
    single most energy-efficient group the budget can saturate (falling
    back to the efficiency leader at whatever level fits) and leaves
    every other group off — reproducing that comparison.
    """

    name = "OnOff"
    uses_database = True

    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        self._validate(ctx)
        ratios = [0.0] * len(ctx.groups)
        if ctx.budget_w == 0:
            return tuple(ratios)
        order = sorted(
            range(len(ctx.groups)),
            key=lambda i: ctx.database.efficiency(ctx.groups[i].key),
            reverse=True,
        )
        # Prefer the most efficient group the budget can fully power on;
        # if none fits, give everything to the efficiency leader anyway.
        chosen = order[0]
        for i in order:
            fit = ctx.database.projection(ctx.groups[i].key)
            if ctx.groups[i].count * fit.min_power_w <= ctx.budget_w:
                chosen = i
                break
        fit = ctx.database.projection(ctx.groups[chosen].key)
        grant = min(ctx.budget_w, ctx.groups[chosen].count * fit.max_power_w)
        ratios[chosen] = grant / ctx.budget_w
        return tuple(ratios)


class _SolverPolicy(Policy):
    """Shared machinery for the two solver-driven GreenHetero variants."""

    uses_database = True

    def __init__(self, solver: PARSolver | None = None) -> None:
        self.solver = solver or PARSolver()

    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        return self.allocate_plan(ctx).ratios

    def allocate_plan(self, ctx: AllocationContext) -> AllocationPlan:
        self._validate(ctx)
        try:
            solution = self.solver.solve(ctx.group_models(), ctx.budget_w)
        except SolverError:
            # Defensive fallback: a degenerate database should degrade to
            # the baseline, never crash the rack controller.
            return AllocationPlan(ratios=UniformPolicy().allocate(ctx))
        return AllocationPlan(
            ratios=solution.ratios, projected_perf=solution.expected_perf
        )


class GreenHeteroStaticPolicy(_SolverPolicy):
    """Solver on the training-run fit only — no runtime updates (GreenHetero-a)."""

    name = "GreenHetero-a"
    updates_database = False


class GreenHeteroPolicy(_SolverPolicy):
    """The full adaptive system: solver + online database updating."""

    name = "GreenHetero"
    updates_database = True


class GreenHeteroPartialPolicy(Policy):
    """GreenHetero with per-group partial power-on (beyond the paper).

    Uses :class:`~repro.core.solver.PartialGroupSolver` to also choose
    how many servers of each group to power — the natural relaxation of
    the paper's same-power-per-type rule, and the fix for budgets
    stranded between "all on" and "all off" at a group's power-on cliff.
    """

    name = "GreenHetero+"
    uses_database = True
    updates_database = True

    def __init__(self, solver=None) -> None:
        from repro.core.solver import PartialGroupSolver

        self.solver = solver or PartialGroupSolver()

    def allocate(self, ctx: AllocationContext) -> tuple[float, ...]:
        return self.allocate_plan(ctx).ratios

    def allocate_plan(self, ctx: AllocationContext) -> AllocationPlan:
        self._validate(ctx)
        try:
            solution = self.solver.solve(ctx.group_models(), ctx.budget_w)
        except SolverError:
            return AllocationPlan(ratios=UniformPolicy().allocate(ctx))
        return AllocationPlan(
            ratios=solution.ratios,
            powered_counts=solution.powered_counts,
            projected_perf=solution.expected_perf,
        )


#: Alias kept for discoverability: the adaptive variant *is* GreenHetero.
GreenHeteroAdaptivePolicy = GreenHeteroPolicy

#: Table III registry.
POLICY_NAMES: tuple[str, ...] = (
    "Uniform",
    "Manual",
    "GreenHetero-p",
    "GreenHetero-a",
    "GreenHetero",
)


def make_policy(name: str) -> Policy:
    """Instantiate a Table III policy by its paper name.

    Raises
    ------
    ConfigurationError
        For unknown names.
    """
    factories: dict[str, Callable[[], Policy]] = {
        "uniform": UniformPolicy,
        "manual": ManualPolicy,
        "greenhetero-p": GreenHeteroPriorityPolicy,
        "greenhetero-a": GreenHeteroStaticPolicy,
        "greenhetero": GreenHeteroPolicy,
        # Extra baseline from the related-work discussion (Section VI),
        # not part of Table III.
        "onoff": OnOffPolicy,
        # The partial-power-on extension (beyond the paper).
        "greenhetero+": GreenHeteroPartialPolicy,
    }
    factory = factories.get(name.lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
        )
    return factory()


def all_policies() -> list[Policy]:
    """One instance of each Table III policy, in table order."""
    return [make_policy(name) for name in POLICY_NAMES]
