"""The Monitor module (paper Fig. 4, left).

The Monitor is the controller's sensing layer: it reads the distributed
power sensors (renewable generation, battery discharge current) and the
per-server power meters and performance counters, and reports them to
the scheduler.  Real sensors are noisy, and that noise is load-bearing
here — it is why the profiling database's online re-fitting
(GreenHetero) beats the one-shot fit (GreenHetero-a).

All noise is multiplicative Gaussian with per-channel sigmas, generated
from a seeded RNG so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.servers.power_model import ServerSample


@dataclass(frozen=True)
class ServerObservation:
    """One noisy server reading reported to the scheduler.

    Attributes
    ----------
    group_index:
        Which rack group the server belongs to.
    power_w:
        Metered wall power (noisy).
    throughput:
        Measured performance (noisy).
    state_index:
        The enforced power state (exact — the SPC knows what it set).
    time_s:
        Timestamp of the reading.
    """

    group_index: int
    power_w: float
    throughput: float
    state_index: int
    time_s: float


class Monitor:
    """Seeded, noisy sensing of power and performance.

    Parameters
    ----------
    power_noise:
        Relative sigma of the external power meter (paper's ZH-101-class
        meters are ~1-3% accurate).
    perf_noise:
        Relative sigma of throughput measurements (run-to-run variance).
    renewable_noise:
        Relative sigma of the PV generation sensor.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        power_noise: float = 0.02,
        perf_noise: float = 0.03,
        renewable_noise: float = 0.01,
        seed: int = 0,
    ) -> None:
        for name, value in (
            ("power_noise", power_noise),
            ("perf_noise", perf_noise),
            ("renewable_noise", renewable_noise),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        self.power_noise = power_noise
        self.perf_noise = perf_noise
        self.renewable_noise = renewable_noise
        self._rng = np.random.default_rng(seed)

    def _jitter(self, value: float, sigma: float) -> float:
        if sigma == 0.0 or value == 0.0:
            return value
        return max(0.0, value * (1.0 + sigma * float(self._rng.standard_normal())))

    def observe_server(
        self, sample: ServerSample, group_index: int, time_s: float
    ) -> ServerObservation:
        """Meter one server's (power, performance) operating point."""
        return ServerObservation(
            group_index=group_index,
            power_w=self._jitter(sample.power_w, self.power_noise),
            throughput=self._jitter(sample.throughput, self.perf_noise),
            state_index=sample.state_index,
            time_s=time_s,
        )

    def observe_renewable(self, power_w: float) -> float:
        """Meter the PV array's instantaneous output."""
        return self._jitter(power_w, self.renewable_noise)

    def observe_throughput(self, throughput: float) -> float:
        """Meter an aggregate throughput figure (e.g. a Manual trial run)."""
        return self._jitter(throughput, self.perf_noise)

    def observe_demand(self, power_w: float) -> float:
        """Meter the rack's aggregate power demand."""
        return self._jitter(power_w, self.power_noise)
