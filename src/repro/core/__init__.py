"""GreenHetero core: the paper's contribution.

The controller (Fig. 4) wires three modules together:

* **Monitor** — samples renewable generation, battery state, and noisy
  per-server (power, performance) readings.
* **Adaptive Scheduler** (Fig. 5) — the Holt power predictor, the
  performance-power profiling database with its training-run and online
  update loop (Fig. 7 / Algorithm 1), the power-source selector (Fig. 6's
  Cases A/B/C), and the PAR solver (Eq. 6-8).
* **Enforcer** — the Power Source Controller (source switching) and the
  Server Power Controller (power budget -> DVFS state mapping).

The five allocation policies of Table III live in
:mod:`repro.core.policies`.
"""

from repro.core.cluster import ClusterCoordinator, GridSplit
from repro.core.database import DatabaseEntry, FitKind, PerfPowerFit, ProfilingDatabase
from repro.core.enforcer import Enforcer, PowerSourceController, ServerPowerController
from repro.core.persistence import (
    load_database,
    predictor_from_dict,
    predictor_to_dict,
    save_database,
)
from repro.core.epu import effective_power_utilization, useful_power
from repro.core.monitor import Monitor, ServerObservation
from repro.core.policies import (
    GreenHeteroAdaptivePolicy,
    GreenHeteroPolicy,
    GreenHeteroPriorityPolicy,
    GreenHeteroStaticPolicy,
    ManualPolicy,
    Policy,
    UniformPolicy,
    make_policy,
)
from repro.core.predictor import HoltPredictor
from repro.core.solver import GroupModel, PARSolution, PARSolver
from repro.core.sources import PowerCase, SourceDecision, SourceSelector

__all__ = [
    "ClusterCoordinator",
    "DatabaseEntry",
    "Enforcer",
    "FitKind",
    "GridSplit",
    "GreenHeteroAdaptivePolicy",
    "GreenHeteroPolicy",
    "GreenHeteroPriorityPolicy",
    "GreenHeteroStaticPolicy",
    "GroupModel",
    "HoltPredictor",
    "ManualPolicy",
    "Monitor",
    "PARSolution",
    "PARSolver",
    "PerfPowerFit",
    "Policy",
    "PowerCase",
    "PowerSourceController",
    "ProfilingDatabase",
    "ServerObservation",
    "ServerPowerController",
    "SourceDecision",
    "SourceSelector",
    "UniformPolicy",
    "effective_power_utilization",
    "load_database",
    "make_policy",
    "predictor_from_dict",
    "predictor_to_dict",
    "save_database",
    "useful_power",
]
