"""Serving state: hosted rack controllers and their checkpoints.

A :class:`RackHost` wraps one :class:`GreenHeteroController` for
long-lived operation: it owns the rack's epoch clock (unbounded — the
irradiance trace wraps), its telemetry log, and its offered-load
generator, and it answers the daemon's queries (allocate / forecast /
status).  :class:`ServeState` assembles and owns a fleet of hosts —
optionally coordinated through the existing
:class:`~repro.core.cluster.ClusterCoordinator` when a shared grid
budget is configured — and implements checkpoint/restore of every
rack's learned state (profiling database, Holt predictors, battery
charge, epoch counter) via :mod:`repro.core.persistence`.

Checkpoints are a directory of plain JSON files written atomically
(temp file + rename), one database and one state document per rack plus
a manifest, so a ``kill -TERM`` mid-write can never corrupt a previous
checkpoint.  Restore is bit-identical for the learned state: the fits a
restored daemon serves are exactly the fits the old daemon saved.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.cluster import ClusterCoordinator, GridSplit
from repro.core.controller import EpochRecord, GreenHeteroController
from repro.core.persistence import (
    FORMAT_VERSION,
    database_from_dict,
    database_to_dict,
    predictor_from_dict,
    predictor_to_dict,
)
from repro.core.policies import make_policy
from repro.errors import ConfigurationError
from repro.servers.rack import Rack
from repro.sim.clock import SimClock
from repro.sim.engine import Simulation
from repro.shift.planner import ShiftPlanner
from repro.shift.queue import ShiftJob
from repro.shift.runtime import ShiftRuntime
from repro.sim.telemetry import TelemetryLog, record_to_dict
from repro.traces.nrel import Weather
from repro.units import EPOCH_SECONDS
from repro.workloads.generator import LoadGenerator

#: Checkpoint manifest file name inside the checkpoint directory.
MANIFEST_NAME = "manifest.json"


def _atomic_write_json(path: Path, document: dict[str, Any]) -> None:
    """Write ``document`` as JSON at ``path`` via temp-file + rename."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True))
    os.replace(tmp, path)


@dataclass(frozen=True)
class ServeConfig:
    """Everything needed to (re)assemble the served fleet.

    The config is persisted into the checkpoint manifest so a restart
    can rebuild identical stacks before restoring learned state.

    Attributes
    ----------
    platforms:
        ``(platform, count)`` rack groups, shared by every rack.
    workload:
        Workload name run by every group.
    policy:
        Allocation policy name (any Table III entry or extension).
    n_racks:
        How many identical racks to host (seeded ``seed + i``).
    weather:
        Solar regime for the replayed irradiance traces.
    seed:
        Master seed; rack ``i`` uses ``seed + i``.
    shared_grid_w:
        When set, a :class:`ClusterCoordinator` re-divides this shared
        grid budget across the racks every cluster epoch.
    epoch_s:
        Scheduling epoch length (paper: 15 minutes).
    shift_horizon:
        Lookahead window (epochs) of each rack's temporal-shifting
        planner (the ``submit``/``plan`` verbs).
    """

    platforms: tuple[tuple[str, int], ...] = (("E5-2620", 5), ("i5-4460", 5))
    workload: str = "SPECjbb"
    policy: str = "GreenHetero"
    n_racks: int = 1
    weather: Weather = Weather.HIGH
    seed: int = 2021
    shared_grid_w: float | None = None
    epoch_s: float = EPOCH_SECONDS
    shift_horizon: int = 8

    def __post_init__(self) -> None:
        if self.n_racks < 1:
            raise ConfigurationError("need at least one rack")
        if self.epoch_s <= 0:
            raise ConfigurationError("epoch length must be positive")
        if self.shift_horizon < 1:
            raise ConfigurationError("shift horizon must be >= 1")
        # Normalized to float so a persisted-and-reloaded config
        # serializes byte-identically to the original.
        object.__setattr__(self, "epoch_s", float(self.epoch_s))

    def to_dict(self) -> dict[str, Any]:
        return {
            "platforms": [list(group) for group in self.platforms],
            "workload": self.workload,
            "policy": self.policy,
            "n_racks": self.n_racks,
            "weather": self.weather.name,
            "seed": self.seed,
            "shared_grid_w": self.shared_grid_w,
            "epoch_s": self.epoch_s,
            "shift_horizon": self.shift_horizon,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeConfig":
        try:
            return cls(
                platforms=tuple(
                    (str(name), int(count)) for name, count in data["platforms"]
                ),
                workload=str(data["workload"]),
                policy=str(data["policy"]),
                n_racks=int(data["n_racks"]),
                weather=Weather[data["weather"]],
                seed=int(data["seed"]),
                shared_grid_w=data["shared_grid_w"],
                epoch_s=float(data["epoch_s"]),
                # `.get`: checkpoints written before the shift subsystem
                # have no horizon entry; the default keeps them readable.
                shift_horizon=int(data.get("shift_horizon", 8)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed serve config: {exc}") from exc


class RackHost:
    """One long-lived rack controller behind the serving API.

    Parameters
    ----------
    name:
        Rack identifier used in requests and checkpoints.
    controller:
        The hosted controller (predictors already primed).
    load_generator:
        Offered-load source used when a ``step`` gives no explicit
        load fraction.
    start_s:
        Timestamp of the rack's first epoch.
    epoch_s:
        Epoch length; the host's clock is ``start_s + n_epochs * epoch_s``.
    shift:
        The rack's temporal-shifting runtime (``submit``/``plan`` verbs
        and epoch gating); a fresh default runtime when omitted.
    """

    def __init__(
        self,
        name: str,
        controller: GreenHeteroController,
        load_generator: LoadGenerator,
        start_s: float,
        epoch_s: float,
        shift: ShiftRuntime | None = None,
    ) -> None:
        self.name = name
        self.controller = controller
        self.load_generator = load_generator
        self.start_s = float(start_s)
        self.epoch_s = float(epoch_s)
        self.n_epochs = 0
        self.log = TelemetryLog()
        self.shift = shift if shift is not None else ShiftRuntime()

    # ------------------------------------------------------------------
    @property
    def clock_s(self) -> float:
        """Timestamp of the rack's next epoch."""
        return self.start_s + self.n_epochs * self.epoch_s

    @property
    def solver(self):
        """The policy's PAR solver, or ``None`` for non-solver policies."""
        return getattr(self.controller.policy, "solver", None)

    # ------------------------------------------------------------------
    # Queries (called from the daemon's executor, one at a time per rack)
    # ------------------------------------------------------------------
    def allocate(self, budget_w: float | None = None) -> dict[str, Any]:
        """Solve the PAR program for ``budget_w`` (or the planned budget).

        Runs any pending training runs first, so the very first query
        against a cold database succeeds the way Algorithm 1 specifies.
        """
        self.controller.ensure_profiled(self.clock_s)
        if budget_w is None:
            budget_w = self.plan_budget_w()
        if budget_w < 0:
            raise ConfigurationError("budget_w must be non-negative")
        plan = self.controller.scheduler.allocate_plan(
            budget_w, self.controller.groups
        )
        return {
            "rack": self.name,
            "budget_w": budget_w,
            "groups": [g.name for g in self.controller.groups],
            "ratios": list(plan.ratios),
            "group_budgets_w": [r * budget_w for r in plan.ratios],
            "powered_counts": (
                None if plan.powered_counts is None else list(plan.powered_counts)
            ),
            "projected_perf": plan.projected_perf,
        }

    def plan_budget_w(self) -> float:
        """The budget the source selector would grant right now."""
        decision = self.controller.scheduler.plan_sources(
            self.controller.pdu.battery, self.controller.pdu.grid, self.epoch_s
        )
        return decision.rack_budget_w

    def forecast(self) -> dict[str, Any]:
        """Next-epoch supply/demand forecast and the source decision."""
        renewable_w, demand_w = self.controller.scheduler.forecast()
        decision = self.controller.scheduler.plan_sources(
            self.controller.pdu.battery, self.controller.pdu.grid, self.epoch_s
        )
        return {
            "rack": self.name,
            "renewable_w": renewable_w,
            "demand_w": demand_w,
            "case": decision.case.value,
            "budget_w": decision.rack_budget_w,
        }

    def observe(self, renewable_w: float, demand_w: float) -> dict[str, Any]:
        """Ingest one pushed telemetry observation; returns the new forecast."""
        if renewable_w < 0 or demand_w < 0:
            raise ConfigurationError("observations must be non-negative")
        self.controller.scheduler.observe(renewable_w, demand_w)
        return self.forecast()

    def step(self, load_fraction: float | None = None) -> EpochRecord:
        """Execute one full scheduling epoch and advance the clock.

        Epochs route through the shift runtime, so submitted deferrable
        jobs gate the rack's batch groups per the current plan; with no
        submissions ever made the runtime is pass-through.
        """
        t = self.clock_s
        if load_fraction is None:
            load_fraction = self.load_generator.at(t).fraction
        record = self.shift.execute_epoch(
            self.controller, t, load_fraction=load_fraction
        )
        self.log.append(record)
        self.n_epochs += 1
        return record

    def record_epoch(self, record: EpochRecord) -> None:
        """Account an epoch executed externally (cluster coordination)."""
        self.log.append(record)
        self.n_epochs += 1

    # ------------------------------------------------------------------
    # Temporal shifting (the submit / plan / queue-status verbs)
    # ------------------------------------------------------------------
    def submit(self, job_document: dict[str, Any]) -> dict[str, Any]:
        """Enqueue one deferrable job; returns the queue snapshot.

        Raises
        ------
        ConfigurationError
            When the rack has no deferrable groups to run the job on, or
            the job document is malformed / a duplicate.
        """
        if not ShiftRuntime.has_deferrable_groups(self.controller):
            raise ConfigurationError(
                f"rack {self.name!r} has no deferrable groups; its "
                "workloads are all interactive"
            )
        job = ShiftJob.from_dict(job_document)
        self.shift.submit(job)
        return self.queue_status()

    def plan(self) -> dict[str, Any]:
        """Replan against current state without executing an epoch.

        Pure with respect to the queue and clock: repeated calls at the
        same instant return identical plans.
        """
        plan = self.shift.plan_now(self.controller, self.clock_s)
        return {"rack": self.name, "plan": plan.to_dict()}

    def queue_status(self) -> dict[str, Any]:
        """The shift queue and telemetry roll-up for this rack."""
        return {
            "rack": self.name,
            "clock_s": self.clock_s,
            **self.shift.summary(),
        }

    def cache_info(self) -> dict[str, Any]:
        """Solver memoization health for serving dashboards."""
        solver = self.solver
        info: dict[str, Any] = {"rack": self.name}
        if solver is None:
            info["solver_cache"] = None
        else:
            info["solver_cache"] = solver.cache_info()
        return info

    def status(self) -> dict[str, Any]:
        """Operational snapshot of this rack."""
        controller = self.controller
        database = controller.scheduler.database
        return {
            "rack": self.name,
            "policy": controller.policy.name,
            "groups": [
                {"platform": g.name, "count": g.count}
                for g in controller.groups
            ],
            "workload": controller.rack.groups[0].workload.name,
            "epochs": self.n_epochs,
            "clock_s": self.clock_s,
            "battery_soc_wh": controller.pdu.battery.soc_wh,
            "battery_soc_fraction": controller.pdu.battery.soc_fraction,
            "grid_budget_w": controller.pdu.grid.budget_w,
            "database_pairs": len(database),
            "predictors_ready": controller.scheduler.renewable_predictor.ready,
            "shift": self.shift.summary(),
            **self.cache_info(),
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_document(self) -> dict[str, Any]:
        """JSON-ready mutable state (everything but the database)."""
        scheduler = self.controller.scheduler
        return {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "n_epochs": self.n_epochs,
            "start_s": self.start_s,
            "epoch_s": self.epoch_s,
            "battery_soc_wh": self.controller.pdu.battery.soc_wh,
            "renewable_predictor": predictor_to_dict(scheduler.renewable_predictor),
            "demand_predictor": predictor_to_dict(scheduler.demand_predictor),
            "shift": self.shift.state_dict(),
        }

    def restore_state_document(self, document: dict[str, Any]) -> None:
        """Install a :meth:`state_document` snapshot into this host."""
        try:
            version = document["format_version"]
            if version != FORMAT_VERSION:
                raise ConfigurationError(
                    f"unsupported rack state version {version} "
                    f"(this build reads {FORMAT_VERSION})"
                )
            scheduler = self.controller.scheduler
            scheduler.renewable_predictor = predictor_from_dict(
                document["renewable_predictor"]
            )
            scheduler.demand_predictor = predictor_from_dict(
                document["demand_predictor"]
            )
            self.controller.pdu.battery.soc_wh = float(document["battery_soc_wh"])
            self.n_epochs = int(document["n_epochs"])
            self.start_s = float(document["start_s"])
            # `.get`: state documents written before the shift subsystem
            # carry no queue; the fresh runtime stands in for an empty one.
            shift_state = document.get("shift")
            if shift_state is not None:
                self.shift.load_state_dict(shift_state)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed rack state document: {exc}") from exc


class ServeState:
    """The daemon's full fleet: named rack hosts plus optional coordination.

    Build with :meth:`ServeState.build`, which assembles each rack with
    the paper's standard methodology (:meth:`Simulation.assemble`) and —
    when the checkpoint directory holds a manifest — restores the
    previous deployment's learned state bit-for-bit.
    """

    def __init__(
        self,
        config: ServeConfig,
        racks: dict[str, RackHost],
        coordinator: ClusterCoordinator | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        if not racks:
            raise ConfigurationError("a serve state needs at least one rack")
        self.config = config
        self.racks = racks
        self.coordinator = coordinator
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.restored = False
        self.cluster_epochs = 0

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: ServeConfig | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> "ServeState":
        """Assemble the fleet; restore from ``checkpoint_dir`` if present.

        When ``checkpoint_dir`` contains a manifest, its persisted
        config *replaces* the given one (a checkpoint names the exact
        deployment it belongs to) and every rack's database, predictors,
        battery charge, and epoch counter are restored.
        """
        manifest: dict[str, Any] | None = None
        if checkpoint_dir is not None:
            manifest_path = Path(checkpoint_dir) / MANIFEST_NAME
            if manifest_path.exists():
                try:
                    manifest = json.loads(manifest_path.read_text())
                except (OSError, json.JSONDecodeError) as exc:
                    raise ConfigurationError(
                        f"cannot read checkpoint manifest {manifest_path}: {exc}"
                    ) from exc
                config = ServeConfig.from_dict(manifest["config"])
        if config is None:
            config = ServeConfig()

        racks: dict[str, RackHost] = {}
        for i in range(config.n_racks):
            name = f"rack{i}"
            clock = SimClock(epoch_s=config.epoch_s)
            # One policy instance per rack: each rack owns its solver and
            # its memoization cache (the daemon solves racks in parallel).
            sim = Simulation.assemble(
                policy=make_policy(config.policy),
                rack=Rack(list(config.platforms), config.workload),
                weather=config.weather,
                clock=clock,
                seed=config.seed + i,
            )
            host = RackHost(
                name=name,
                controller=sim.controller,
                load_generator=sim.load_generator,
                start_s=clock.start_s,
                epoch_s=clock.epoch_s,
                shift=ShiftRuntime(
                    planner=ShiftPlanner(horizon=config.shift_horizon)
                ),
            )
            # Pay the training-run cost up front so the first allocation
            # query is served from a warm database.
            host.controller.ensure_profiled(host.clock_s)
            racks[name] = host

        coordinator = None
        if config.shared_grid_w is not None:
            coordinator = ClusterCoordinator(
                [host.controller for host in racks.values()],
                config.shared_grid_w,
                split=GridSplit.SHORTFALL,
            )

        state = cls(
            config=config,
            racks=racks,
            coordinator=coordinator,
            checkpoint_dir=checkpoint_dir,
        )
        if manifest is not None:
            state._restore(manifest)
        return state

    # ------------------------------------------------------------------
    # Rack access
    # ------------------------------------------------------------------
    def rack(self, name: str) -> RackHost:
        host = self.racks.get(name)
        if host is None:
            raise ConfigurationError(
                f"unknown rack {name!r}; serving {sorted(self.racks)}"
            )
        return host

    def rack_names(self) -> list[str]:
        return list(self.racks)

    # ------------------------------------------------------------------
    # Cluster stepping
    # ------------------------------------------------------------------
    def step_cluster(
        self, load_fractions: list[float] | None = None
    ) -> list[EpochRecord]:
        """One coordinated epoch across every rack.

        Requires a shared grid budget (``config.shared_grid_w``); the
        coordinator re-divides it, every rack executes, and each host's
        log and epoch counter advance together.
        """
        if self.coordinator is None:
            raise ConfigurationError(
                "no shared grid budget configured; step racks individually"
            )
        hosts = list(self.racks.values())
        time_s = hosts[0].clock_s
        if load_fractions is None:
            load_fractions = [
                host.load_generator.at(time_s).fraction for host in hosts
            ]
        records = self.coordinator.run_epoch(time_s, load_fractions=load_fractions)
        for host, record in zip(hosts, records, strict=True):
            host.record_epoch(record)
        self.cluster_epochs += 1
        return records

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> Path:
        """Write the full fleet state; returns the checkpoint directory.

        Raises
        ------
        ConfigurationError
            When no checkpoint directory was configured.
        """
        if self.checkpoint_dir is None:
            raise ConfigurationError("no checkpoint directory configured")
        directory = self.checkpoint_dir
        directory.mkdir(parents=True, exist_ok=True)
        for name, host in self.racks.items():
            _atomic_write_json(
                directory / f"{name}.database.json",
                database_to_dict(host.controller.scheduler.database),
            )
            _atomic_write_json(
                directory / f"{name}.state.json", host.state_document()
            )
        # The manifest is written last: a directory with a manifest is a
        # complete checkpoint by construction.
        _atomic_write_json(
            directory / MANIFEST_NAME,
            {
                "format_version": FORMAT_VERSION,
                "config": self.config.to_dict(),
                "racks": sorted(self.racks),
                "cluster_epochs": self.cluster_epochs,
            },
        )
        return directory

    def _restore(self, manifest: dict[str, Any]) -> None:
        """Install a checkpoint's learned state into the assembled fleet."""
        assert self.checkpoint_dir is not None
        try:
            version = manifest["format_version"]
            if version != FORMAT_VERSION:
                raise ConfigurationError(
                    f"unsupported checkpoint version {version} "
                    f"(this build reads {FORMAT_VERSION})"
                )
            names = list(manifest["racks"])
            self.cluster_epochs = int(manifest.get("cluster_epochs", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed checkpoint manifest: {exc}") from exc
        if sorted(names) != sorted(self.racks):
            raise ConfigurationError(
                f"checkpoint racks {sorted(names)} do not match the "
                f"assembled fleet {sorted(self.racks)}"
            )
        for name in names:
            host = self.racks[name]
            db_path = self.checkpoint_dir / f"{name}.database.json"
            state_path = self.checkpoint_dir / f"{name}.state.json"
            try:
                database_doc = json.loads(db_path.read_text())
                state_doc = json.loads(state_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ConfigurationError(
                    f"cannot read checkpoint files for {name}: {exc}"
                ) from exc
            host.controller.scheduler.database = database_from_dict(database_doc)
            host.restore_state_document(state_doc)
        self.restored = True

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Fleet-wide operational snapshot."""
        return {
            "racks": {name: host.status() for name, host in self.racks.items()},
            "n_racks": len(self.racks),
            "policy": self.config.policy,
            "workload": self.config.workload,
            "coordinated": self.coordinator is not None,
            "shared_grid_w": self.config.shared_grid_w,
            "cluster_epochs": self.cluster_epochs,
            "restored": self.restored,
            "checkpoint_dir": (
                None if self.checkpoint_dir is None else str(self.checkpoint_dir)
            ),
        }

    def cache_stats(self) -> dict[str, Any]:
        """Solver memoization counters for every rack."""
        return {
            "racks": {name: host.cache_info() for name, host in self.racks.items()}
        }

    def epoch_event(self, host: RackHost, record: EpochRecord) -> dict[str, Any]:
        """One JSONL audit-stream event for an executed epoch.

        The epoch telemetry in :func:`record_to_dict` form plus the
        rack's solver cache counters, so serving dashboards can watch
        memoization health directly from the event stream.
        """
        return {
            "event": "epoch",
            "rack": host.name,
            "epoch_index": host.n_epochs - 1,
            **record_to_dict(record),
            **host.cache_info(),
        }
