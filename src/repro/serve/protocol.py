"""The serving daemon's wire format: newline-delimited JSON over TCP.

One request or response per line, UTF-8, ``\\n``-terminated.  Requests
carry an ``op`` (the query kind), an optional caller-chosen ``id``
echoed back verbatim, an optional ``rack`` selector, and op-specific
parameters.  Responses carry ``ok`` plus either ``result`` or
``error``/``error_type``:

    → {"id": 1, "op": "allocate", "rack": "rack0", "budget_w": 800}
    ← {"id": 1, "ok": true, "result": {"ratios": [0.62, 0.38], ...}}

The format is deliberately transport-trivial: ``nc`` and three lines of
any language's socket code are a complete client.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ReproError

#: Hard cap on one message line; a line longer than this is a protocol
#: violation, not a big request.
MAX_LINE_BYTES = 1 << 20

#: Every operation the daemon understands.
OPS = frozenset(
    {
        "allocate",
        "cache-stats",
        "checkpoint",
        "forecast",
        "metrics",
        "observe",
        "ping",
        "plan",
        "queue-status",
        "racks",
        "shutdown",
        "status",
        "step",
        "submit",
    }
)

#: Request keys that are framing, not op parameters.
_ENVELOPE_KEYS = frozenset({"id", "op", "rack"})


class ProtocolError(ReproError):
    """A malformed or oversized protocol message."""


@dataclass(frozen=True)
class Request:
    """A parsed, validated request line.

    Attributes
    ----------
    op:
        One of :data:`OPS`.
    id:
        Caller-chosen correlation id, echoed back in the response
        (``None`` when the caller sent none).
    rack:
        Target rack name; ``None`` addresses the daemon (or, for
        ``step``, the whole cluster).
    params:
        Remaining op-specific keys.
    """

    op: str
    id: Any = None
    rack: str | None = None
    params: Mapping[str, Any] = field(default_factory=dict)


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One message as a compact, newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one line into a message dictionary.

    Raises
    ------
    ProtocolError
        On oversized lines, invalid JSON, or a non-object payload.
    """
    if isinstance(line, str):
        line = line.encode()
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def parse_request(message: Mapping[str, Any]) -> Request:
    """Validate a decoded message as a request.

    Raises
    ------
    ProtocolError
        On a missing or unknown ``op`` or a non-string ``rack``.
    """
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op'")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    rack = message.get("rack")
    if rack is not None and not isinstance(rack, str):
        raise ProtocolError("'rack' must be a string when present")
    params = {k: v for k, v in message.items() if k not in _ENVELOPE_KEYS}
    return Request(op=op, id=message.get("id"), rack=rack, params=params)


def ok_response(request_id: Any, result: Mapping[str, Any]) -> dict[str, Any]:
    """A success envelope echoing the request id."""
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_response(
    request_id: Any, error: str, error_type: str = "error"
) -> dict[str, Any]:
    """A failure envelope; ``error_type`` names the exception class."""
    return {"id": request_id, "ok": False, "error": error, "error_type": error_type}
