"""Load generator for the serving daemon (``repro loadgen``).

Opens N concurrent connections (one worker thread each, mirroring N
independent clients) and hammers the daemon with a deterministic mix of
``allocate`` / ``forecast`` / ``status`` / ``cache-stats`` queries.
Allocation budgets cycle through a small set of levels, so concurrent
duplicates exercise both the daemon's request coalescing and the PAR
solver's memo cache — exactly the serving-path behaviour the benchmark
exists to measure.

Results (qps, p50/p99 latency, per-op counts, cache counters) are
returned as a dictionary and optionally written to ``BENCH_serve.json``
for CI to archive.
"""

from __future__ import annotations

import json
import random
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.stats import percentile as _percentile
from repro.serve.client import ServeClient, ServeError

#: Relative weight of each op in the generated stream.
DEFAULT_OP_MIX: tuple[tuple[str, int], ...] = (
    ("allocate", 6),
    ("forecast", 2),
    ("status", 1),
    ("cache-stats", 1),
)

#: Budget levels as fractions of the rack's planned budget; few distinct
#: levels on purpose — duplicate programs are the serving hot path.
BUDGET_FRACTIONS: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2)


def solver_cache_hit_ratio(
    before: dict[str, Any], after: dict[str, Any]
) -> float | None:
    """The burst's aggregate solver-cache hit ratio across all racks.

    Computed from the *delta* of the daemon's counters, so warm caches
    from earlier traffic don't flatter the measurement.  ``None`` when
    the burst triggered no solver lookups at all (e.g. an op mix with no
    ``allocate``).

    The preferred source is the daemon's process-wide obs counter
    snapshot (``stats["obs"]``): one atomic read covering every rack's
    solver, immune to per-rack read races while coalesced requests are
    in flight.  Snapshots from older daemons without the obs block fall
    back to summing the per-rack ``solver_cache`` counters.
    """

    def totals(stats: dict[str, Any]) -> tuple[int, int]:
        obs = stats.get("obs")
        if obs is not None:
            return (
                int(obs.get("solver_cache_hits", 0)),
                int(obs.get("solver_cache_misses", 0)),
            )
        hits = misses = 0
        for info in stats.get("racks", {}).values():
            cache = info.get("solver_cache")
            if cache:
                hits += int(cache.get("hits", 0))
                misses += int(cache.get("misses", 0))
        return hits, misses

    hits_before, misses_before = totals(before)
    hits_after, misses_after = totals(after)
    hits = hits_after - hits_before
    lookups = hits + (misses_after - misses_before)
    if lookups <= 0:
        return None
    return hits / lookups


def _worker(
    host: str,
    port: int,
    rack: str,
    ops: list[tuple[str, float | None]],
    timeout_s: float,
) -> tuple[list[float], int]:
    """One connection's request loop; returns (latencies_s, errors)."""
    latencies: list[float] = []
    errors = 0
    with ServeClient(host, port, timeout_s=timeout_s) as client:
        for op, budget in ops:
            start = time.perf_counter()
            try:
                if op == "allocate":
                    client.allocate(rack, budget_w=budget)
                elif op == "forecast":
                    client.forecast(rack)
                elif op == "status":
                    client.status()
                else:
                    client.cache_stats()
            except ServeError:
                errors += 1
            latencies.append(time.perf_counter() - start)
    return latencies, errors


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 7313,
    connections: int = 4,
    requests: int = 200,
    rack: str | None = None,
    seed: int = 0,
    timeout_s: float = 60.0,
    out: str | Path | None = None,
) -> dict[str, Any]:
    """Drive the daemon with ``connections`` concurrent clients.

    Parameters
    ----------
    host / port:
        The daemon's address.
    connections:
        Concurrent connections (worker threads), each with its own
        client.
    requests:
        Total requests across all connections.
    rack:
        Target rack; defaults to the daemon's first rack.
    seed:
        Seed for the deterministic op mix.
    timeout_s:
        Per-request client timeout.
    out:
        When given, the result dictionary is written there as JSON
        (the ``BENCH_serve.json`` artifact).

    Returns
    -------
    dict
        qps, latency percentiles (ms), per-op counts, error count, and
        the daemon's cache/coalescing counters after the burst.
    """
    if connections < 1:
        raise ConfigurationError("need at least one connection")
    if requests < 1:
        raise ConfigurationError("need at least one request")

    probe = ServeClient(host, port, timeout_s=timeout_s)
    try:
        racks = probe.racks()
        if rack is None:
            rack = racks[0]
        elif rack not in racks:
            raise ConfigurationError(f"unknown rack {rack!r}; daemon serves {racks}")
        # A reference budget anchors the cycled levels to a realistic
        # operating point for this rack.
        reference_w = probe.allocate(rack)["budget_w"]
        cache_before = probe.cache_stats()
    finally:
        probe.close()
    budgets = [round(f * reference_w, 3) for f in BUDGET_FRACTIONS]

    # Deterministic op stream, dealt round-robin to the connections.
    rng = random.Random(seed)
    op_names = [name for name, weight in DEFAULT_OP_MIX for _ in range(weight)]
    stream: list[tuple[str, float | None]] = []
    for i in range(requests):
        op = rng.choice(op_names)
        budget = budgets[i % len(budgets)] if op == "allocate" else None
        stream.append((op, budget))
    per_worker: list[list[tuple[str, float | None]]] = [
        stream[i::connections] for i in range(connections)
    ]

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=connections) as pool:
        outcomes = list(
            pool.map(
                lambda ops: _worker(host, port, rack, ops, timeout_s),
                per_worker,
            )
        )
    duration_s = time.perf_counter() - start

    latencies = sorted(lat for lats, _ in outcomes for lat in lats)
    errors = sum(errs for _, errs in outcomes)
    op_counts: dict[str, int] = {}
    for op, _ in stream:
        op_counts[op] = op_counts.get(op, 0) + 1

    with ServeClient(host, port, timeout_s=timeout_s) as client:
        cache_after = client.cache_stats()

    result: dict[str, Any] = {
        "connections": connections,
        "requests": requests,
        "rack": rack,
        "budget_levels_w": budgets,
        "duration_s": duration_s,
        "qps": len(latencies) / duration_s if duration_s > 0 else 0.0,
        "latency_ms": {
            "p50": 1e3 * _percentile(latencies, 0.50),
            "p99": 1e3 * _percentile(latencies, 0.99),
            "mean": 1e3 * (sum(latencies) / len(latencies)) if latencies else 0.0,
            "max": 1e3 * latencies[-1] if latencies else 0.0,
        },
        "ops": op_counts,
        "errors": errors,
        "cache_hit_ratio": solver_cache_hit_ratio(cache_before, cache_after),
        "cache_before": cache_before,
        "cache_after": cache_after,
    }
    if out is not None:
        Path(out).write_text(json.dumps(result, indent=2, sort_keys=True))
    return result


def format_summary(result: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a loadgen run."""
    latency = result["latency_ms"]
    lines = [
        f"{result['requests']} requests over {result['connections']} "
        f"connections against rack {result['rack']!r}",
        f"  wall time   {result['duration_s']:.2f} s   "
        f"qps {result['qps']:.0f}",
        f"  latency ms  p50 {latency['p50']:.2f}   p99 {latency['p99']:.2f}   "
        f"mean {latency['mean']:.2f}   max {latency['max']:.2f}",
        f"  ops         {result['ops']}",
        f"  errors      {result['errors']}",
        f"  coalesced   {result['cache_after'].get('coalesced', 0)}",
    ]
    hit_ratio = result.get("cache_hit_ratio")
    lines.append(
        "  cache hit ratio  "
        + (f"{hit_ratio:.0%}" if hit_ratio is not None else "n/a (no solver lookups)")
    )
    for name, info in result["cache_after"].get("racks", {}).items():
        cache = info.get("solver_cache")
        if cache:
            lines.append(
                f"  {name} solver cache: {cache['hits']} hits / "
                f"{cache['misses']} misses (hit rate {cache['hit_rate']:.0%})"
            )
    return "\n".join(lines)
