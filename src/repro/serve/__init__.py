"""``repro.serve`` — the control-plane serving daemon.

GreenHetero is specified as an *online* controller (Monitor → Predictor
→ Solver → Enforcer every 15-minute epoch), but batch simulation only
exercises it offline.  This package runs the controller the way the
paper deploys it: a long-lived service that ingests telemetry and
answers allocation queries.

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire format.
* :mod:`repro.serve.state` — rack hosting, checkpoint/restore.
* :mod:`repro.serve.daemon` — the asyncio TCP daemon with request
  coalescing and graceful shutdown-with-checkpoint.
* :mod:`repro.serve.client` — a blocking client for tools and tests.
* :mod:`repro.serve.loadgen` — the bundled load generator
  (``repro loadgen``) that records qps and latency percentiles.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import AllocationDaemon
from repro.serve.loadgen import run_loadgen
from repro.serve.protocol import ProtocolError, Request
from repro.serve.state import RackHost, ServeConfig, ServeState

__all__ = [
    "AllocationDaemon",
    "ProtocolError",
    "RackHost",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeState",
    "run_loadgen",
]
